#!/usr/bin/env python3
"""Fail on broken relative links in the repository's markdown docs.

Scans ``README.md`` and ``docs/*.md`` for inline markdown links
(``[text](target)`` and ``![alt](target)``), resolves every relative
target against the file it appears in, and exits non-zero listing the
targets that do not exist on disk.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped; a
``path#fragment`` target is checked for the path part only.

Run from the repository root (CI's docs job does exactly this)::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link/image: ``[text](target)`` with no nested brackets.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not files in this repository.
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root: Path) -> List[Path]:
    """The markdown set the repository promises to keep link-clean."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.is_file()]


def broken_links(path: Path) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every dangling relative link."""
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if not (path.parent / file_part).exists():
                yield line_number, target


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path.cwd()
    failures = []
    checked = 0
    for path in doc_files(root):
        checked += 1
        for line_number, target in broken_links(path):
            failures.append(f"{path.relative_to(root)}:{line_number}: broken link -> {target}")
    if not checked:
        print("no markdown files found; run from the repository root", file=sys.stderr)
        return 2
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} broken link(s) in {checked} file(s)", file=sys.stderr)
        return 1
    print(f"{checked} markdown file(s) link-clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
