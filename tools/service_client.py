#!/usr/bin/env python3
"""Stdlib smoke client of the simulation service.

Drives a real ``picos-experiment serve`` process (or two) over its NDJSON
TCP protocol and HTTP adapter using nothing but the standard library --
the exact exercise the CI ``service-smoke`` job runs:

* ``--spawn`` launches a server subprocess on ephemeral ports (parsed from
  its ``serving <proto> on <host>:<port>`` announce lines), runs one
  simulation request end to end, checks the streamed lifecycle events
  against the final result's own event derivation, round-trips a
  ``checkpoint`` frame through ``restore``/``run`` and checks the resumed
  run reproduces the straight run's result and event stream bit-exactly,
  polls ``/metrics`` and ``/healthz``, and shuts the server down with
  SIGTERM.
* ``--spawn --cache-dir DIR`` additionally launches a *second* server
  process pointed at the same cache directory and asserts the identical
  request is served from cache there (the cross-process shared-cache
  contract), with the hit visible in the second server's metrics.
* Without ``--spawn``, connects to an already-running server at
  ``--host``/``--port`` and runs the single-request exercise.

Exit status 0 means every check passed.

Usage::

    python tools/service_client.py --spawn
    python tools/service_client.py --spawn --cache-dir /tmp/picos-svc-cache
    python tools/service_client.py --host 127.0.0.1 --port 9178
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

#: The smoke request: small enough for seconds-scale runs, rich enough to
#: stream a few hundred lifecycle events.
SMOKE_REQUEST: Dict[str, Any] = {
    "workload": "cholesky",
    "block_size": 128,
    "problem_size": 1024,
    "backend": "hil-full",
    "workers": 2,
    "stream": {"slice_cycles": 100_000},
}

ANNOUNCE_PREFIX = "serving "
SERVER_START_TIMEOUT = 60.0
FRAME_TIMEOUT = 120.0


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


# ----------------------------------------------------------------------
# NDJSON client
# ----------------------------------------------------------------------
class ServiceClient:
    """A minimal blocking NDJSON client (one socket, one line at a time)."""

    def __init__(self, host: str, port: int) -> None:
        self._sock = socket.create_connection((host, port), timeout=FRAME_TIMEOUT)
        self._file = self._sock.makefile("rb")
        hello = self.recv()
        check(hello.get("type") == "hello", f"expected hello, got {hello}")

    def send(self, frame: Dict[str, Any]) -> None:
        line = json.dumps(frame, separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(line)

    def recv(self) -> Dict[str, Any]:
        line = self._file.readline()
        check(bool(line), "server closed the connection mid-conversation")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.send({"type": "bye"})
        except OSError:
            pass
        self._file.close()
        self._sock.close()


def run_request(
    host: str, port: int, request: Dict[str, Any]
) -> Tuple[Dict[str, Any], List[List[int]], bool]:
    """Open/run one request; returns (result, streamed events, cached)."""
    client = ServiceClient(host, port)
    try:
        client.send({"type": "open", "id": "smoke", "request": request})
        accepted = client.recv()
        check(
            accepted.get("type") == "accepted",
            f"request was not accepted: {accepted}",
        )
        client.send({"type": "run", "id": "smoke"})
        events: List[List[int]] = []
        while True:
            frame = client.recv()
            kind = frame.get("type")
            if kind == "events":
                events.extend(frame["events"])
            elif kind == "result":
                return frame["result"], events, bool(frame.get("cached"))
            else:
                raise SmokeFailure(f"unexpected frame while streaming: {frame}")
    finally:
        client.close()


def expected_events(result: Dict[str, Any]) -> List[List[int]]:
    """Re-derive the lifecycle-event stream from a result document.

    Mirrors ``repro.sim.session.lifecycle_events`` (submitted=0, ready=1,
    retired=2, ordered by cycle then kind then task id) without importing
    the package -- the point of this client is to trust only the wire.
    """
    events: List[List[int]] = []
    for task_id, stamps in result["timelines"].items():
        created, submitted, ready, started, finished = stamps
        events.append([submitted, 0, int(task_id)])
        events.append([ready, 1, int(task_id)])
        events.append([finished, 2, int(task_id)])
    events.sort()
    return events


def fetch_json(url: str) -> Dict[str, Any]:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


# ----------------------------------------------------------------------
# server subprocess management
# ----------------------------------------------------------------------
class ServerProcess:
    """A ``picos-experiment serve`` child on ephemeral ports."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        command = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--port",
            "0",
            "--http-port",
            "0",
        ]
        if cache_dir:
            command += ["--cache-dir", cache_dir]
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.tcp_port: Optional[int] = None
        self.http_port: Optional[int] = None
        deadline = time.time() + SERVER_START_TIMEOUT
        assert self.process.stdout is not None
        while time.time() < deadline and (
            self.tcp_port is None or self.http_port is None
        ):
            line = self.process.stdout.readline()
            if not line:
                break
            line = line.strip()
            if line.startswith(ANNOUNCE_PREFIX):
                _, proto, _, endpoint = line.split(None, 3)
                port = int(endpoint.rsplit(":", 1)[1])
                if proto == "ndjson":
                    self.tcp_port = port
                elif proto == "http":
                    self.http_port = port
        check(
            self.tcp_port is not None and self.http_port is not None,
            "server did not announce its listening ports in time",
        )

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=10)


# ----------------------------------------------------------------------
# the smoke scenarios
# ----------------------------------------------------------------------
def exercise_server(host: str, tcp_port: int, http_port: Optional[int]) -> None:
    """One full request with stream/result cross-check plus the HTTP surface."""
    result, events, cached = run_request(host, tcp_port, SMOKE_REQUEST)
    check(result["num_tasks"] > 0, "result reports zero tasks")
    check(result["makespan"] > 0, "result reports zero makespan")
    check(not cached, "first request must not be served from cache")
    check(
        events == expected_events(result),
        "streamed lifecycle events do not match the result's timelines",
    )
    print(
        f"ok: {len(events)} events streamed, makespan {result['makespan']}, "
        f"{result['num_tasks']} tasks"
    )
    exercise_checkpoint_restore(host, tcp_port, result, events)
    if http_port is not None:
        health = fetch_json(f"http://{host}:{http_port}/healthz")
        check(health.get("status") == "ok", f"healthz not ok: {health}")
        metrics = fetch_json(f"http://{host}:{http_port}/metrics")
        check(
            metrics["sessions"]["completed"] >= 1,
            f"metrics do not show a completed session: {metrics['sessions']}",
        )
        check(
            metrics["streaming"]["events_streamed"] >= len(events),
            "metrics undercount streamed events",
        )
        print(
            f"ok: metrics report {metrics['sessions']['completed']} completed "
            f"session(s), {metrics['streaming']['events_streamed']} events"
        )


def exercise_checkpoint_restore(
    host: str,
    tcp_port: int,
    straight_result: Dict[str, Any],
    straight_events: List[List[int]],
) -> None:
    """Checkpoint a fresh session, restore the document, run it to the end.

    The resumed run must reproduce the straight run bit-exactly -- same
    result document, same streamed event stream -- judging both purely by
    what crossed the wire.
    """
    client = ServiceClient(host, tcp_port)
    try:
        client.send({"type": "open", "id": "ckpt-src", "request": SMOKE_REQUEST})
        accepted = client.recv()
        check(
            accepted.get("type") == "accepted",
            f"checkpoint source was not accepted: {accepted}",
        )
        client.send({"type": "checkpoint", "id": "ckpt-src"})
        checkpoint = client.recv()
        check(
            checkpoint.get("type") == "checkpoint",
            f"checkpoint frame was refused: {checkpoint}",
        )
        check(
            checkpoint.get("kind") == "initial",
            f"fresh session checkpointed as {checkpoint.get('kind')!r}",
        )
        check(
            checkpoint.get("digest") == checkpoint["snapshot"].get("digest"),
            "checkpoint digest does not match its snapshot document",
        )
        client.send({"type": "cancel", "id": "ckpt-src"})
        cancelled = client.recv()
        check(
            cancelled.get("type") == "cancelled",
            f"could not cancel the checkpoint source: {cancelled}",
        )
        client.send(
            {"type": "restore", "id": "ckpt-dst", "snapshot": checkpoint["snapshot"]}
        )
        restored = client.recv()
        check(
            restored.get("type") == "restored",
            f"snapshot document was not restored: {restored}",
        )
        client.send({"type": "run", "id": "ckpt-dst"})
        events: List[List[int]] = []
        while True:
            frame = client.recv()
            kind = frame.get("type")
            if kind == "events":
                events.extend(frame["events"])
            elif kind == "result":
                result = frame["result"]
                break
            else:
                raise SmokeFailure(f"unexpected frame while resuming: {frame}")
        check(
            result == straight_result,
            "restored run's result differs from the straight run",
        )
        check(
            events == straight_events,
            "restored run's event stream differs from the straight run",
        )
        print(
            "ok: checkpoint/restore round trip reproduced the run bit-exactly "
            f"(snapshot digest {checkpoint['digest']})"
        )
    finally:
        client.close()


def exercise_shared_cache(host: str, cache_dir: str) -> None:
    """Two server processes, one cache directory: the second serves a hit."""
    first = ServerProcess(cache_dir=cache_dir)
    try:
        result_a, events_a, cached_a = run_request(
            host, first.tcp_port, SMOKE_REQUEST
        )
        check(not cached_a, "first process's first request must miss the cache")
    finally:
        check(first.stop() == 0, "first server did not exit cleanly on SIGTERM")
    # The write-behind is awaited during shutdown, so by now the entry is
    # durable; a *different* process must serve it without simulating.
    second = ServerProcess(cache_dir=cache_dir)
    try:
        result_b, events_b, cached_b = run_request(
            host, second.tcp_port, SMOKE_REQUEST
        )
        check(cached_b, "second process did not serve the request from cache")
        check(result_a == result_b, "cached result differs from the computed one")
        check(events_a == events_b, "cached event stream differs from the live one")
        metrics = fetch_json(f"http://{host}:{second.http_port}/metrics")
        check(
            metrics["cache"]["hits"] >= 1,
            f"second process's metrics show no cache hit: {metrics['cache']}",
        )
        print(
            f"ok: cross-process cache hit (hits={metrics['cache']['hits']}, "
            f"identical result and {len(events_b)}-event stream)"
        )
    finally:
        check(second.stop() == 0, "second server did not exit cleanly on SIGTERM")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9178, help="NDJSON TCP port")
    parser.add_argument(
        "--http-port", type=int, default=None, help="HTTP adapter port (optional)"
    )
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="launch a serve subprocess on ephemeral ports instead of "
        "connecting to --host/--port",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="with --spawn: also run the two-process shared-cache scenario "
        "against this cache directory",
    )
    args = parser.parse_args(argv)
    try:
        if args.spawn:
            server = ServerProcess()
            try:
                exercise_server(args.host, server.tcp_port, server.http_port)
            finally:
                check(server.stop() == 0, "server did not exit cleanly on SIGTERM")
            print("ok: server drained and exited 0 on SIGTERM")
            if args.cache_dir:
                exercise_shared_cache(args.host, args.cache_dir)
        else:
            exercise_server(args.host, args.port, args.http_port)
    except SmokeFailure as failure:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
