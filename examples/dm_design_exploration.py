#!/usr/bin/env python3
"""Design-space exploration of the Dependence Memory.

The paper's Section V-A/V-B asks: which DM design gives the best
performance for the lowest hardware cost?  This example runs the same
exploration end to end with the library:

1. run a wavefront benchmark (Gauss-Seidel Heat) through each DM design in
   the HIL HW-only mode and count DM conflicts (Table II);
2. estimate the FPGA cost of each design (Table III);
3. combine both into the performance-per-BRAM trade-off that motivates the
   paper's choice of the Pearson-hashed 8-way design.

Run with::

    python examples/dm_design_exploration.py [problem_size] [block_size]
"""

from __future__ import annotations

import sys

from repro.analysis.report import render_bar_chart, render_table
from repro.apps.registry import build_benchmark
from repro.core.config import DMDesign, PicosConfig
from repro.hardware.resources import XC7Z020, estimate_design
from repro.sim.hil import HILMode, HILSimulator


def main() -> None:
    problem_size = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    block_size = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    workers = 12

    program = build_benchmark("heat", block_size, problem_size=problem_size)
    print(
        f"Gauss-Seidel Heat {problem_size}/{block_size}: {program.num_tasks} tasks, "
        f"~{program.average_task_size:,.0f} cycles each, {workers} workers (HW-only mode)\n"
    )

    rows = []
    speedups = {}
    for design in DMDesign:
        config = PicosConfig.paper_prototype(design)
        result = HILSimulator(
            program, config=config, mode=HILMode.HW_ONLY, num_workers=workers
        ).run()
        cost = estimate_design(config)
        bram_pct = 100.0 * cost.bram36 / XC7Z020.bram36
        speedups[design.display_name] = result.speedup
        rows.append(
            [
                design.display_name,
                round(result.speedup, 2),
                result.counters["dm_conflicts"],
                result.counters["dm_high_water"],
                cost.bram36,
                f"{bram_pct:.1f}%",
                round(result.speedup / cost.bram36, 3),
            ]
        )

    print(
        render_table(
            headers=[
                "design",
                "speedup",
                "DM conflicts",
                "DM high-water",
                "BRAM36",
                "BRAM %",
                "speedup/BRAM",
            ],
            rows=rows,
            title="DM design exploration (performance, conflicts and cost)",
        )
    )
    print()
    print(render_bar_chart("Speedup per design", speedups))

    best = max(rows, key=lambda row: row[6])
    print(
        f"\nMost balanced design (best speedup per BRAM): {best[0]} -- the same "
        "conclusion the paper reaches for the prototype."
    )


if __name__ == "__main__":
    main()
