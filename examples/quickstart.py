#!/usr/bin/env python3
"""Quickstart: drive the Picos accelerator by hand.

This example plays the role of the OmpSs master thread and of the workers:
it creates a handful of tasks with data dependences (the blocked Cholesky
snippet of Figure 2 of the paper, on a 3x3 block matrix), submits them to a
:class:`~repro.core.picos.PicosAccelerator`, pulls ready tasks out of the
Task Scheduler, "executes" them and notifies their completion -- printing
what the accelerator does at every step.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import PicosConfig
from repro.core.picos import PicosAccelerator
from repro.runtime.task import Dependence, Direction, Task


def block(i: int, j: int) -> int:
    """Address of block (i, j) of a 3x3 blocked matrix."""
    return 0x4000_0000 + (i * 3 + j) * 64 * 1024


def cholesky_3x3_tasks() -> list[Task]:
    """The task graph of a 3x3 blocked Cholesky factorisation (Figure 2)."""
    tasks: list[Task] = []
    task_id = 0

    def add(label: str, deps: list[Dependence]) -> None:
        nonlocal task_id
        tasks.append(Task(task_id=task_id, dependences=deps, duration=100, label=label))
        task_id += 1

    for k in range(3):
        add(f"potrf({k})", [Dependence(block(k, k), Direction.INOUT)])
        for i in range(k + 1, 3):
            add(
                f"trsm({k},{i})",
                [
                    Dependence(block(k, k), Direction.IN),
                    Dependence(block(i, k), Direction.INOUT),
                ],
            )
        for i in range(k + 1, 3):
            add(
                f"syrk({k},{i})",
                [
                    Dependence(block(i, k), Direction.IN),
                    Dependence(block(i, i), Direction.INOUT),
                ],
            )
            for j in range(k + 1, i):
                add(
                    f"gemm({k},{i},{j})",
                    [
                        Dependence(block(i, k), Direction.IN),
                        Dependence(block(j, k), Direction.IN),
                        Dependence(block(i, j), Direction.INOUT),
                    ],
                )
    return tasks


def main() -> None:
    tasks = cholesky_3x3_tasks()
    labels = {task.task_id: task.label for task in tasks}

    accelerator = PicosAccelerator(PicosConfig())
    print(f"Submitting {len(tasks)} Cholesky tasks to Picos "
          f"({accelerator.config.dm_design.display_name})\n")

    # --- task-creation time: send every task and its dependences ----------
    for task in tasks:
        result = accelerator.submit_task(task)
        status = "ready immediately" if result.ready else "waiting on dependences"
        print(
            f"  submit {labels[task.task_id]:<12} "
            f"{task.num_dependences} dep(s), pipeline occupancy "
            f"{result.occupancy:3d} cycles -> {status}"
        )

    # --- execution loop: pop ready tasks, execute, notify finish ----------
    print("\nExecution order (as the Task Scheduler releases work):")
    executed = 0
    while executed < len(tasks):
        task_id = accelerator.pop_ready()
        if task_id is None:
            raise RuntimeError("deadlock: no ready task but work remains")
        finish = accelerator.notify_finish(task_id)
        woken = ", ".join(labels[r.task_id] for r in finish.ready) or "-"
        print(f"  run {labels[task_id]:<12} finished; wakes: {woken}")
        executed += 1

    print("\nHardware counters after the run:")
    for key, value in sorted(accelerator.describe()["stats"].items()):
        if value:
            print(f"  {key:28s} {value}")
    assert accelerator.is_drained()
    print("\nAll tasks retired; every DM/VM/TM entry was recycled.")


if __name__ == "__main__":
    main()
