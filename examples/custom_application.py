#!/usr/bin/env python3
"""Bring your own application: trace it, save it, simulate it.

The Picos methodology is trace driven: any task-based application can be
expressed as a stream of task creations with dependence addresses and
directions.  This example shows the full round trip for a small pipeline-
and-reduce workload that is *not* one of the paper's benchmarks:

1. describe the application as a :class:`~repro.runtime.task.TaskProgram`
   (here: a three-stage image-processing pipeline over a set of tiles,
   followed by a tree reduction);
2. save it as a portable text trace and load it back;
3. simulate it on the Picos prototype, the Nanos++ runtime and the Perfect
   scheduler and print a comparison.

Run with::

    python examples/custom_application.py [tiles] [workers]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.analysis.report import render_table
from repro.runtime.nanos import NanosRuntimeSimulator
from repro.runtime.perfect import PerfectScheduler
from repro.runtime.task import Dependence, Direction, TaskProgram
from repro.sim.driver import simulate_program
from repro.traces.trace import TaskTrace, load_trace, save_trace

TILE_BYTES = 256 * 1024


def build_pipeline(tiles: int) -> TaskProgram:
    """A 3-stage tile pipeline (decode -> filter -> score) plus a reduction."""
    program = TaskProgram(name=f"tile-pipeline-{tiles}")
    tile_addr = lambda t: 0x1000_0000 + t * TILE_BYTES          # noqa: E731
    score_addr = lambda t: 0x3000_0000 + t * 4096               # noqa: E731
    partial_addr = lambda t: 0x5000_0000 + t * 4096             # noqa: E731

    for tile in range(tiles):
        # decode: writes the tile buffer.
        program.create_task(
            [Dependence(tile_addr(tile), Direction.OUT)],
            duration=40_000,
            label="decode",
        )
        # filter: updates the tile in place.
        program.create_task(
            [Dependence(tile_addr(tile), Direction.INOUT)],
            duration=60_000,
            label="filter",
        )
        # score: reads the tile, writes a per-tile score.
        program.create_task(
            [
                Dependence(tile_addr(tile), Direction.IN),
                Dependence(score_addr(tile), Direction.OUT),
            ],
            duration=25_000,
            label="score",
        )

    # Tree reduction over the per-tile scores.
    level = [score_addr(t) for t in range(tiles)]
    partial = 0
    while len(level) > 1:
        next_level = []
        for left, right in zip(level[0::2], level[1::2]):
            out = partial_addr(partial)
            partial += 1
            program.create_task(
                [
                    Dependence(left, Direction.IN),
                    Dependence(right, Direction.IN),
                    Dependence(out, Direction.OUT),
                ],
                duration=8_000,
                label="reduce",
            )
            next_level.append(out)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return program


def main() -> None:
    tiles = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    program = build_pipeline(tiles)
    print(
        f"Custom application: {program.num_tasks} tasks "
        f"({tiles} tiles, 3-stage pipeline + tree reduction), "
        f"dependences per task {program.dependence_count_range}\n"
    )

    # --- trace round trip --------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "pipeline.trace"
        save_trace(TaskTrace(program), trace_path)
        restored = load_trace(trace_path).program
        print(
            f"Saved and re-loaded the trace ({trace_path.stat().st_size} bytes); "
            f"{restored.num_tasks} tasks restored.\n"
        )

    # --- simulate with the three runtimes ----------------------------------
    picos = simulate_program(restored, num_workers=workers, backend="hil-full")
    nanos = NanosRuntimeSimulator(restored, num_threads=workers).run()
    perfect = PerfectScheduler(restored, num_workers=workers).run()

    rows = [
        ["Picos full-system", picos.makespan, round(picos.speedup, 2),
         round(picos.worker_busy_fraction(), 2)],
        ["Nanos++ software-only", nanos.makespan, round(nanos.speedup, 2),
         round(nanos.worker_busy_fraction(), 2)],
        ["Perfect roofline", perfect.makespan, round(perfect.speedup, 2),
         round(perfect.worker_busy_fraction(), 2)],
    ]
    print(
        render_table(
            headers=["runtime", "makespan (cycles)", "speedup", "worker utilisation"],
            rows=rows,
            title=f"{workers}-worker execution of the custom application",
        )
    )

    print(
        "\nPer-task management latency (submission -> ready) on Picos: "
        f"mean {sum(t.management_latency for t in picos.timelines.values()) / len(picos.timelines):,.0f} cycles."
    )


if __name__ == "__main__":
    main()
