#!/usr/bin/env python3
"""Fine-grained task scaling: hardware vs software dependence management.

This example reproduces, on a laptop-sized problem, the headline experiment
of the paper (Figure 11): it takes one real application (blocked Cholesky),
shrinks the task granularity step by step, and compares three runtimes --

* the Picos prototype in the HIL Full-system mode,
* the Nanos++ software-only runtime,
* the Perfect (roofline) simulator --

showing how the software runtime collapses once tasks become small while
the hardware accelerator keeps scaling.

Run with::

    python examples/fine_grained_scaling.py [problem_size] [workers]
"""

from __future__ import annotations

import sys

from repro.analysis.report import render_series
from repro.apps.registry import build_benchmark
from repro.runtime.nanos import NanosRuntimeSimulator
from repro.runtime.perfect import PerfectScheduler
from repro.sim.driver import simulate_program


def main() -> None:
    problem_size = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    block_sizes = [128, 64, 32, 16]

    print(
        f"Blocked Cholesky, problem size {problem_size}, {workers} workers; "
        "speedup vs task granularity\n"
    )

    picos_curve, nanos_curve, perfect_curve, task_counts, task_sizes = [], [], [], [], []
    for block_size in block_sizes:
        program = build_benchmark("cholesky", block_size, problem_size=problem_size)
        task_counts.append(program.num_tasks)
        task_sizes.append(program.average_task_size)

        picos = simulate_program(program, num_workers=workers, backend="hil-full")
        nanos = NanosRuntimeSimulator(program, num_threads=workers).run()
        perfect = PerfectScheduler(program, num_workers=workers).run()

        picos_curve.append(picos.speedup)
        nanos_curve.append(nanos.speedup)
        perfect_curve.append(perfect.speedup)

        print(
            f"  block {block_size:4d}: {program.num_tasks:6d} tasks of "
            f"~{program.average_task_size:,.0f} cycles -> "
            f"Picos {picos.speedup:5.2f}x, Nanos++ {nanos.speedup:5.2f}x, "
            f"roofline {perfect.speedup:5.2f}x"
        )

    print()
    print(
        render_series(
            title="Speedup vs block size (finer blocks = smaller tasks)",
            x_label="block size",
            x_values=block_sizes,
            series={
                "Picos full-system": picos_curve,
                "Nanos++ software-only": nanos_curve,
                "Perfect roofline": perfect_curve,
            },
        )
    )

    finest = len(block_sizes) - 1
    advantage = picos_curve[finest] / max(nanos_curve[finest], 1e-9)
    print(
        f"\nAt the finest granularity ({task_counts[finest]} tasks of "
        f"~{task_sizes[finest]:,.0f} cycles) the hardware dependence manager "
        f"is {advantage:.1f}x faster than the software-only runtime."
    )


if __name__ == "__main__":
    main()
