"""Built-in repro-lint rules.

Importing this package registers every rule module with the framework
registry (the same self-registration idiom the simulator backends use).
Each module covers one invariant family:

========================= ============================================
:mod:`.determinism`        DET0xx -- no wall clocks, unseeded RNGs or
                           unordered-set iteration in the simulators
:mod:`.hotpath`            HOT0xx -- ``__slots__`` contracts and
                           branch-free hot loops
:mod:`.handlers`           HTB0xx -- event-kind constants vs handler
                           tables (cross-module)
:mod:`.faults`             FLT0xx -- ``FaultKind`` members vs the
                           injector and invariant-checker registries
:mod:`.parity`             PAR0xx -- flat vs reference datapath surface
                           parity and ``-1`` sentinel hygiene
:mod:`.asyncsafety`        ASY0xx -- no blocking calls / lost tasks in
                           the asyncio service
:mod:`.registry`           REG0xx -- backend registrations declare the
                           full protocol surface
:mod:`.snapshot`           SNP0xx -- hot-path ``__slots__`` state is
                           covered by the checkpoint/restore codec
========================= ============================================
"""

from __future__ import annotations

import repro.lint.rules.asyncsafety  # noqa: F401
import repro.lint.rules.determinism  # noqa: F401
import repro.lint.rules.faults  # noqa: F401
import repro.lint.rules.handlers  # noqa: F401
import repro.lint.rules.hotpath  # noqa: F401
import repro.lint.rules.parity  # noqa: F401
import repro.lint.rules.registry  # noqa: F401
import repro.lint.rules.snapshot  # noqa: F401
