"""Async-safety rules for the service layer (ASY0xx).

The session server (``service/server.py``) runs every simulation request
on one asyncio event loop; a single blocking call stalls *all* connected
clients, and a dropped ``create_task`` handle means the task can be
garbage-collected mid-flight and its exceptions silently lost.  The
service already follows the discipline (cache I/O goes through
``asyncio.to_thread``, every spawned task is retained on the session
record or awaited); these rules keep it that way:

* **ASY001** -- a known blocking call (``time.sleep``, ``subprocess.*``,
  ``socket.socket``, builtin ``open``, ``Path.read_text`` and friends)
  in the body of an ``async def`` in ``service/``.  Nested ``def``
  helpers are exempt: they are the functions handed to
  ``asyncio.to_thread`` and run off-loop.
* **ASY002** -- an ``asyncio.create_task`` / ``ensure_future`` /
  ``loop.create_task`` call whose result is discarded (a bare
  expression statement).  Keep a reference and arrange for the task to
  be awaited or observed.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Tuple

from repro.lint.framework import Finding, Rule, SourceModule, register_rule

_SCOPE = ("service/",)

#: ``module.attr`` call targets that block the event loop.
_BLOCKING_CALLS = frozenset(
    {
        ("time", "sleep"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
        ("socket", "socket"),
        ("socket", "create_connection"),
        ("requests", "get"),
        ("requests", "post"),
        ("urllib", "urlopen"),
    }
)

#: Attribute calls that hit the filesystem regardless of receiver
#: (``Path.read_text`` etc.) -- blocking wherever they appear on-loop.
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "unlink", "mkdir"}
)

#: Task-spawning calls whose return value must not be dropped.
_SPAWN_FUNCTIONS = frozenset({"create_task", "ensure_future"})


def _dotted_call(node: ast.Call) -> Tuple[str, str]:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return ("", "")


def _async_body_calls(function: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically inside ``function`` but not inside a nested def.

    Nested synchronous defs are the ``asyncio.to_thread`` workers -- they
    run on the executor, so blocking there is the whole point.
    """
    stack: List[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class BlockingCallRule(Rule):
    """ASY001: no blocking calls on the service event loop."""

    id = "ASY001"
    summary = "no blocking calls inside async def in service/"
    scope = _SCOPE

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for function in ast.walk(module.tree):
            if not isinstance(function, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(function):
                target = _dotted_call(call)
                if target in _BLOCKING_CALLS:
                    yield module.finding(
                        self.id,
                        call,
                        f"blocking call {target[0]}.{target[1]}() inside async "
                        f"def {function.name}(); wrap it in asyncio.to_thread",
                    )
                elif (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in _BLOCKING_METHODS
                ):
                    yield module.finding(
                        self.id,
                        call,
                        f"blocking filesystem call .{call.func.attr}() inside "
                        f"async def {function.name}(); wrap it in "
                        "asyncio.to_thread",
                    )
                elif isinstance(call.func, ast.Name) and call.func.id == "open":
                    yield module.finding(
                        self.id,
                        call,
                        f"blocking open() inside async def {function.name}(); "
                        "wrap the file I/O in asyncio.to_thread",
                    )


def _spawns_task(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SPAWN_FUNCTIONS:
        return True
    return isinstance(func, ast.Name) and func.id in _SPAWN_FUNCTIONS


class LostTaskRule(Rule):
    """ASY002: every spawned task handle is retained."""

    id = "ASY002"
    summary = "asyncio.create_task results must be retained or awaited"
    scope = _SCOPE

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _spawns_task(node.value)
            ):
                yield module.finding(
                    self.id,
                    node,
                    "task handle discarded; the event loop keeps only a weak "
                    "reference, so an unretained task can be collected "
                    "mid-flight and its exception lost",
                )


def _register() -> List[Rule]:
    rules: Iterable[Rule] = (BlockingCallRule(), LostTaskRule())
    return [register_rule(rule) for rule in rules]


_RULES = _register()
