"""Snapshot purity (SNP001) -- a cross-module rule.

The checkpoint/restore codec (``sim/snapshot.py``) promises bit-exact
resume: every mutable field of the hot-path state classes must be encoded
into (and decoded out of) the snapshot document.  The classes in question
are plain ``__slots__`` records, which makes the contract mechanically
checkable: a field added to a ``__slots__`` tuple that the codec never
mentions is a field the snapshot silently drops -- the restored run would
start from a subtly wrong state and the differential net would only catch
it on an input that happens to exercise that field at the cut cycle.

The rule cross-checks, per inventoried class (:data:`SNAPSHOT_INVENTORY`):

* the class's ``__slots__`` names are extracted from its module's AST;
* the codec module's AST is scanned for every name it mentions --
  attribute accesses, keyword arguments, string literals (document keys);
* a slot is *covered* when the codec mentions it directly, **or** when the
  codec calls a method of the class (by name) whose body touches the slot
  via ``self.<slot>`` -- that is how the codec delegates the event queue's
  internals to ``snapshot_events``/``restore_events`` without reaching
  into them;
* an uncovered, non-exempt slot is a finding, as is an inventoried module
  or class that no longer exists (the inventory itself must track
  refactors).

Exemptions are per-slot and deliberate: a field may be skipped only when
it is construction-fixed identity the restore target rebuilds on its own
(e.g. ``WorkerState.worker_id``, minted in pool order by ``WorkerPool``'s
constructor).  When the codec module itself is absent the rule is silent:
partial-tree lints (single-directory invocations) cannot judge coverage.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.framework import Finding, Project, Rule, register_rule

#: Package-relative key of the snapshot codec module.
SNAPSHOT_CODEC_MODULE = "sim/snapshot.py"

#: ``(module key, class name, exempt slots)`` -- every ``__slots__`` field
#: of these classes must be covered by the codec.  Exemptions name
#: construction-fixed identity fields the restore path re-mints itself.
SNAPSHOT_INVENTORY: Tuple[Tuple[str, str, FrozenSet[str]], ...] = (
    ("sim/engine.py", "Event", frozenset()),
    ("sim/engine.py", "EventQueue", frozenset()),
    # worker_id is positional identity: WorkerPool's constructor mints the
    # states in id order, and the codec stores them as an ordered list.
    ("sim/worker.py", "WorkerState", frozenset({"worker_id"})),
    ("sim/worker.py", "WorkerPool", frozenset()),
    ("core/gateway.py", "PendingSubmission", frozenset()),
    ("core/reference/task_memory.py", "DependenceSlot", frozenset()),
    ("core/reference/task_memory.py", "TaskEntry", frozenset()),
    ("core/reference/dependence_memory.py", "DMWay", frozenset()),
    ("core/reference/version_memory.py", "VersionEntry", frozenset()),
)


def _mentioned_names(tree: ast.Module) -> Set[str]:
    """Every name the codec module mentions, in any role.

    Attribute accesses (``way.tag``), keyword arguments (``DMWay(tag=...)``)
    and string literals (document keys like ``"tag"``) all count: each is a
    way the codec can handle a field.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            names.add(node.arg)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for statement in tree.body:
        if isinstance(statement, ast.ClassDef) and statement.name == name:
            return statement
    return None


def _slots_of(class_def: ast.ClassDef) -> Tuple[List[str], Optional[int]]:
    """The class's ``__slots__`` string entries and the assignment line."""
    for statement in class_def.body:
        if not isinstance(statement, ast.Assign):
            continue
        targets = [
            t.id for t in statement.targets if isinstance(t, ast.Name)
        ]
        if "__slots__" not in targets:
            continue
        value = statement.value
        if isinstance(value, (ast.Tuple, ast.List)):
            slots = [
                element.value
                for element in value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
            return slots, statement.lineno
    return [], None


def _delegated_fields(class_def: ast.ClassDef, mentioned: Set[str]) -> Set[str]:
    """Slots covered through methods the codec calls by name.

    For every method of the class whose *name* the codec mentions (e.g.
    ``snapshot_events``), every ``self.<field>`` its body touches counts as
    covered: the codec reads/writes those fields through the delegate.
    """
    covered: Set[str] = set()
    for statement in class_def.body:
        if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if statement.name not in mentioned:
            continue
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                covered.add(node.attr)
    return covered


class SnapshotPurityRule(Rule):
    """SNP001: every hot-path ``__slots__`` field is snapshot-covered."""

    id = "SNP001"
    summary = "every inventoried __slots__ field must appear in the snapshot codec"

    def check_project(self, project: Project) -> Iterator[Finding]:
        codec = project.get(SNAPSHOT_CODEC_MODULE)
        if codec is None:
            # Partial-tree lint without the codec: coverage is unjudgeable.
            return
        mentioned = _mentioned_names(codec.tree)
        for key, class_name, exempt in SNAPSHOT_INVENTORY:
            module = project.get(key)
            if module is None:
                continue
            class_def = _class_def(module.tree, class_name)
            if class_def is None:
                yield module.finding(
                    self.id,
                    1,
                    f"snapshot-inventoried class {class_name} no longer exists "
                    f"in {key}; update SNAPSHOT_INVENTORY to match the refactor",
                )
                continue
            slots, line = _slots_of(class_def)
            if line is None:
                yield module.finding(
                    self.id,
                    class_def,
                    f"snapshot-inventoried class {class_name} declares no "
                    "__slots__ tuple the rule can read",
                )
                continue
            delegated = _delegated_fields(class_def, mentioned)
            for slot in slots:
                if slot in exempt or slot in mentioned or slot in delegated:
                    continue
                yield module.finding(
                    self.id,
                    line,
                    f"{class_name}.{slot} is mutable simulator state the "
                    f"snapshot codec ({SNAPSHOT_CODEC_MODULE}) never mentions; "
                    "a restored run would silently drop it",
                )


def _register() -> List[Rule]:
    rules: Iterable[Rule] = (SnapshotPurityRule(),)
    return [register_rule(rule) for rule in rules]


_RULES = _register()
