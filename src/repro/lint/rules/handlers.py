"""Handler-table completeness (HTB001) -- a cross-module rule.

The discrete-event simulators dispatch through precomputed handler
tables: a dict from event-kind string to bound handler, consumed by
``EventQueue.dispatch`` (see ``sim/engine.py``).  An event kind that
exists as a constant but is missing from its table is a latent
``RuntimeError("unknown event kind ...")`` that only fires when that
event is first scheduled -- possibly deep into a long run.

The rule cross-checks, per watched module (:data:`HANDLER_TABLE_MODULES`):

* every module-level string constant named ``_EV_*`` (engine event kinds)
  or ``_JOB_*`` (master job kinds) is collected;
* every dict literal in the module keyed (at least partly) by those
  constant names is treated as a handler table for that constant family;
* a constant of a family that appears in **no** table of its family is a
  finding -- including the degenerate case of a family with constants
  but no table at all.

The check is purely syntactic on purpose: the tables are built inside
methods (``HILSimulator.step``, ``NanosRuntimeSimulator.run``) and keyed
by ``Name`` references to the constants, which is exactly what the AST
exposes.  A test pins the rule against the real three modules, so if the
dispatch idiom ever changes shape this rule fails loudly rather than
silently checking nothing (see ``tests/test_lint.py``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.lint.framework import Finding, Project, Rule, register_rule

#: The modules whose event-kind constants must stay handler-covered.
HANDLER_TABLE_MODULES: Tuple[str, ...] = (
    "sim/engine.py",
    "sim/hil.py",
    "runtime/nanos.py",
)

#: Constant families: one handler table (or several) must cover each.
_KIND_CONSTANT = re.compile(r"^(_EV_|_JOB_)[A-Z0-9_]+$")


def _kind_constants(tree: ast.Module) -> Dict[str, List[Tuple[str, int]]]:
    """Module-level string constants, grouped by family prefix."""
    families: Dict[str, List[Tuple[str, int]]] = {}
    for statement in tree.body:
        if not isinstance(statement, ast.Assign):
            continue
        if not (isinstance(statement.value, ast.Constant) and isinstance(statement.value.value, str)):
            continue
        for target in statement.targets:
            if isinstance(target, ast.Name):
                match = _KIND_CONSTANT.match(target.id)
                if match is not None:
                    families.setdefault(match.group(1), []).append(
                        (target.id, statement.lineno)
                    )
    return families


def _table_keys(tree: ast.Module) -> Dict[str, Set[str]]:
    """Constant names used as dict-literal keys, grouped by family."""
    covered: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key in node.keys:
            if isinstance(key, ast.Name):
                match = _KIND_CONSTANT.match(key.id)
                if match is not None:
                    covered.setdefault(match.group(1), set()).add(key.id)
    return covered


class HandlerTableRule(Rule):
    """HTB001: every event-kind constant appears in a handler table."""

    id = "HTB001"
    summary = "event-kind constants must be covered by a handler table"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for key in HANDLER_TABLE_MODULES:
            module = project.get(key)
            if module is None:
                continue
            families = _kind_constants(module.tree)
            covered = _table_keys(module.tree)
            for family in sorted(families):
                family_covered = covered.get(family, set())
                for constant, line in families[family]:
                    if constant not in family_covered:
                        yield module.finding(
                            self.id,
                            line,
                            f"event-kind constant {constant} has no entry in any "
                            f"handler table of {key}; scheduling it would raise "
                            "'unknown event kind' at dispatch time",
                        )


def _register() -> List[Rule]:
    rules: Iterable[Rule] = (HandlerTableRule(),)
    return [register_rule(rule) for rule in rules]


_RULES = _register()
