"""Hot-path discipline rules (HOT0xx).

The engine docstrings (``sim/engine.py``, ``docs/engine.md``,
``docs/datapath.md``) promise that the per-event and per-dependence value
classes are plain ``__slots__`` objects and that the fused inner loops
stay free of allocation-heavy constructs.  Those promises are contracts
the benchmarks rely on; these rules make them machine-checked:

* **HOT001** -- every class named in :data:`HOT_PATH_CLASSES` (the
  docstring-contract inventory) must declare ``__slots__`` in its body,
  and must actually exist where the contract says it does (so the
  inventory cannot rot).  Additionally, any class whose *own docstring*
  claims it is a ``__slots__`` class is held to that claim.
* **HOT002** -- the designated hot inner loops
  (:data:`HOT_LOOP_FUNCTIONS`) must not define closures, use ``yield``,
  or open ``try``/``except`` blocks: each of those costs a frame or a
  block-setup per activation on paths that run hundreds of thousands of
  times per simulation.  Deliberate exceptions (the C-speed
  ``list.index`` scan idiom) carry a reasoned suppression.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.lint.framework import Finding, Project, Rule, SourceModule, register_rule

#: The ``__slots__`` docstring-contract inventory: package-relative module
#: key -> classes that module promises are slotted value/hot classes.
#: Sources: ``sim/engine.py`` module docstring, ``core/packets.py`` module
#: docstring, the per-class contracts in ``core/gateway.py`` /
#: ``core/picos.py``, and ``docs/datapath.md``.
HOT_PATH_CLASSES: Dict[str, Tuple[str, ...]] = {
    "sim/engine.py": ("Event", "EventQueue", "HeapEventQueue"),
    "sim/worker.py": ("WorkerState", "WorkerPool"),
    "sim/results.py": ("TaskTimeline",),
    "core/packets.py": (
        "TaskSlotRef",
        "NewTaskPacket",
        "DependencePacket",
        "ReadyPacket",
        "DependentPacket",
        "FinishPacket",
        "ExecuteTaskPacket",
        "FinishedTaskPacket",
    ),
    "core/gateway.py": ("PendingSubmission", "GatewayResult"),
    "core/picos.py": ("ReadyTask", "SubmitResult", "FinishResult"),
}

#: Function names whose bodies are designated hot inner loops.
HOT_LOOP_FUNCTIONS: Tuple[str, ...] = (
    "dispatch",
    "_kick_master",
    "process_batch",
    "process_finish_run",
)

#: Modules the hot-loop rule watches (the loops above are only hot where
#: the contract docstrings say they are).
_HOT_LOOP_SCOPE = ("core/", "sim/", "runtime/")

#: A class docstring claiming the class itself is slotted.
_SLOTS_CLAIM = re.compile(r"``__slots__``\s+(?:value\s+)?class|plain\s+``__slots__``")


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            if any(isinstance(t, ast.Name) and t.id == "__slots__" for t in targets):
                return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _classes(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    return {
        node.name: node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    }


class SlotsContractRule(Rule):
    """HOT001: contract-listed (and self-claimed) classes declare __slots__."""

    id = "HOT001"
    summary = "hot-path contract classes must declare __slots__"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for key, class_names in sorted(HOT_PATH_CLASSES.items()):
            module = project.get(key)
            if module is None:
                # Partial runs (a single file, a fixture tree) simply do
                # not cover this contract entry.
                continue
            defined = _classes(module.tree)
            for class_name in class_names:
                node = defined.get(class_name)
                if node is None:
                    yield module.finding(
                        self.id,
                        1,
                        f"contract class {class_name} is missing from {key}; "
                        "update HOT_PATH_CLASSES if it moved",
                    )
                elif not _declares_slots(node):
                    yield module.finding(
                        self.id,
                        node,
                        f"hot-path class {class_name} must declare __slots__ "
                        "(docstring contract, see docs/static-analysis.md)",
                    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if not module.key.startswith(_HOT_LOOP_SCOPE):
            return
        contract = HOT_PATH_CLASSES.get(module.key, ())
        for name, node in _classes(module.tree).items():
            if name in contract:
                continue  # already policed by the project pass
            docstring = ast.get_docstring(node) or ""
            if _SLOTS_CLAIM.search(docstring) and not _declares_slots(node):
                yield module.finding(
                    self.id,
                    node,
                    f"class {name} documents itself as a __slots__ class but "
                    "declares none",
                )


def _hot_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name in HOT_LOOP_FUNCTIONS:
            yield node


class HotLoopRule(Rule):
    """HOT002: no closures, generators or try/except in hot inner loops."""

    id = "HOT002"
    summary = "designated hot loops stay free of closures, yield and try/except"
    scope = _HOT_LOOP_SCOPE

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for function in _hot_functions(module.tree):
            for node in ast.walk(function):
                if node is function:
                    continue
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    name = getattr(node, "name", "<lambda>")
                    yield module.finding(
                        self.id,
                        node,
                        f"closure {name!r} defined inside hot loop "
                        f"{function.name}(); hoist it to module or class level",
                    )
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yield module.finding(
                        self.id,
                        node,
                        f"yield inside hot loop {function.name}() turns it into "
                        "a generator (a suspend/resume per event)",
                    )
                elif isinstance(node, ast.Try):
                    yield module.finding(
                        self.id,
                        node,
                        f"try/except inside hot loop {function.name}(); restructure "
                        "or carry a reasoned suppression for the deliberate cases",
                    )


def _register() -> List[Rule]:
    rules: Iterable[Rule] = (SlotsContractRule(), HotLoopRule())
    return [register_rule(rule) for rule in rules]


_RULES = _register()
