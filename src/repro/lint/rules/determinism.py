"""Determinism rules (DET0xx): the simulators must be replayable.

Every simulation in this package is a pure function of its inputs -- the
golden-digest suite, the on-disk result cache and the differential fuzz
net all depend on that.  These rules reject the common ways wall-clock
time and unordered iteration leak into ``core/``, ``sim/`` and
``runtime/``:

* **DET001** -- wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now``, ...).  Cycle counts come from the event queue, never
  from the host clock.
* **DET002** -- nondeterministic entropy: module-level ``random.*``
  calls (process-global, seeded who-knows-where), ``os.urandom``,
  ``uuid.uuid4``, ``secrets.*``.  Randomised workloads must thread an
  explicitly seeded ``random.Random(seed)`` instance instead.
* **DET003** -- iterating an unordered set (``for x in {…}``, a
  ``set(...)``/``frozenset(...)`` call, or a set comprehension).
  Iteration order is insertion-history-dependent; sort first.
* **DET004** -- materialising a set into a sequence (``list(set(...))``,
  ``tuple``/``sorted`` minus the sort...) without an ordering step;
  ``sorted(set(...))`` is the accepted spelling.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Tuple

from repro.lint.framework import Finding, Rule, SourceModule, register_rule

#: The simulator packages that must stay deterministic.
_SCOPE = ("core/", "sim/", "runtime/")

#: ``module.attribute`` call targets that read the host clock.
_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("datetime", "now"),
        ("datetime", "today"),
        ("datetime", "utcnow"),
        ("date", "today"),
    }
)

#: Process-global entropy sources (the seeded ``random.Random`` instance
#: methods are fine -- the receiver there is a variable, not the module).
_ENTROPY_CALLS = frozenset(
    {
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
        ("secrets", "token_bytes"),
        ("secrets", "token_hex"),
        ("secrets", "token_urlsafe"),
        ("secrets", "randbelow"),
        ("secrets", "choice"),
    }
)

#: ``random.<fn>`` module-level functions that draw from the global RNG.
_GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "getrandbits",
        "normalvariate",
        "seed",
    }
)


def _dotted_call(node: ast.Call) -> Tuple[str, str]:
    """``("module", "attr")`` for a ``module.attr(...)`` call, else ``("", "")``."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return ("", "")


def _is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to a freshly built unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    """DET001/DET002: wall clocks and global entropy in the simulators."""

    id = "DET001"
    summary = "no wall-clock reads in core/, sim/ or runtime/"
    scope = _SCOPE

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _dotted_call(node)
            if target in _CLOCK_CALLS:
                yield module.finding(
                    self.id,
                    node,
                    f"wall-clock read {target[0]}.{target[1]}() in a simulator "
                    "package; simulated time comes from the event queue",
                )


class EntropyRule(Rule):
    """DET002: unseeded / process-global randomness in the simulators."""

    id = "DET002"
    summary = "no unseeded or process-global entropy in core/, sim/ or runtime/"
    scope = _SCOPE

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _dotted_call(node)
            if target in _ENTROPY_CALLS:
                yield module.finding(
                    self.id,
                    node,
                    f"nondeterministic entropy source {target[0]}.{target[1]}()",
                )
            elif target[0] == "random" and target[1] in _GLOBAL_RANDOM_FUNCTIONS:
                yield module.finding(
                    self.id,
                    node,
                    f"module-level random.{target[1]}() draws from the process-"
                    "global RNG; thread a seeded random.Random(seed) instead",
                )


def _iteration_sites(tree: ast.Module) -> Iterator[Tuple[ast.AST, ast.expr]]:
    """Every ``(node, iterable)`` pair whose iteration order is observable."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                yield node, comp.iter


class SetIterationRule(Rule):
    """DET003: unordered-set iteration in the simulators."""

    id = "DET003"
    summary = "no iteration over freshly built sets in core/, sim/ or runtime/"
    scope = _SCOPE

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node, iterable in _iteration_sites(module.tree):
            if _is_set_expression(iterable):
                yield module.finding(
                    self.id,
                    node,
                    "iterating an unordered set; sort it (sorted(...)) so the "
                    "visit order is deterministic",
                )


class SetMaterialisationRule(Rule):
    """DET004: sequencing a set without sorting it first."""

    id = "DET004"
    summary = "list()/tuple() over a set must go through sorted() first"
    scope = _SCOPE

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                continue
            if node.func.id not in ("list", "tuple") or len(node.args) != 1:
                continue
            if _is_set_expression(node.args[0]):
                yield module.finding(
                    self.id,
                    node,
                    f"{node.func.id}() over an unordered set fixes an arbitrary "
                    "order; use sorted(...)",
                )


def _register() -> List[Rule]:
    rules: Iterable[Rule] = (
        DeterminismRule(),
        EntropyRule(),
        SetIterationRule(),
        SetMaterialisationRule(),
    )
    return [register_rule(rule) for rule in rules]


_RULES = _register()
