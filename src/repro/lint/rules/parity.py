"""Flat/reference datapath parity rules (PAR0xx).

The DM/VM/TM/TRS/DCT hot core exists twice -- the flat integer-handle
implementation under ``core/`` and the object-based oracle under
``core/reference/`` (see ``docs/datapath.md``).  The differential suite
proves the two *behave* identically; these rules keep their *surfaces*
from drifting apart between fuzz runs:

* **PAR001** -- every method in the shared contract
  (:data:`SHARED_CONTRACT`) exists on both implementations, with the same
  positional parameter names where the surfaces are supposed to be
  call-compatible.
* **PAR002** -- a public method that is on neither the shared contract
  nor the declared one-side allowlists (:data:`FLAT_ONLY`,
  :data:`REFERENCE_ONLY`) is flagged: growing one surface without
  deciding what the other side does is exactly how the oracle rots.
* **PAR003** -- ``-1`` sentinel hygiene in the flat modules: handles are
  non-negative ints with ``-1`` as the *none* value, so comparing a
  handle against ``None``, defaulting a handle parameter to ``None`` or
  storing ``None`` into a handle array corrupts the C-speed scans
  (``list.index`` over tags relies on ``tag[h] != -1 ⟺ valid``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.framework import Finding, Project, Rule, SourceModule, register_rule

#: Flat module key -> (reference module key, class name checked on both sides).
DATAPATH_PAIRS: Dict[str, Tuple[str, str]] = {
    "core/dct.py": ("core/reference/dct.py", "DependenceChainTracker"),
    "core/dependence_memory.py": (
        "core/reference/dependence_memory.py",
        "DependenceMemory",
    ),
    "core/version_memory.py": ("core/reference/version_memory.py", "VersionMemory"),
    "core/task_memory.py": ("core/reference/task_memory.py", "TaskMemory"),
    "core/trs.py": ("core/reference/trs.py", "TaskReservationStation"),
}

#: Shared contract per class: method -> positional parameter names that
#: must match on both sides, or ``None`` when the two sides are allowed
#: to take different shapes (flat handles vs reference packets) and only
#: the method's *existence* is required.
SHARED_CONTRACT: Dict[str, Dict[str, Optional[Tuple[str, ...]]]] = {
    "DependenceChainTracker": {
        "can_accept": ("address", "direction"),
        "process_batch": ("slots", "dependences", "start", "end"),
        "live_addresses": (),
        "live_versions": (),
        "is_idle": (),
    },
    "DependenceMemory": {
        "set_index": ("address",),
        "capacity": (),
        "occupied": (),
        "high_water": (),
        "set_is_full": ("set_index",),
        "lookup": ("address",),
        "allocate": ("address", "input_only"),
        "release": ("address",),
        "live_addresses": (),
        "set_occupancy_histogram": (),
    },
    "VersionMemory": {
        "occupied": (),
        "full": (),
        "high_water": (),
        "total_allocations": (),
        "allocate": ("address",),
        "release": ("vm_index",),
        "live_versions_of": ("address",),
        "utilisation": (),
    },
    "TaskMemory": {
        "occupied": (),
        "full": (),
        "high_water": (),
        "has_task": ("task_id",),
        "allocate": ("task_id", "num_deps"),
        "release": ("tm_index",),
        "add_dependence_slots": ("tm_index", "dependences", "start", "end"),
        "drop_dependence_slots": ("tm_index", "count"),
        "in_flight_task_ids": (),
    },
    "TaskReservationStation": {
        "has_free_slot": (),
        "in_flight": (),
        "record_dependences": ("tm_index", "dependences", "start", "end"),
        "drop_dependence_slots": ("tm_index", "count"),
        "apply_submission_outcomes": ("tm_index", "start", "outcomes"),
        # Flat retires by (task_id, tm_index) handle pair, the reference
        # by FinishedTaskPacket -- existence only.
        "handle_finished": None,
        "tm_index_of": ("task_id",),
        "holds_task": ("task_id",),
    },
}

#: Public methods only the flat implementation carries (handle twins).
FLAT_ONLY: Dict[str, Tuple[str, ...]] = {
    "DependenceChainTracker": ("process_finish_run",),
    "DependenceMemory": ("release_handle",),
    "VersionMemory": ("is_occupied", "live_indices"),
    "TaskMemory": ("check_occupied", "tm_index_for_task"),
    "TaskReservationStation": ("accept_task", "handle_ready_slot"),
}

#: Public methods only the reference oracle carries (the object surface
#: the adapter in ``core/reference/adapter.py`` wraps).
REFERENCE_ONLY: Dict[str, Tuple[str, ...]] = {
    "DependenceChainTracker": (
        "process_dependence",
        "process_finish",
        "process_finish_batch",
    ),
    "DependenceMemory": ("find_way", "release_way"),
    "VersionMemory": ("entry", "live_entries", "snapshot"),
    "TaskMemory": (
        "entry",
        "entry_for_task",
        "add_dependence_slot",
        "dependence_slot",
    ),
    "TaskReservationStation": (
        "accept_new_task",
        "record_dependence",
        "handle_dependent",
        "handle_ready",
    ),
}


def _public_methods(tree: ast.Module, class_name: str) -> Dict[str, Tuple[ast.FunctionDef, Tuple[str, ...]]]:
    """``name -> (node, positional params sans self)`` for one class."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            methods: Dict[str, Tuple[ast.FunctionDef, Tuple[str, ...]]] = {}
            for statement in node.body:
                if isinstance(statement, ast.FunctionDef) and not statement.name.startswith("_"):
                    params = tuple(arg.arg for arg in statement.args.args[1:])
                    methods[statement.name] = (statement, params)
            return methods
    return {}


class SurfaceParityRule(Rule):
    """PAR001/PAR002: flat and reference class surfaces stay declared."""

    id = "PAR001"
    summary = "flat and reference datapath surfaces match the declared contract"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for flat_key, (reference_key, class_name) in sorted(DATAPATH_PAIRS.items()):
            flat = project.get(flat_key)
            reference = project.get(reference_key)
            if flat is None or reference is None:
                continue
            flat_methods = _public_methods(flat.tree, class_name)
            reference_methods = _public_methods(reference.tree, class_name)
            if not flat_methods:
                yield flat.finding(
                    self.id, 1, f"class {class_name} is missing from {flat_key}"
                )
                continue
            if not reference_methods:
                yield reference.finding(
                    self.id, 1, f"class {class_name} is missing from {reference_key}"
                )
                continue
            contract = SHARED_CONTRACT[class_name]
            for method, params in sorted(contract.items()):
                for side, module, methods in (
                    ("flat", flat, flat_methods),
                    ("reference", reference, reference_methods),
                ):
                    if method not in methods:
                        yield module.finding(
                            self.id,
                            1,
                            f"{class_name}.{method} is in the shared datapath "
                            f"contract but missing from the {side} implementation",
                        )
                if params is None or method not in flat_methods or method not in reference_methods:
                    continue
                flat_params = flat_methods[method][1]
                reference_params = reference_methods[method][1]
                if flat_params != reference_params:
                    yield flat.finding(
                        self.id,
                        flat_methods[method][0],
                        f"{class_name}.{method} parameter names diverge from the "
                        f"reference oracle: {flat_params!r} vs {reference_params!r}",
                    )


class SurfaceDriftRule(Rule):
    """PAR002: undeclared public methods on either datapath surface."""

    id = "PAR002"
    summary = "new public datapath methods must be declared in the parity contract"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for flat_key, (reference_key, class_name) in sorted(DATAPATH_PAIRS.items()):
            contract = frozenset(SHARED_CONTRACT[class_name])
            for key, allowlist in (
                (flat_key, FLAT_ONLY[class_name]),
                (reference_key, REFERENCE_ONLY[class_name]),
            ):
                module = project.get(key)
                if module is None:
                    continue
                declared = contract | frozenset(allowlist)
                for method, (node, _) in sorted(
                    _public_methods(module.tree, class_name).items()
                ):
                    if method not in declared:
                        yield module.finding(
                            self.id,
                            node,
                            f"undeclared public method {class_name}.{method}; add "
                            "it to the shared contract or the per-side allowlist "
                            "in repro/lint/rules/parity.py (and mirror or adapt it)",
                        )


#: A name that denotes an integer handle (or a handle array) in the flat
#: datapath modules.
_HANDLE_NAME = re.compile(
    r"(?:^|_)(?:handle|way|slot|vm_index|tm_index|dep_index|predecessor|"
    r"latest|producer|consumer|next_version)s?$"
)


def _names_handle(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return _HANDLE_NAME.search(node.id) is not None
    if isinstance(node, ast.Attribute):
        return _HANDLE_NAME.search(node.attr) is not None
    if isinstance(node, ast.Subscript):
        return _names_handle(node.value)
    return False


def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class SentinelHygieneRule(Rule):
    """PAR003: flat handles use -1, never None."""

    id = "PAR003"
    summary = "flat datapath handles use the -1 sentinel, never None"
    scope = tuple(DATAPATH_PAIRS)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(_is_none(operand) for operand in operands) and any(
                    _names_handle(operand) for operand in operands
                ):
                    yield module.finding(
                        self.id,
                        node,
                        "handle compared against None; the flat datapath's none "
                        "sentinel is -1 (docs/datapath.md)",
                    )
            elif isinstance(node, ast.Assign):
                if _is_none(node.value) and any(
                    isinstance(target, ast.Subscript) and _names_handle(target)
                    for target in node.targets
                ):
                    yield module.finding(
                        self.id,
                        node,
                        "None stored into a handle array; release paths must "
                        "write -1 so the C-speed tag scans stay valid",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                positional = args.args + args.kwonlyargs
                defaults = (
                    [None] * (len(args.args) - len(args.defaults))
                    + list(args.defaults)
                    + list(args.kw_defaults)
                )
                for arg, default in zip(positional, defaults):
                    if (
                        default is not None
                        and _is_none(default)
                        and _HANDLE_NAME.search(arg.arg) is not None
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"parameter {arg.arg!r} defaults to None; flat "
                            "handles default to -1",
                        )


def _register() -> List[Rule]:
    for rule in (SurfaceParityRule(), SurfaceDriftRule(), SentinelHygieneRule()):
        register_rule(rule)
    return []


_RULES = _register()
