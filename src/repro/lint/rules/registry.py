"""Backend-registry completeness (REG001).

Simulator backends self-register via ``register_backend(SomeBackend())``
(see ``sim/backend.py``).  The registry validates at registration time
that the instance has a ``name``; the *protocol* surface -- the
``accepts`` frozenset the CLI uses for config routing and the
``open_session`` factory the service layer drives -- is only exercised
when a session actually opens.  A backend registered without them works
in batch mode and then breaks the first service request that picks it.

REG001 resolves, per module, every class whose instance (or class
object) is passed to ``register_backend`` and requires its class body to
declare ``accepts`` and define ``open_session``.  Classes defined in
another module are out of syntactic reach and are skipped -- all real
registrations in this repo instantiate the class right in the
registering module, and the fixture tests pin that assumption.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional

from repro.lint.framework import Finding, Rule, SourceModule, register_rule

#: Class-body attributes every registered backend must carry.
_REQUIRED_ATTRIBUTES = ("accepts",)
_REQUIRED_METHODS = ("open_session",)


def _registered_class_name(call: ast.Call) -> Optional[str]:
    """The class name registered by a ``register_backend(...)`` call."""
    func = call.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    if name != "register_backend" or not call.args:
        return None
    argument = call.args[0]
    if isinstance(argument, ast.Call) and isinstance(argument.func, ast.Name):
        return argument.func.id
    if isinstance(argument, ast.Name):
        return argument.id
    return None


def _class_declares(node: ast.ClassDef, attribute: str) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == attribute
            for target in statement.targets
        ):
            return True
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == attribute
        ):
            return True
    return False


def _class_defines_method(node: ast.ClassDef, method: str) -> bool:
    return any(
        isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        and statement.name == method
        for statement in node.body
    )


class BackendRegistrationRule(Rule):
    """REG001: registered backends declare the full protocol surface."""

    id = "REG001"
    summary = "registered backends declare accepts and open_session"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            class_name = _registered_class_name(node)
            if class_name is None:
                continue
            definition = classes.get(class_name)
            if definition is None:
                continue
            for attribute in _REQUIRED_ATTRIBUTES:
                if not _class_declares(definition, attribute):
                    yield module.finding(
                        self.id,
                        definition,
                        f"backend {class_name} is registered but declares no "
                        f"{attribute!r}; the CLI cannot route configs to it",
                    )
            for method in _REQUIRED_METHODS:
                if not _class_defines_method(definition, method):
                    yield module.finding(
                        self.id,
                        definition,
                        f"backend {class_name} is registered but defines no "
                        f"{method}(); the first service session against it "
                        "will fail",
                    )


def _register() -> List[Rule]:
    rules: Iterable[Rule] = (BackendRegistrationRule(),)
    return [register_rule(rule) for rule in rules]


_RULES = _register()
