"""Fault-registry completeness (FLT001) -- a cross-module rule.

The fault-injection subsystem dispatches per kind through two registries:
:data:`repro.faults.injectors.INJECTORS` (how a
:class:`~repro.faults.scenario.FaultKind` perturbs a run) and
:data:`repro.faults.invariants.INVARIANT_CHECKERS` (how a finished run
proves the kind's recovery bookkeeping balanced).  A ``FaultKind`` member
missing from either table is a latent ``KeyError`` that only fires when
someone first arms a scenario of that kind -- the same failure shape
HTB001 guards against in the engine handler tables.

The rule cross-checks, purely syntactically:

* every member of the ``FaultKind`` enum in
  :data:`FAULT_ENUM_MODULE` (class-level ``NAME = "string"`` assignments);
* every ``FaultKind.NAME`` attribute used as a dict-literal key in each
  registry module of :data:`FAULT_REGISTRY_MODULES`;
* a member absent from any registry module's tables is a finding,
  anchored at the member's definition line.

A fixture test pins the rule against the real modules (see
``tests/test_lint.py``), so a change to the registry idiom fails loudly
instead of silently checking nothing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.lint.framework import Finding, Project, Rule, register_rule

#: Where the ``FaultKind`` enum lives.
FAULT_ENUM_MODULE = "faults/scenario.py"

#: The registries every member must appear in (module key, table role).
FAULT_REGISTRY_MODULES: Tuple[Tuple[str, str], ...] = (
    ("faults/injectors.py", "injector"),
    ("faults/invariants.py", "invariant checker"),
)


def _enum_members(tree: ast.Module) -> Dict[str, int]:
    """``FaultKind`` member names mapped to their definition lines."""
    members: Dict[str, int] = {}
    for statement in tree.body:
        if not (isinstance(statement, ast.ClassDef) and statement.name == "FaultKind"):
            continue
        for item in statement.body:
            if not isinstance(item, ast.Assign):
                continue
            if not (
                isinstance(item.value, ast.Constant)
                and isinstance(item.value.value, str)
            ):
                continue
            for target in item.targets:
                if isinstance(target, ast.Name):
                    members[target.id] = item.lineno
    return members


def _registry_keys(tree: ast.Module) -> Set[str]:
    """``FaultKind.NAME`` attributes used as dict-literal keys."""
    keys: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key in node.keys:
            if (
                isinstance(key, ast.Attribute)
                and isinstance(key.value, ast.Name)
                and key.value.id == "FaultKind"
            ):
                keys.add(key.attr)
    return keys


class FaultRegistryRule(Rule):
    """FLT001: every FaultKind member has an injector and an invariant checker."""

    id = "FLT001"
    summary = "FaultKind members must be covered by both fault registries"

    def check_project(self, project: Project) -> Iterator[Finding]:
        enum_module = project.get(FAULT_ENUM_MODULE)
        if enum_module is None:
            return
        members = _enum_members(enum_module.tree)
        for key, role in FAULT_REGISTRY_MODULES:
            registry = project.get(key)
            if registry is None:
                continue
            covered = _registry_keys(registry.tree)
            for member in sorted(members):
                if member not in covered:
                    yield enum_module.finding(
                        self.id,
                        members[member],
                        f"FaultKind.{member} has no registered {role} in {key}; "
                        "arming a scenario of this kind would raise KeyError "
                        "at plan-resolution time",
                    )


def _register() -> List[Rule]:
    rules: Iterable[Rule] = (FaultRegistryRule(),)
    return [register_rule(rule) for rule in rules]


_RULES = _register()
