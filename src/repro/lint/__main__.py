"""``python -m repro.lint`` entry point."""

from __future__ import annotations

from repro.lint.cli import main

raise SystemExit(main())
