"""Command-line driver for repro-lint.

``python -m repro.lint`` with no arguments lints the installed
``repro`` package itself -- the common CI invocation.  Explicit paths
(files or directories) override that, which is what the fixture tests
use.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.framework import LintError, all_rules, render_report, run_lint


def _default_paths() -> List[Path]:
    """The installed ``repro`` package directory."""
    import repro

    return [Path(repro.__file__).resolve().parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro package",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.summary}")
        return 0
    paths = list(arguments.paths) or _default_paths()
    try:
        findings = run_lint(paths)
    except LintError as error:
        print(f"repro-lint: error: {error}")
        return 2
    return render_report(findings)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
