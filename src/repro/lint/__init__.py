"""repro-lint: the AST-based invariant checker for this repository.

The simulators' structural invariants -- cycle determinism, the
``__slots__`` hot-path discipline, handler-table completeness, the
flat/reference datapath contract, async safety in the service layer,
backend-registry completeness -- are enforced statically here, with
stdlib ``ast`` only.  See :mod:`repro.lint.framework` for the rule and
suppression model, :mod:`repro.lint.rules` for the built-in rules, and
``docs/static-analysis.md`` for the catalogue.

Run it as ``python -m repro.lint [paths]`` or ``picos-experiment lint``.
"""

from __future__ import annotations

from repro.lint.framework import (
    Finding,
    LintError,
    Project,
    Rule,
    SourceModule,
    Suppression,
    all_rules,
    load_project,
    parse_suppressions,
    register_rule,
    render_report,
    run_lint,
)

__all__ = [
    "Finding",
    "LintError",
    "Project",
    "Rule",
    "SourceModule",
    "Suppression",
    "all_rules",
    "load_project",
    "parse_suppressions",
    "register_rule",
    "render_report",
    "run_lint",
]
