"""The repro-lint framework: rules, findings, suppressions, driver.

The repository's correctness net is mostly dynamic (golden digests,
differential fuzz, soak tests), but the *invariants* those tests probe --
cycle determinism, the ``__slots__`` hot-path discipline, handler-table
completeness, the flat/reference datapath contract, async safety in the
service -- are structural properties of the source.  This module checks
them at CI time with plain ``ast`` analysis: no third-party dependency,
same stdlib-only policy as the rest of the package.

Architecture
------------

* A **rule** is an object with an ``id`` (``DET001``-style), a one-line
  ``summary``, and either a per-file ``check_module(module)`` hook or a
  whole-project ``check_project(project)`` hook (cross-module rules such
  as handler-table completeness need to see several files at once).
* Rules register themselves in a module-level registry via
  :func:`register_rule` when their module is imported -- the same
  self-registration idiom the simulator backends use
  (:mod:`repro.sim.backend`).
* The driver (:func:`run_lint`) parses every ``.py`` file under the given
  paths once into a :class:`SourceModule` (source, AST, suppression
  comments), hands the set to every rule, and filters the raw findings
  through the per-line suppressions.

Suppressions
------------

A finding is silenced by a comment on the same physical line::

    way = tag_scan(address, base, limit)  # repro-lint: disable=HOT002(C-speed list.index scan)

The parenthesised reason is **mandatory**: a suppression without one is
itself reported (``LNT001``), and a suppression that silences nothing is
reported as stale (``LNT002``) -- so the suppression inventory stays
explained and live.  Multiple rules are separated by commas::

    # repro-lint: disable=DET003(order-insensitive fold),HOT002(cold path)
"""

from __future__ import annotations

import ast
import re
import tokenize
from io import StringIO
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintError",
    "Project",
    "Rule",
    "SourceModule",
    "Suppression",
    "all_rules",
    "parse_suppressions",
    "register_rule",
    "run_lint",
]

#: The whole suppression directive (see the module docstring for its
#: shape); individual entries are split by :data:`_SUPPRESSION_ENTRY`.
_SUPPRESSION_COMMENT = re.compile(r"#\s*repro-lint:\s*disable=(?P<entries>.+)$")

#: One ``RULE(reason)`` entry; the reason group is absent when the
#: parentheses (or their content) are missing.
_SUPPRESSION_ENTRY = re.compile(
    r"\s*(?P<rule>[A-Z]{3}\d{3})\s*(?:\(\s*(?P<reason>[^)]*?)\s*\))?\s*"
)

#: Rule-ID shape every registered rule must follow.
_RULE_ID = re.compile(r"^[A-Z]{3}\d{3}$")


class LintError(RuntimeError):
    """A file could not be read or parsed (reported, never swallowed)."""


class Finding:
    """One rule violation, anchored to ``path:line``."""

    __slots__ = ("rule_id", "path", "line", "message")

    def __init__(self, rule_id: str, path: str, line: int, message: str) -> None:
        self.rule_id = rule_id
        self.path = path
        self.line = line
        self.message = message

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule_id)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def __repr__(self) -> str:
        return f"Finding({self.rule_id!r}, {self.path!r}, {self.line!r}, {self.message!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return (
            self.rule_id == other.rule_id
            and self.path == other.path
            and self.line == other.line
            and self.message == other.message
        )

    def __hash__(self) -> int:
        return hash((self.rule_id, self.path, self.line, self.message))


class Suppression:
    """One ``disable=RULE(reason)`` directive on one physical line."""

    __slots__ = ("rule_id", "line", "reason", "used")

    def __init__(self, rule_id: str, line: int, reason: str) -> None:
        self.rule_id = rule_id
        self.line = line
        self.reason = reason
        #: Set by the driver when the suppression silences a finding.
        self.used = False

    def __repr__(self) -> str:
        return f"Suppression({self.rule_id!r}, line={self.line!r}, reason={self.reason!r})"


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression directive from ``source``.

    Comments are found with :mod:`tokenize` (never by substring scanning),
    so directive-looking text inside string literals is ignored.  Entries
    with a missing or empty reason are returned with ``reason == ""`` --
    the driver turns those into ``LNT001`` findings rather than dropping
    them, so a lazy suppression cannot silently take effect.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_COMMENT.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        for entry in match.group("entries").split(","):
            entry_match = _SUPPRESSION_ENTRY.fullmatch(entry)
            if entry_match is None:
                # Malformed entry: surface it as a reasonless suppression
                # of nothing so LNT001 points a human at the typo.
                suppressions.append(Suppression("LNT000", line, ""))
                continue
            reason = entry_match.group("reason") or ""
            suppressions.append(Suppression(entry_match.group("rule"), line, reason))
    return suppressions


class SourceModule:
    """One parsed source file handed to the rules."""

    __slots__ = ("path", "key", "source", "lines", "tree", "suppressions")

    def __init__(self, path: Path, key: str, source: str, tree: ast.Module) -> None:
        #: Absolute location on disk (for error reporting).
        self.path = path
        #: Package-relative key, ``/``-separated (``core/dct.py``) -- what
        #: rule scopes and cross-module lookups match against.
        self.key = key
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions = parse_suppressions(source)

    def finding(self, rule_id: str, node_or_line: object, message: str) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        line = node_or_line if isinstance(node_or_line, int) else getattr(node_or_line, "lineno", 1)
        return Finding(rule_id, self.key, int(line), message)


class Project:
    """The full set of modules one lint run covers."""

    __slots__ = ("modules",)

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: Dict[str, SourceModule] = {module.key: module for module in modules}

    def get(self, key: str) -> Optional[SourceModule]:
        return self.modules.get(key)

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` and ``summary`` and override exactly one of
    ``check_module`` (runs once per in-scope file) or ``check_project``
    (runs once per lint invocation, for cross-module invariants).  The
    optional ``scope`` restricts ``check_module`` to files whose
    package-relative key starts with one of the given prefixes.
    """

    #: ``ABC123``-style identifier, unique across the registry.
    id: str = ""
    #: One-line description shown by ``--list-rules``.
    summary: str = ""
    #: Key prefixes ``check_module`` applies to; empty means every file.
    scope: Tuple[str, ...] = ()

    def applies_to(self, module: SourceModule) -> bool:
        if not self.scope:
            return True
        return module.key.startswith(self.scope)

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Rule] = {}
_RULES_LOADED = False


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (used at rule-module import time)."""
    if not _RULE_ID.match(rule.id):
        raise ValueError(f"rule id {rule.id!r} must match AAA000")
    if rule.id in _REGISTRY:
        raise ValueError(f"a rule with id {rule.id!r} is already registered")
    if not rule.summary:
        raise ValueError(f"rule {rule.id} must carry a one-line summary")
    _REGISTRY[rule.id] = rule
    return rule


def _load_builtin_rules() -> None:
    global _RULES_LOADED
    if _RULES_LOADED:
        return
    _RULES_LOADED = True
    import repro.lint.rules  # noqa: F401  (registers the built-in rules)


def all_rules() -> Tuple[Rule, ...]:
    """Registered rules, sorted by id."""
    _load_builtin_rules()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


# ----------------------------------------------------------------------
# file collection and key derivation
# ----------------------------------------------------------------------
def _module_key(path: Path, root: Path) -> str:
    """Package-relative key of ``path``: ``core/dct.py``-style.

    Keys are what rule scopes and the cross-module rules address files
    by, so they must be stable however the linter is invoked -- with the
    ``src`` root, the ``src/repro`` root, or a single subpackage.  When
    the absolute path contains a ``repro`` package component, the key is
    everything after its *last* occurrence; otherwise (fixture trees in
    tests) the key is the path relative to the scan root.
    """
    resolved = path.resolve()
    parts = list(resolved.parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        tail = parts[index + 1 :]
        if tail:
            return "/".join(tail)
    try:
        relative = resolved.relative_to(root.resolve())
    except ValueError:
        relative = Path(path.name)
    return "/".join(relative.parts)


def _collect_files(paths: Sequence[Path]) -> List[Tuple[Path, Path]]:
    """Resolve CLI path arguments to ``(file, scan_root)`` pairs."""
    collected: List[Tuple[Path, Path]] = []
    for path in paths:
        if path.is_dir():
            collected.extend((file, path) for file in sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            collected.append((path, path.parent))
        else:
            raise LintError(f"{path}: not a Python file or directory")
    return collected


def load_project(paths: Sequence[Path]) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`."""
    modules: List[SourceModule] = []
    for file_path, root in _collect_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"{file_path}: {error}") from error
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as error:
            raise LintError(f"{file_path}: syntax error: {error}") from error
        modules.append(SourceModule(file_path, _module_key(file_path, root), source, tree))
    return Project(modules)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def _apply_suppressions(project: Project, findings: List[Finding]) -> List[Finding]:
    """Filter findings through suppression comments; police the comments.

    A finding is dropped when its file carries a suppression for its rule
    on the same line *with a reason*.  Reasonless suppressions never
    silence anything and are reported as ``LNT001``; suppressions that
    silenced nothing are reported as stale (``LNT002``).
    """
    by_key: Dict[str, Dict[Tuple[str, int], Suppression]] = {}
    for module in project:
        table = by_key.setdefault(module.key, {})
        for suppression in module.suppressions:
            table[(suppression.rule_id, suppression.line)] = suppression

    kept: List[Finding] = []
    for finding in findings:
        suppression = by_key.get(finding.path, {}).get((finding.rule_id, finding.line))
        if suppression is not None and suppression.reason:
            suppression.used = True
            continue
        kept.append(finding)

    for module in project:
        for suppression in module.suppressions:
            if not suppression.reason:
                kept.append(
                    Finding(
                        "LNT001",
                        module.key,
                        suppression.line,
                        f"suppression of {suppression.rule_id} carries no reason; "
                        "write '# repro-lint: disable=RULE(why this is deliberate)'",
                    )
                )
            elif not suppression.used:
                kept.append(
                    Finding(
                        "LNT002",
                        module.key,
                        suppression.line,
                        f"stale suppression: no {suppression.rule_id} finding on this "
                        "line; delete the comment",
                    )
                )
    return kept


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint ``paths`` and return the surviving findings, sorted.

    ``rules`` defaults to the full registry; passing an explicit sequence
    is how the test fixtures exercise one rule in isolation.
    """
    project = load_project(paths)
    active = tuple(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active:
        for module in project:
            if rule.applies_to(module):
                findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(project))
    return sorted(_apply_suppressions(project, findings), key=Finding.sort_key)


def render_report(
    findings: Sequence[Finding], *, write: Callable[[str], object] = print
) -> int:
    """Print findings (one per line) and return the process exit code."""
    for finding in findings:
        write(finding.render())
    if findings:
        write(f"{len(findings)} finding(s)")
        return 1
    write("repro-lint: clean")
    return 0
