"""Reproduction of the Picos hardware task-dependence-management accelerator.

This package reproduces, in pure Python, the system described in

    Tan, Bosch, Jimenez-Gonzalez, Alvarez-Martinez, Ayguade, Valero,
    "Performance Analysis of a Hardware Accelerator of Dependence Management
    for Task-based Dataflow Programming models", ISPASS 2016.

The package is organised around the subsystems the paper builds or relies on:

``repro.core``
    The Picos accelerator itself: Gateway, Task Reservation Station (TRS)
    with Task Memories, Dependence Chain Tracker (DCT) with Dependence and
    Version Memories, Arbiter and Task Scheduler, plus the three Dependence
    Memory designs the paper explores (8-way, 16-way, Pearson + 8-way).

``repro.runtime``
    The OmpSs-side substrate: task/dependence model, exact software
    dependence analysis, the Nanos++ software-only runtime model and the
    Perfect (roofline) scheduler.

``repro.sim``
    The Hardware-In-the-Loop execution platform: workers, communication
    costs and the three operational modes (HW-only, HW+communication,
    Full-system).

``repro.traces``
    Trace format plus the seven synthetic benchmarks of the paper.

``repro.apps``
    Task-graph generators for the five real applications (Gauss-Seidel Heat,
    LU, SparseLU, Cholesky, H264dec).

``repro.hardware``
    FPGA resource-cost model reproducing Table III.

``repro.analysis`` and ``repro.experiments``
    Metrics, report rendering and one driver per table/figure of the paper.
"""

from repro.core.config import DMDesign, PicosConfig
from repro.core.picos import PicosAccelerator
from repro.runtime.task import Dependence, Direction, Task, TaskProgram
from repro.sim.backend import (
    SimulatorBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.sim.driver import simulate_program, simulate_request
from repro.sim.hil import HILMode
from repro.sim.request import InvalidRequestError, SimulationRequest
from repro.sim.session import SimulationSession, open_session

__all__ = [
    "DMDesign",
    "PicosConfig",
    "PicosAccelerator",
    "Dependence",
    "Direction",
    "Task",
    "TaskProgram",
    "HILMode",
    "InvalidRequestError",
    "SimulationRequest",
    "SimulationSession",
    "SimulatorBackend",
    "backend_names",
    "get_backend",
    "open_session",
    "register_backend",
    "simulate_program",
    "simulate_request",
]

__version__ = "1.2.0"
