"""Blocked sparse LU factorisation (the paper's ``SparseLu`` benchmark).

The OmpSs SparseLU benchmark factorises a blocked matrix in which only some
blocks are allocated; the sparsity pattern is generated deterministically
(the classic BSC/BOTS ``genmat`` pattern) and fill-in blocks are allocated
on demand when an update touches a previously-null block.  Per step ``k``
four kernels are created, each only for non-null operand blocks:

* ``lu0(k)``: ``inout A(k, k)`` -- 1 dependence;
* ``fwd(k, j)``: ``in A(k, k)``, ``inout A(k, j)`` -- 2;
* ``bdiv(k, i)``: ``in A(k, k)``, ``inout A(i, k)`` -- 2;
* ``bmod(k, i, j)``: ``in A(i, k)``, ``in A(k, j)``, ``inout A(i, j)`` -- 3
  (allocating ``A(i, j)`` as fill-in when it was null).

The 1-3 dependences per task match Table I.  Because the sparsity pattern
here is a faithful re-implementation rather than the exact binary the
authors traced, task counts are close to but not identical with Table I;
the actual counts are recorded by the Table I experiment driver.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.apps.common import BlockAddressMap, validate_blocking
from repro.runtime.task import Dependence, Direction, TaskProgram

#: Relative work units of the sparse kernels.
_LU0_WORK = 2
_FWD_WORK = 3
_BDIV_WORK = 3
_BMOD_WORK = 6


def initial_structure(nb: int) -> Set[Tuple[int, int]]:
    """Non-null blocks of the initial sparse matrix.

    The pattern follows the spirit of the BSC ``genmat`` generators: a full
    block diagonal, the first off-diagonals, and a sparse lattice of blocks
    selected by small modular conditions on the block coordinates.  The
    constants are calibrated so that, with fill-in, the task counts track
    the Table I values of the paper's SparseLu traces (they match within a
    few percent for the two finest block sizes, which dominate the
    evaluation; the coarse block sizes create so few tasks that the absolute
    discrepancy is a handful of tasks).
    """
    non_null: Set[Tuple[int, int]] = set()
    for ii in range(nb):
        for jj in range(nb):
            if ii == jj or ii == jj - 1 or ii - 1 == jj:
                non_null.add((ii, jj))
            elif ii % 3 == 0 and jj % 3 == 0 and (ii + jj) % 2 == 0:
                non_null.add((ii, jj))
    return non_null


def sparselu_program(
    problem_size: int = 2048,
    block_size: int = 256,
    base_address: Optional[int] = None,
) -> TaskProgram:
    """Build the blocked sparse LU task program."""
    nb = validate_blocking(problem_size, block_size)
    matrix = BlockAddressMap(nb, block_size, base_address or BlockAddressMap(nb, block_size).base)
    program = TaskProgram(name=f"sparselu-{problem_size}-{block_size}")
    non_null = initial_structure(nb)

    for k in range(nb):
        program.create_task(
            [Dependence(matrix.address(k, k), Direction.INOUT)],
            duration=_LU0_WORK,
            label="lu0",
        )
        for j in range(k + 1, nb):
            if (k, j) in non_null:
                program.create_task(
                    [
                        Dependence(matrix.address(k, k), Direction.IN),
                        Dependence(matrix.address(k, j), Direction.INOUT),
                    ],
                    duration=_FWD_WORK,
                    label="fwd",
                )
        for i in range(k + 1, nb):
            if (i, k) in non_null:
                program.create_task(
                    [
                        Dependence(matrix.address(k, k), Direction.IN),
                        Dependence(matrix.address(i, k), Direction.INOUT),
                    ],
                    duration=_BDIV_WORK,
                    label="bdiv",
                )
        for i in range(k + 1, nb):
            if (i, k) not in non_null:
                continue
            for j in range(k + 1, nb):
                if (k, j) not in non_null:
                    continue
                # The update allocates A(i, j) as fill-in when it was null.
                non_null.add((i, j))
                program.create_task(
                    [
                        Dependence(matrix.address(i, k), Direction.IN),
                        Dependence(matrix.address(k, j), Direction.IN),
                        Dependence(matrix.address(i, j), Direction.INOUT),
                    ],
                    duration=_BMOD_WORK,
                    label="bmod",
                )
    return program


def sparselu_task_count(problem_size: int, block_size: int) -> int:
    """Number of tasks the sparse LU creates for this blocking."""
    return sparselu_program(problem_size, block_size).num_tasks


def density(nb: int) -> float:
    """Initial fraction of non-null blocks (diagnostic helper)."""
    return len(initial_structure(nb)) / float(nb * nb)
