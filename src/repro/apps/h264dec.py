"""H.264 decoder macroblock wavefront (the paper's ``H264dec`` benchmark).

The Starbench ``h264dec`` used in the paper decodes HD frames with
macroblock-level parallelism: a macroblock can only be reconstructed once
its intra-prediction neighbours in the same frame (left, top-left, top and
top-right) and its co-located reference in the previous frame are done.
The paper evaluates four task granularities, labelled 8, 4, 2 and 1, which
group that many macroblocks per side into one task.

The generator builds exactly that dependence structure on a configurable
macroblock grid:

* ``inout`` on the task's own block region;
* ``in`` on the left, top-left, top and top-right neighbouring regions of
  the same frame (when they exist);
* ``in`` on the co-located region of the previous frame (motion
  compensation reference), for every frame after the first.

Interior tasks therefore carry 6 dependences and boundary/first-frame tasks
carry 2-5, matching the 2-6 range of Table I.  The default grid (120 x 116
macroblocks, 10 frames) gives task counts close to the Table I values for
the four granularities.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.common import DEFAULT_BASE_ADDRESS
from repro.runtime.task import Dependence, Direction, TaskProgram

#: Macroblock grid of one HD frame at the finest granularity.
DEFAULT_MB_COLS = 120
DEFAULT_MB_ROWS = 116
#: Bytes occupied by the decoded pixels of one macroblock (16x16 + chroma).
_MACROBLOCK_BYTES = 384


def h264dec_program(
    frames: int = 10,
    block_size: int = 8,
    mb_cols: int = DEFAULT_MB_COLS,
    mb_rows: int = DEFAULT_MB_ROWS,
    base_address: Optional[int] = None,
) -> TaskProgram:
    """Build the macroblock-wavefront decode task program.

    Parameters
    ----------
    frames:
        Number of frames to decode (the paper uses 10 HD frames).
    block_size:
        Macroblocks per task side (8, 4, 2 or 1 in the paper); smaller means
        finer-grained tasks and more of them.
    mb_cols / mb_rows:
        Macroblock grid of one frame; the defaults approximate the HD
        sequence of the paper.
    """
    if frames < 1:
        raise ValueError("at least one frame is required")
    if block_size < 1:
        raise ValueError("block size must be positive")
    cols = (mb_cols + block_size - 1) // block_size
    rows = (mb_rows + block_size - 1) // block_size
    base = base_address if base_address is not None else DEFAULT_BASE_ADDRESS
    region_bytes = _MACROBLOCK_BYTES * block_size * block_size
    frame_bytes = _round_up(region_bytes * cols * rows, 1 << 20)

    def region_address(frame: int, x: int, y: int) -> int:
        return base + frame * frame_bytes + (y * cols + x) * region_bytes

    program = TaskProgram(name=f"h264dec-{frames}f-{block_size}")
    for frame in range(frames):
        for y in range(rows):
            for x in range(cols):
                deps: List[Dependence] = [
                    Dependence(region_address(frame, x, y), Direction.INOUT)
                ]
                neighbours = (
                    (x - 1, y),      # left
                    (x - 1, y - 1),  # top-left
                    (x, y - 1),      # top
                    (x + 1, y - 1),  # top-right
                )
                for nx, ny in neighbours:
                    if 0 <= nx < cols and 0 <= ny < rows:
                        deps.append(
                            Dependence(region_address(frame, nx, ny), Direction.IN)
                        )
                if frame > 0:
                    deps.append(
                        Dependence(region_address(frame - 1, x, y), Direction.IN)
                    )
                program.create_task(deps, duration=4, label="macroblock_region")
    return program


def h264dec_task_count(
    frames: int = 10,
    block_size: int = 8,
    mb_cols: int = DEFAULT_MB_COLS,
    mb_rows: int = DEFAULT_MB_ROWS,
) -> int:
    """Number of tasks the decoder creates for this granularity."""
    cols = (mb_cols + block_size - 1) // block_size
    rows = (mb_rows + block_size - 1) // block_size
    return frames * cols * rows


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
