"""Blocked LU factorisation (the paper's ``Lu`` benchmark).

The OmpSs ``lu`` kernel of the BSC Application Repository used by the paper
decomposes an ``m x n`` matrix in square blocks and, per factorisation step
``k``, runs one diagonal task followed by one panel task per remaining
column of the step's row.  Table I pins the structure down precisely: for a
``2048`` problem the task count is ``nb * (nb + 1) / 2`` (36, 136, 528 and
2080 tasks for block sizes 256, 128, 64 and 32) with 2 dependences per task.
The generator reproduces exactly that structure:

* diagonal task ``D_k``: ``inout A(k, k)`` plus, for ``k > 0``, ``in
  A(k-1, k)`` (the panel block the previous step produced on its column);
* panel task ``P_{k, j}`` (``j > k``): ``in A(k, k)`` and ``inout A(k, j)``.

The critical path is ``D_0 -> P_{0,1} -> D_1 -> P_{1,2} -> ...``: after each
diagonal task the panel tasks of the step are independent of each other, but
only the *first* panel task (``j = k + 1``) feeds the next diagonal.

This makes Lu the corner case discussed in Section V-A: Picos wakes the
consumers of ``A(k, k)`` starting from the *last* one, so with the default
creation order (``j`` increasing) the critical panel task is woken last and
the critical path is delayed.  :func:`modified_lu_program` reproduces the
paper's *MLu* fix by creating the panel tasks in reverse column order, which
places the critical consumer last in creation order and therefore first in
wake-up order (Figure 9, left); using a LIFO Task Scheduler has a similar
effect (Figure 9, right).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.apps.common import BlockAddressMap, validate_blocking
from repro.runtime.task import Dependence, Direction, TaskProgram

#: Relative work units of the diagonal (getrf-like) task.
_DIAG_WORK = 2
#: Relative work units of a panel (trsm-like) task.
_PANEL_WORK = 3


def _build(
    problem_size: int,
    block_size: int,
    panel_order_reversed: bool,
    name: str,
    base_address: Optional[int],
) -> TaskProgram:
    nb = validate_blocking(problem_size, block_size)
    matrix = BlockAddressMap(nb, block_size, base_address or BlockAddressMap(nb, block_size).base)
    program = TaskProgram(name=f"{name}-{problem_size}-{block_size}")

    for k in range(nb):
        deps: List[Dependence] = [Dependence(matrix.address(k, k), Direction.INOUT)]
        if k > 0:
            deps.append(Dependence(matrix.address(k - 1, k), Direction.IN))
        program.create_task(deps, duration=_DIAG_WORK, label="lu_diag")

        columns: Iterable[int] = range(k + 1, nb)
        if panel_order_reversed:
            columns = reversed(range(k + 1, nb))
        for j in columns:
            program.create_task(
                [
                    Dependence(matrix.address(k, k), Direction.IN),
                    Dependence(matrix.address(k, j), Direction.INOUT),
                ],
                duration=_PANEL_WORK,
                label="lu_panel",
            )
    return program


def lu_program(
    problem_size: int = 2048,
    block_size: int = 256,
    base_address: Optional[int] = None,
) -> TaskProgram:
    """Build the Lu benchmark with the original creation order."""
    return _build(problem_size, block_size, False, "lu", base_address)


def modified_lu_program(
    problem_size: int = 2048,
    block_size: int = 256,
    base_address: Optional[int] = None,
) -> TaskProgram:
    """Build the *MLu* variant of Figure 9 (reversed panel creation order)."""
    return _build(problem_size, block_size, True, "mlu", base_address)


def lu_task_count(problem_size: int, block_size: int) -> int:
    """Number of tasks of the Lu benchmark (``nb * (nb + 1) / 2``)."""
    nb = validate_blocking(problem_size, block_size)
    return nb * (nb + 1) // 2
