"""Shared helpers for the application task-graph generators.

All generators address matrix blocks through :class:`BlockAddressMap`,
which mimics the memory layout of the real OmpSs benchmarks: block ``(i,
j)`` of a blocked matrix lives at ``base + (i * nb + j) * block_bytes``.
Because block sizes are powers of two times the element size, the resulting
addresses are strongly aligned -- exactly the clustering that makes the
direct-hash DM designs conflict (Section III-C and Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.runtime.task import TaskProgram

#: Size in bytes of one matrix element (double precision).
ELEMENT_BYTES = 8
#: Default base address of the first matrix of a benchmark.
DEFAULT_BASE_ADDRESS = 0x4000_0000


@dataclass(frozen=True)
class BlockAddressMap:
    """Address map of one blocked matrix."""

    #: Number of blocks per matrix dimension.
    num_blocks: int
    #: Block side length in elements.
    block_size: int
    #: Base address of the matrix.
    base: int = DEFAULT_BASE_ADDRESS

    @property
    def block_bytes(self) -> int:
        """Bytes occupied by one block."""
        return self.block_size * self.block_size * ELEMENT_BYTES

    def address(self, i: int, j: int) -> int:
        """Address of block ``(i, j)``."""
        if not (0 <= i < self.num_blocks and 0 <= j < self.num_blocks):
            raise IndexError(
                f"block ({i}, {j}) outside a {self.num_blocks}x{self.num_blocks} grid"
            )
        return self.base + (i * self.num_blocks + j) * self.block_bytes

    def next_matrix_base(self) -> int:
        """Base address for a second matrix laid out after this one."""
        total = self.num_blocks * self.num_blocks * self.block_bytes
        return self.base + _round_up(total, 1 << 20)


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def validate_blocking(problem_size: int, block_size: int) -> int:
    """Check a problem/block size pair and return the number of blocks."""
    if problem_size <= 0 or block_size <= 0:
        raise ValueError("problem and block sizes must be positive")
    if problem_size % block_size != 0:
        raise ValueError(
            f"problem size {problem_size} is not a multiple of block size "
            f"{block_size}"
        )
    num_blocks = problem_size // block_size
    if num_blocks < 1:
        raise ValueError("the problem must contain at least one block")
    return num_blocks


def scale_durations_to_mean(program: TaskProgram, target_mean: float) -> TaskProgram:
    """Scale every task duration so the program mean matches ``target_mean``.

    Generators emit durations in *relative work units* (roughly proportional
    to the floating-point work of each kernel); this helper rescales them to
    the average task size reported in Table I so sequential execution times
    and management/computation ratios match the paper's traces.
    """
    if target_mean <= 0:
        raise ValueError("target mean duration must be positive")
    current_mean = program.average_task_size
    if current_mean <= 0:
        return program
    factor = target_mean / current_mean
    for task in program:
        task.duration = max(1, int(round(task.duration * factor)))
    return program


def total_relative_work(durations: Iterable[int]) -> int:
    """Sum of relative work units (used by generator unit tests)."""
    return sum(durations)
