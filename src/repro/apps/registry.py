"""Benchmark registry and Table I calibration data.

This module ties the application generators to the exact configurations of
the paper: for every benchmark and block size of Table I it records the
reference task count, dependence range, average task size and sequential
execution time, and it knows how to build the corresponding task program
with durations scaled so the average task size matches the reference.

The registry is the single entry point used by the experiment drivers: give
it a benchmark name and a block size and it returns a ready-to-simulate
:class:`~repro.runtime.task.TaskProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.common import scale_durations_to_mean
from repro.apps.cholesky import cholesky_program
from repro.apps.h264dec import h264dec_program
from repro.apps.heat import heat_program
from repro.apps.lu import lu_program, modified_lu_program
from repro.apps.sparselu import sparselu_program
from repro.runtime.task import TaskProgram


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I (one benchmark at one block size)."""

    benchmark: str
    problem_size: str
    block_size: int
    num_tasks: int
    dep_range: Tuple[int, int]
    average_task_size: float
    sequential_cycles: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """A benchmark known to the registry."""

    name: str
    #: Human-readable problem-size label of Table I ("2048", "10f").
    problem_label: str
    #: Block sizes evaluated in the paper, coarse to fine.
    block_sizes: Tuple[int, ...]
    #: Generator building the program for ``(block_size)``.
    builder: Callable[[int], TaskProgram]
    #: Table I reference data keyed by block size.
    table1: Dict[int, Table1Row]


def _rows(
    benchmark: str,
    problem: str,
    data: List[Tuple[int, int, Tuple[int, int], float, float]],
) -> Dict[int, Table1Row]:
    rows: Dict[int, Table1Row] = {}
    for block_size, tasks, dep_range, avg_size, seq in data:
        rows[block_size] = Table1Row(
            benchmark=benchmark,
            problem_size=problem,
            block_size=block_size,
            num_tasks=tasks,
            dep_range=dep_range,
            average_task_size=avg_size,
            sequential_cycles=seq,
        )
    return rows


#: Table I of the paper, transcribed verbatim.
TABLE1: Dict[str, Dict[int, Table1Row]] = {
    "heat": _rows(
        "heat",
        "2048",
        [
            (256, 64, (1, 5), 3.51e6, 2.25e8),
            (128, 256, (1, 5), 8.20e5, 2.07e8),
            (64, 1024, (1, 5), 2.17e5, 2.11e8),
            (32, 4096, (1, 5), 7.19e4, 2.41e8),
        ],
    ),
    "lu": _rows(
        "lu",
        "2048",
        [
            (256, 36, (1, 2), 5.67e7, 2.04e9),
            (128, 136, (1, 2), 1.49e7, 2.04e9),
            (64, 528, (1, 2), 4.13e6, 2.17e9),
            (32, 2080, (1, 2), 1.53e6, 3.18e9),
        ],
    ),
    "sparselu": _rows(
        "sparselu",
        "2048",
        [
            (256, 34, (1, 3), 2.74e7, 9.30e8),
            (128, 212, (1, 3), 4.36e6, 9.24e8),
            (64, 1512, (1, 3), 6.47e5, 9.78e8),
            (32, 11472, (1, 3), 8.28e4, 9.50e8),
        ],
    ),
    "cholesky": _rows(
        "cholesky",
        "2048",
        [
            (256, 120, (1, 3), 6.63e6, 7.61e8),
            (128, 816, (1, 3), 9.71e5, 7.89e8),
            (64, 5984, (1, 3), 1.47e5, 8.77e8),
            (32, 45760, (1, 3), 2.94e4, 1.34e9),
        ],
    ),
    "h264dec": _rows(
        "h264dec",
        "10f",
        [
            (8, 2659, (2, 6), 2.06e6, 5.48e9),
            (4, 9306, (2, 6), 5.91e5, 5.50e9),
            (2, 35894, (2, 6), 1.53e5, 5.48e9),
            (1, 139934, (2, 6), 3.94e4, 5.51e9),
        ],
    ),
}

#: Default problem size (elements) used for the dense/sparse kernels.
DEFAULT_PROBLEM_SIZE = 2048
#: Default frame count for H264dec.
DEFAULT_FRAMES = 10


def _heat_builder(block_size: int, problem_size: int = DEFAULT_PROBLEM_SIZE) -> TaskProgram:
    return heat_program(problem_size, block_size)


def _lu_builder(block_size: int, problem_size: int = DEFAULT_PROBLEM_SIZE) -> TaskProgram:
    return lu_program(problem_size, block_size)


def _mlu_builder(block_size: int, problem_size: int = DEFAULT_PROBLEM_SIZE) -> TaskProgram:
    return modified_lu_program(problem_size, block_size)


def _sparselu_builder(block_size: int, problem_size: int = DEFAULT_PROBLEM_SIZE) -> TaskProgram:
    return sparselu_program(problem_size, block_size)


def _cholesky_builder(block_size: int, problem_size: int = DEFAULT_PROBLEM_SIZE) -> TaskProgram:
    return cholesky_program(problem_size, block_size)


def _h264dec_builder(block_size: int, frames: int = DEFAULT_FRAMES) -> TaskProgram:
    return h264dec_program(frames=frames, block_size=block_size)


PAPER_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "heat": BenchmarkSpec(
        name="heat",
        problem_label="2048",
        block_sizes=(256, 128, 64, 32),
        builder=_heat_builder,
        table1=TABLE1["heat"],
    ),
    "lu": BenchmarkSpec(
        name="lu",
        problem_label="2048",
        block_sizes=(256, 128, 64, 32),
        builder=_lu_builder,
        table1=TABLE1["lu"],
    ),
    "mlu": BenchmarkSpec(
        name="mlu",
        problem_label="2048",
        block_sizes=(256, 128, 64, 32),
        builder=_mlu_builder,
        table1=TABLE1["lu"],
    ),
    "sparselu": BenchmarkSpec(
        name="sparselu",
        problem_label="2048",
        block_sizes=(256, 128, 64, 32),
        builder=_sparselu_builder,
        table1=TABLE1["sparselu"],
    ),
    "cholesky": BenchmarkSpec(
        name="cholesky",
        problem_label="2048",
        block_sizes=(256, 128, 64, 32),
        builder=_cholesky_builder,
        table1=TABLE1["cholesky"],
    ),
    "h264dec": BenchmarkSpec(
        name="h264dec",
        problem_label="10f",
        block_sizes=(8, 4, 2, 1),
        builder=_h264dec_builder,
        table1=TABLE1["h264dec"],
    ),
}


def benchmark_names() -> Tuple[str, ...]:
    """Names of the benchmarks evaluated in the paper (plus ``mlu``)."""
    return tuple(PAPER_BENCHMARKS)


def registered_block_sizes(benchmark: str) -> Tuple[int, ...]:
    """Block sizes of one benchmark, coarse to fine (Table I order)."""
    return _spec(benchmark).block_sizes


def table1_reference(benchmark: str, block_size: int) -> Table1Row:
    """The Table I row for one benchmark / block-size pair."""
    spec = _spec(benchmark)
    if block_size not in spec.table1:
        raise KeyError(
            f"block size {block_size} of {benchmark!r} is not part of Table I; "
            f"available: {sorted(spec.table1)}"
        )
    return spec.table1[block_size]


def build_benchmark(
    benchmark: str,
    block_size: int,
    problem_size: Optional[int] = None,
    scale_to_table1: bool = True,
) -> TaskProgram:
    """Build the task program for one benchmark at one block size.

    Parameters
    ----------
    benchmark:
        One of :func:`benchmark_names`.
    block_size:
        Block size (or H264dec granularity) to generate.
    problem_size:
        Override of the problem size (matrix dimension, or frame count for
        H264dec).  The paper's value is used when omitted; smaller values
        give proportionally smaller programs with the same dependence
        structure, which the experiment drivers use to keep run times short.
    scale_to_table1:
        When ``True`` (default) task durations are scaled so the mean task
        size matches (or extrapolates) the Table I ``AveTSize`` column.
    """
    spec = _spec(benchmark)
    if benchmark == "h264dec":
        frames = problem_size if problem_size is not None else DEFAULT_FRAMES
        program = spec.builder(block_size, frames)  # type: ignore[call-arg]
    else:
        size = problem_size if problem_size is not None else DEFAULT_PROBLEM_SIZE
        program = spec.builder(block_size, size)  # type: ignore[call-arg]
    if scale_to_table1:
        scale_durations_to_mean(program, reference_task_size(benchmark, block_size))
    return program


def reference_task_size(benchmark: str, block_size: int) -> float:
    """Average task size (cycles) for a benchmark at one block size.

    Uses the Table I value when the block size was measured by the paper and
    extrapolates with the natural work law of the kernel otherwise (cubic in
    the block size for the dense/sparse factorisations, quadratic for the
    stencil and the decoder regions).
    """
    spec = _spec(benchmark)
    if block_size in spec.table1:
        return spec.table1[block_size].average_task_size
    # Anchor the extrapolation on the closest measured block size so small
    # extrapolation steps stay consistent with the measured trend.
    reference_bs = min(spec.table1, key=lambda bs: abs(bs - block_size))
    reference = spec.table1[reference_bs]
    exponent = 2.0 if benchmark in ("heat", "h264dec") else 3.0
    ratio = (block_size / reference_bs) ** exponent
    return max(1.0, reference.average_task_size * ratio)


def _spec(benchmark: str) -> BenchmarkSpec:
    if benchmark not in PAPER_BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; choose from {benchmark_names()}"
        )
    return PAPER_BENCHMARKS[benchmark]
