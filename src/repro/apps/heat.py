"""Gauss-Seidel heat diffusion (blocked, one sweep).

The OmpSs Heat benchmark (BSC Application Repository) performs an iterative
Gauss-Seidel relaxation over a 2-D grid decomposed in square blocks.  One
sweep creates one task per block; because Gauss-Seidel updates in place, the
task for block ``(i, j)`` reads the already-updated left and upper
neighbours of the *current* sweep and the not-yet-updated right and lower
neighbours of the *previous* sweep, and updates its own block:

* ``inout`` on block ``(i, j)``;
* ``in`` on blocks ``(i-1, j)``, ``(i, j-1)``, ``(i+1, j)``, ``(i, j+1)``
  (those that exist).

Interior tasks therefore carry 5 dependences (the Table I ``#Dep`` value);
boundary tasks carry fewer.  The resulting dependence graph is the classic
wavefront: parallelism grows along anti-diagonals, which is why Heat is the
benchmark most sensitive to how fast the dependence manager can uncover
work (Figure 8 and Figure 11a).
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.common import BlockAddressMap, validate_blocking
from repro.runtime.task import Dependence, Direction, TaskProgram


def heat_program(
    problem_size: int = 2048,
    block_size: int = 256,
    sweeps: int = 1,
    base_address: Optional[int] = None,
) -> TaskProgram:
    """Build one (or more) blocked Gauss-Seidel sweeps.

    Parameters
    ----------
    problem_size:
        Grid side length in elements (the paper uses 2048).
    block_size:
        Block side length in elements (256 down to 32 in the paper).
    sweeps:
        Number of Gauss-Seidel sweeps; the paper's traces contain one.
    base_address:
        Override of the grid base address (defaults to the shared map base).
    """
    nb = validate_blocking(problem_size, block_size)
    grid = BlockAddressMap(nb, block_size, base_address or BlockAddressMap(nb, block_size).base)
    program = TaskProgram(name=f"heat-{problem_size}-{block_size}")

    for _ in range(sweeps):
        for i in range(nb):
            for j in range(nb):
                deps: List[Dependence] = [
                    Dependence(grid.address(i, j), Direction.INOUT)
                ]
                for ni, nj in ((i - 1, j), (i, j - 1), (i + 1, j), (i, j + 1)):
                    if 0 <= ni < nb and 0 <= nj < nb:
                        deps.append(Dependence(grid.address(ni, nj), Direction.IN))
                # The relaxation work per block is proportional to the block
                # area; all blocks are the same size, so all tasks weigh the
                # same in relative units.
                program.create_task(deps, duration=4, label="gauss_seidel_block")
    return program


def heat_task_count(problem_size: int, block_size: int, sweeps: int = 1) -> int:
    """Number of tasks a Heat sweep creates (the Table I ``#Tasks`` column)."""
    nb = validate_blocking(problem_size, block_size)
    return nb * nb * sweeps
