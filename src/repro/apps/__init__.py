"""Task-graph generators for the real applications of the paper.

The five applications of Section IV-C are reproduced as generators that
build the exact inter-task dependence structure the OmpSs versions create
(the structure is what the Picos hardware and the Nanos++ runtime manage):

* :mod:`repro.apps.heat` -- blocked Gauss-Seidel heat diffusion sweep;
* :mod:`repro.apps.lu` -- blocked LU factorisation (plus the *Modified Lu*
  creation order of Figure 9);
* :mod:`repro.apps.sparselu` -- blocked LU over a sparse block matrix;
* :mod:`repro.apps.cholesky` -- blocked Cholesky factorisation;
* :mod:`repro.apps.h264dec` -- H.264 macroblock wavefront decoding.

:mod:`repro.apps.registry` maps benchmark names and block sizes to
generators and carries the Table I calibration data (task counts,
dependence ranges, average task sizes and sequential execution times).
"""

from repro.apps.registry import (
    PAPER_BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
    table1_reference,
)
from repro.apps.heat import heat_program
from repro.apps.lu import lu_program, modified_lu_program
from repro.apps.sparselu import sparselu_program
from repro.apps.cholesky import cholesky_program
from repro.apps.h264dec import h264dec_program

__all__ = [
    "PAPER_BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_names",
    "build_benchmark",
    "table1_reference",
    "heat_program",
    "lu_program",
    "modified_lu_program",
    "sparselu_program",
    "cholesky_program",
    "h264dec_program",
]
