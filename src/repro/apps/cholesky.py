"""Blocked Cholesky factorisation.

The OmpSs Cholesky benchmark (Figure 2 of the paper) factorises an ``n x
n`` symmetric positive-definite matrix into ``A = L * L'`` using the
standard right-looking blocked algorithm with four kernels per step ``k``:

* ``potrf(k)``: ``inout A(k, k)`` -- 1 dependence;
* ``trsm(k, i)`` for ``i > k``: ``in A(k, k)``, ``inout A(i, k)`` -- 2;
* ``syrk(k, i)`` for ``i > k``: ``in A(i, k)``, ``inout A(i, i)`` -- 2;
* ``gemm(k, i, j)`` for ``k < j < i``: ``in A(i, k)``, ``in A(j, k)``,
  ``inout A(i, j)`` -- 3.

For a 2048-element matrix the task counts match Table I exactly: 120, 816,
5984 and 45760 tasks for block sizes 256, 128, 64 and 32, with 1-3
dependences per task.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.common import BlockAddressMap, validate_blocking
from repro.runtime.task import Dependence, Direction, TaskProgram

#: Relative work units of the block kernels (proportional to their flops:
#: potrf ~ b^3/3, trsm ~ b^3, syrk ~ b^3, gemm ~ 2 b^3).
_POTRF_WORK = 1
_TRSM_WORK = 3
_SYRK_WORK = 3
_GEMM_WORK = 6


def cholesky_program(
    problem_size: int = 2048,
    block_size: int = 256,
    base_address: Optional[int] = None,
) -> TaskProgram:
    """Build the blocked Cholesky task program."""
    nb = validate_blocking(problem_size, block_size)
    matrix = BlockAddressMap(nb, block_size, base_address or BlockAddressMap(nb, block_size).base)
    program = TaskProgram(name=f"cholesky-{problem_size}-{block_size}")

    for k in range(nb):
        program.create_task(
            [Dependence(matrix.address(k, k), Direction.INOUT)],
            duration=_POTRF_WORK,
            label="potrf",
        )
        for i in range(k + 1, nb):
            program.create_task(
                [
                    Dependence(matrix.address(k, k), Direction.IN),
                    Dependence(matrix.address(i, k), Direction.INOUT),
                ],
                duration=_TRSM_WORK,
                label="trsm",
            )
        for i in range(k + 1, nb):
            program.create_task(
                [
                    Dependence(matrix.address(i, k), Direction.IN),
                    Dependence(matrix.address(i, i), Direction.INOUT),
                ],
                duration=_SYRK_WORK,
                label="syrk",
            )
            for j in range(k + 1, i):
                program.create_task(
                    [
                        Dependence(matrix.address(i, k), Direction.IN),
                        Dependence(matrix.address(j, k), Direction.IN),
                        Dependence(matrix.address(i, j), Direction.INOUT),
                    ],
                    duration=_GEMM_WORK,
                    label="gemm",
                )
    return program


def cholesky_task_count(problem_size: int, block_size: int) -> int:
    """Number of tasks the blocked Cholesky creates (Table I ``#Tasks``)."""
    nb = validate_blocking(problem_size, block_size)
    potrf = nb
    trsm = nb * (nb - 1) // 2
    syrk = nb * (nb - 1) // 2
    gemm = sum((nb - 1 - k) * (nb - 2 - k) // 2 for k in range(nb))
    return potrf + trsm + syrk + gemm
