"""Performance-tracking subsystem: benchmark harness and regression diffs.

The paper's claims are throughput claims, so this package gives the
reproduction a measured performance trajectory: :class:`BenchSpec` declares
a matrix of (workload, backend, worker-count) simulation timings,
:func:`run_bench` executes it and produces :class:`BenchResult` rows
(wall-clock seconds, engine events per second, peak RSS), and
:func:`write_bench_file` snapshots a run as a ``BENCH_<date>.json`` at the
repository root.  :func:`compare_documents` diffs two such snapshots so a
perf regression shows up as a reviewable table (``picos-experiment bench
--compare BENCH_old.json``).
"""

from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_REGRESSION_THRESHOLD,
    GATE_SPEC,
    HEADLINE_SPEC,
    QUICK_SPEC,
    BenchComparison,
    BenchResult,
    BenchSpec,
    bench_document,
    bench_file_name,
    compare_documents,
    default_specs,
    gate_specs,
    load_bench_document,
    profile_cell,
    profile_specs,
    render_comparison,
    render_results,
    run_bench,
    run_spec,
    write_bench_file,
    write_profile_file,
)
from repro.bench.service import (
    DEFAULT_CONCURRENCY_LEVELS,
    ServiceBenchSpec,
    run_service_bench,
    service_bench_file_name,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_REGRESSION_THRESHOLD",
    "GATE_SPEC",
    "HEADLINE_SPEC",
    "QUICK_SPEC",
    "BenchComparison",
    "BenchResult",
    "BenchSpec",
    "bench_document",
    "bench_file_name",
    "compare_documents",
    "default_specs",
    "gate_specs",
    "load_bench_document",
    "profile_cell",
    "profile_specs",
    "render_comparison",
    "render_results",
    "run_bench",
    "run_spec",
    "write_bench_file",
    "DEFAULT_CONCURRENCY_LEVELS",
    "ServiceBenchSpec",
    "run_service_bench",
    "service_bench_file_name",
    "write_profile_file",
]
