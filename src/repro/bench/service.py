"""Service-facing benchmark cells: ``picos-experiment bench --service``.

Where :mod:`repro.bench.harness` times the simulators, this module times
the *server around them*: an in-process :class:`~repro.service.server.
SimulationServer` is started on a loopback TCP port and a wave of
concurrent NDJSON clients drives identical requests through the full
open/run/stream/result protocol.  Each concurrency level becomes one
:class:`~repro.bench.harness.BenchResult` row whose ``extras`` carry the
service-specific numbers:

``requests``
    Requests completed in the timed wave (= the concurrency level).
``requests_per_second``
    Wave size / wall seconds -- the end-to-end serving throughput.
``median_slice_ms`` / ``p99_slice_ms``
    Cooperative-slice latency quantiles from the server's own histogram:
    how long one session occupies the event loop per slice, the number
    that decides streaming responsiveness under load.

These cells are written to ``BENCH_service_<date>.json`` -- deliberately
*outside* the ``BENCH_2*.json`` glob the CI regression gate uses for its
baseline, so service timings inform but never gate.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.bench.harness import BenchResult, _peak_rss_kb

#: Concurrency levels of the default service matrix.
DEFAULT_CONCURRENCY_LEVELS: Tuple[int, ...] = (1, 16, 64)


@dataclass(frozen=True)
class ServiceBenchSpec:
    """One service timing matrix: a request crossed with concurrency levels."""

    workload: str = "cholesky"
    block_size: Optional[int] = 128
    problem_size: Optional[int] = 1024
    backend: str = "hil-full"
    num_workers: int = 2
    #: Simultaneous client sessions per timed wave.
    concurrency_levels: Tuple[int, ...] = DEFAULT_CONCURRENCY_LEVELS
    #: Cycle budget per cooperative slice (small enough that every run
    #: takes several slices, so the latency histogram has data).
    slice_cycles: int = 250_000

    def request_document(self) -> dict:
        document = {
            "workload": self.workload,
            "backend": self.backend,
            "workers": self.num_workers,
            "stream": {"slice_cycles": self.slice_cycles},
        }
        if self.block_size is not None:
            document["block_size"] = self.block_size
        if self.problem_size is not None:
            document["problem_size"] = self.problem_size
        return document


async def _drive_one(host: str, port: int, document: dict) -> Tuple[int, int, int]:
    """One client: open/run/consume; returns (events, makespan, tasks)."""
    from repro.service.protocol import decode_frame, encode_frame

    reader, writer = await asyncio.open_connection(host, port)
    try:
        await reader.readline()  # hello
        writer.write(encode_frame({"type": "open", "request": document}))
        await writer.drain()
        accepted = decode_frame(await reader.readline())
        if accepted["type"] != "accepted":
            raise RuntimeError(f"bench request rejected: {accepted}")
        writer.write(encode_frame({"type": "run", "id": accepted["id"]}))
        await writer.drain()
        events = 0
        while True:
            frame = decode_frame(await reader.readline())
            if frame["type"] == "events":
                events += len(frame["events"])
            elif frame["type"] == "result":
                result = frame["result"]
                return events, int(result["makespan"]), int(result["num_tasks"])
            else:
                raise RuntimeError(f"unexpected frame during bench: {frame}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def _run_wave(spec: ServiceBenchSpec, concurrency: int) -> BenchResult:
    """Start a fresh server, run one wave of ``concurrency`` clients."""
    from repro.service import ServerConfig, SimulationServer

    server = SimulationServer(
        ServerConfig(port=0, http_port=None, cache_dir=None)
    )
    await server.start()
    document = spec.request_document()
    try:
        start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                _drive_one("127.0.0.1", server.tcp_port, document)
                for _ in range(concurrency)
            )
        )
        wall = time.perf_counter() - start
        histogram = server.metrics.slice_latency
        median_ms = histogram.quantile(0.5)
        p99_ms = histogram.quantile(0.99)
    finally:
        await server.shutdown(drain=False)
    events = sum(entry[0] for entry in outcomes)
    makespan = outcomes[0][1]
    tasks_per_request = outcomes[0][2]
    tasks = sum(entry[2] for entry in outcomes)
    return BenchResult(
        workload="service-tcp",
        block_size=spec.block_size,
        problem_size=spec.problem_size,
        backend=spec.backend,
        num_workers=concurrency,
        wall_seconds=wall,
        events_processed=events,
        events_per_second=(events / wall) if wall > 0 else 0.0,
        tasks_per_second=(tasks / wall) if wall > 0 else 0.0,
        events_estimated=False,
        makespan=makespan,
        num_tasks=tasks_per_request,
        peak_rss_kb=_peak_rss_kb(),
        extras={
            "requests": float(concurrency),
            "requests_per_second": (concurrency / wall) if wall > 0 else 0.0,
            "median_slice_ms": float(median_ms) if median_ms is not None else 0.0,
            "p99_slice_ms": float(p99_ms) if p99_ms is not None else 0.0,
        },
    )


def run_service_bench(
    spec: Optional[ServiceBenchSpec] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Time the serving path at each concurrency level of ``spec``."""
    spec = spec or ServiceBenchSpec()
    results: List[BenchResult] = []
    for concurrency in spec.concurrency_levels:
        row = asyncio.run(_run_wave(spec, concurrency))
        if progress is not None:
            extras = row.extras
            progress(
                f"{row.label():<40} {row.wall_seconds * 1000:9.1f} ms  "
                f"{extras['requests_per_second']:8.1f} req/s  "
                f"median slice {extras['median_slice_ms']:g} ms"
            )
        results.append(row)
    return results


def service_bench_file_name(when=None) -> str:
    """``BENCH_service_<date>.json``: outside the gate's baseline glob."""
    from datetime import date

    stamp = when if when is not None else date.today()
    return f"BENCH_service_{stamp.isoformat()}.json"
