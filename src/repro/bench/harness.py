"""The benchmark harness behind ``picos-experiment bench``.

Each :class:`BenchSpec` is a small timing matrix -- one workload crossed
with simulator backends and worker counts -- and each cell runs the real
batch path (:func:`repro.sim.driver.simulate_request`) under a wall-clock
timer.  A :class:`BenchResult` row records what the run did (tasks, engine
events, makespan) next to what it cost (seconds, events per second, peak
RSS), so a later run of the same matrix is directly comparable.

Measurement notes
-----------------

* ``wall_seconds`` is the best of ``repeats`` timings of the simulation
  alone: the task program is built (and its generator memoized) before the
  clock starts, so program generation does not pollute the number.
* ``events_processed`` is the discrete-event engine's delivered-event count
  (the ``events_processed`` counter of the HIL and Nanos++ simulators).
  The roofline scheduler has no event queue; its rows fall back to the
  three lifecycle events per task the session API would derive, flagged by
  ``events_estimated``.
* ``peak_rss_kb`` is ``ru_maxrss`` of the process after the run -- a
  monotone process-wide high-water mark, not a per-run delta; it answers
  "how much memory does benching this matrix need", not "how much does one
  simulation allocate".
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
from dataclasses import dataclass
from datetime import date, datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sim.backend import BUILTIN_BACKENDS
from repro.sim.driver import simulate_request
from repro.sim.request import SimulationRequest

#: Bumped whenever the BENCH_*.json document layout changes.
BENCH_SCHEMA_VERSION = 1

#: Worker counts of the default matrix (the paper's 12-core sweet spot
#: bracketed by a small and a large machine).
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (2, 8, 32)

#: Wall-time ratio treated as a regression by :func:`compare_documents`;
#: generous because CI timings are noisy.
DEFAULT_REGRESSION_THRESHOLD = 0.25


# ----------------------------------------------------------------------
# spec and result rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchSpec:
    """One timing matrix: a workload crossed with backends and workers."""

    #: Benchmark name (``repro.apps.registry``) or synthetic case name.
    workload: str
    #: Block size (or H264dec granularity); ``None`` for synthetic cases.
    block_size: Optional[int] = None
    #: Problem-size override; ``None`` selects the paper's size.
    problem_size: Optional[int] = None
    #: Simulator backends to time (all five built-ins by default).
    backends: Tuple[str, ...] = BUILTIN_BACKENDS
    #: Worker counts to time each backend at.
    worker_counts: Tuple[int, ...] = DEFAULT_WORKER_COUNTS
    #: Timing repeats per cell; the best (minimum) wall time is kept.
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("a bench spec needs a workload name")
        if not self.backends:
            raise ValueError("a bench spec needs at least one backend")
        if not self.worker_counts or any(w < 1 for w in self.worker_counts):
            raise ValueError("worker counts must be positive")
        if self.repeats < 1:
            raise ValueError("repeats must be at least 1")

    def requests(self) -> List[SimulationRequest]:
        """The simulation requests of the matrix, in deterministic order."""
        return [
            SimulationRequest.for_workload(
                self.workload,
                block_size=self.block_size,
                problem_size=self.problem_size,
                backend=backend,
                num_workers=workers,
            )
            for backend in self.backends
            for workers in self.worker_counts
        ]


@dataclass(frozen=True)
class BenchResult:
    """One timed cell of a bench matrix (JSON round-trippable)."""

    workload: str
    block_size: Optional[int]
    problem_size: Optional[int]
    backend: str
    num_workers: int
    #: Best-of-repeats wall-clock seconds of the simulation call.
    wall_seconds: float
    #: Engine events delivered during the timed run.
    events_processed: int
    #: ``events_processed / wall_seconds``.
    events_per_second: float
    #: Simulated tasks retired per wall-clock second.
    tasks_per_second: float
    #: Whether ``events_processed`` is the lifecycle-event fallback (the
    #: backend exposes no engine counter).
    events_estimated: bool
    makespan: int
    num_tasks: int
    #: Process-wide peak RSS (KiB) observed after the run.
    peak_rss_kb: int
    repeats: int = 1
    #: Family-specific metrics (e.g. the service cells' requests/s and
    #: slice-latency quantiles).  Absent from pre-existing snapshots;
    #: ``from_dict`` tolerates both directions.
    extras: Dict[str, float] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, row: Mapping[str, object]) -> "BenchResult":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{str(k): v for k, v in row.items() if k in fields})  # type: ignore[arg-type]

    def key(self) -> Tuple[str, Optional[int], Optional[int], str, int]:
        """Identity of the cell (what must match across compared runs)."""
        return (
            self.workload,
            self.block_size,
            self.problem_size,
            self.backend,
            self.num_workers,
        )

    def label(self) -> str:
        """Human-readable cell name used by reports."""
        block = f"/{self.block_size}" if self.block_size is not None else ""
        size = f"@{self.problem_size}" if self.problem_size is not None else ""
        return f"{self.workload}{block}{size} {self.backend} w{self.num_workers}"


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (0 where the resource module is missing)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to KiB.
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(usage // 1024)
    return int(usage)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_spec(
    spec: BenchSpec, progress: Optional[Callable[[str], None]] = None
) -> List[BenchResult]:
    """Time every cell of ``spec`` and return its result rows."""
    results: List[BenchResult] = []
    for request in spec.requests():
        normalized = request.normalize()
        program = normalized.build_program()  # warm the generator memo
        best = float("inf")
        result = None
        for _ in range(spec.repeats):
            start = time.perf_counter()
            result = simulate_request(normalized)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
        assert result is not None
        events = result.counters.get("events_processed")
        estimated = events is None
        if estimated:
            # Lifecycle fallback (submitted/ready/retired per task) for
            # backends without a discrete-event queue (the roofline).
            events = 3 * result.num_tasks
        row = BenchResult(
            workload=spec.workload,
            block_size=spec.block_size,
            problem_size=spec.problem_size,
            backend=normalized.backend,
            num_workers=normalized.num_workers,
            wall_seconds=best,
            events_processed=int(events),
            events_per_second=(int(events) / best) if best > 0 else 0.0,
            tasks_per_second=(result.num_tasks / best) if best > 0 else 0.0,
            events_estimated=estimated,
            makespan=result.makespan,
            num_tasks=result.num_tasks,
            peak_rss_kb=_peak_rss_kb(),
            repeats=spec.repeats,
        )
        if progress is not None:
            progress(
                f"{row.label():<40} {row.wall_seconds * 1000:9.1f} ms  "
                f"{row.events_per_second:12,.0f} ev/s"
            )
        results.append(row)
        _ = program  # keep the built program alive across repeats
    return results


def run_bench(
    specs: Sequence[BenchSpec], progress: Optional[Callable[[str], None]] = None
) -> List[BenchResult]:
    """Run several specs back to back, preserving their order."""
    results: List[BenchResult] = []
    for spec in specs:
        results.extend(run_spec(spec, progress))
    return results


# ----------------------------------------------------------------------
# profiling
# ----------------------------------------------------------------------
#: Functions kept per cell by the ``--profile`` report.
PROFILE_TOP_FUNCTIONS = 25


def profile_cell(request: SimulationRequest) -> str:
    """One cell's cProfile report: top cumulative functions, as text.

    The profiled run is *separate* from the timed ones (profiling
    multiplies wall time several-fold), so a ``--profile`` bench still
    writes honest timings; the report answers "where did that cell's time
    go", not "how long did it take".
    """
    import cProfile
    import io
    import pstats

    normalized = request.normalize()
    normalized.build_program()  # keep generation out of the profile
    profiler = cProfile.Profile()
    profiler.enable()
    simulate_request(normalized)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP_FUNCTIONS)
    return buffer.getvalue()


def profile_specs(
    specs: Sequence[BenchSpec],
    progress: Optional[Callable[[str], None]] = None,
) -> List[Tuple[str, str]]:
    """Profile every cell of ``specs``; returns ``(label, report)`` pairs."""
    reports: List[Tuple[str, str]] = []
    for spec in specs:
        for backend in spec.backends:
            for workers in spec.worker_counts:
                request = SimulationRequest.for_workload(
                    spec.workload,
                    block_size=spec.block_size,
                    problem_size=spec.problem_size,
                    backend=backend,
                    num_workers=workers,
                )
                block = f"/{spec.block_size}" if spec.block_size is not None else ""
                size = (
                    f"@{spec.problem_size}" if spec.problem_size is not None else ""
                )
                label = f"{spec.workload}{block}{size} {backend} w{workers}"
                if progress is not None:
                    progress(f"profiling {label}")
                reports.append((label, profile_cell(request)))
    return reports


def write_profile_file(
    reports: Sequence[Tuple[str, str]], bench_path: Union[str, Path]
) -> Path:
    """Write the per-cell profile reports next to a bench snapshot.

    ``BENCH_<date>.json`` gets a sibling ``BENCH_<date>.profile.txt`` so
    the wall-time numbers and the hot-function breakdown that explains
    them travel together.
    """
    snapshot = Path(bench_path)
    path = snapshot.with_name(snapshot.stem + ".profile.txt")
    with path.open("w", encoding="utf-8") as stream:
        for label, report in reports:
            stream.write(f"==== {label} ====\n")
            stream.write(report)
            if not report.endswith("\n"):
                stream.write("\n")
    return path


#: The CI smoke matrix: a small Cholesky on every backend at two worker
#: counts.  Also part of the full matrix, so a committed full snapshot is
#: directly comparable against the quick run the CI bench job executes.
QUICK_SPEC = BenchSpec(
    workload="cholesky",
    block_size=128,
    problem_size=1024,
    worker_counts=(2, 8),
)

#: The headline optimization target tracked in ROADMAP: full-system
#: Cholesky at block size 32 on 32 workers (45 760 tasks), the cell where
#: engine overhead dominates wall time.
HEADLINE_SPEC = BenchSpec(
    workload="cholesky",
    block_size=32,
    backends=("hil-full",),
    worker_counts=(32,),
)


#: The regression-gate matrix: few cells, each hundreds of milliseconds of
#: simulation, so a 15% wall-time change is signal rather than timer noise
#: (the quick cells run in single-digit milliseconds and would flake any
#: relative threshold).  Every gate cell is part of the full default
#: matrix, so any committed snapshot can serve as the gate baseline.
GATE_SPEC = BenchSpec(
    workload="cholesky",
    block_size=64,
    backends=("hil-full", "hil-hw"),
    worker_counts=(8, 32),
)


def gate_specs() -> List[BenchSpec]:
    """The matrix the CI regression gate times (see :data:`GATE_SPEC`)."""
    return [GATE_SPEC]


def default_specs(quick: bool = False) -> List[BenchSpec]:
    """The standard bench matrix.

    The default covers every registered application at its coarsest block
    size across all five backends, a finer-grained Cholesky "hot loop"
    spec, the CI smoke cells (:data:`QUICK_SPEC`) and the headline
    full-system cell (:data:`HEADLINE_SPEC`) -- the optimization targets of
    the engine work: enough tasks that simulator overhead, not program
    generation, dominates.  ``quick`` shrinks the matrix to the smoke cells
    alone -- the CI configuration, comparable against any committed full
    snapshot.
    """
    if quick:
        return [QUICK_SPEC]
    from repro.apps.registry import benchmark_names, registered_block_sizes

    specs = [
        BenchSpec(workload=name, block_size=registered_block_sizes(name)[0])
        for name in benchmark_names()
        if name != "mlu"  # mlu shares lu's trace shape; skip the duplicate
    ]
    specs.append(BenchSpec(workload="cholesky", block_size=64))
    specs.append(QUICK_SPEC)
    specs.append(HEADLINE_SPEC)
    return specs


# ----------------------------------------------------------------------
# BENCH_*.json documents
# ----------------------------------------------------------------------
def bench_file_name(when: Optional[date] = None) -> str:
    """``BENCH_<ISO date>.json`` (one snapshot per day by convention)."""
    stamp = when if when is not None else date.today()
    return f"BENCH_{stamp.isoformat()}.json"


def bench_document(results: Sequence[BenchResult]) -> Dict[str, object]:
    """The JSON document of one bench run (see README "Performance")."""
    from repro import __version__

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "package_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": [row.as_dict() for row in results],
    }


def write_bench_file(
    results: Sequence[BenchResult],
    directory: Union[str, Path] = ".",
    file_name: Optional[str] = None,
) -> Path:
    """Write a ``BENCH_<date>.json`` snapshot and return its path."""
    path = Path(directory) / (file_name or bench_file_name())
    with path.open("w", encoding="utf-8") as stream:
        json.dump(bench_document(results), stream, indent=1, sort_keys=True)
        stream.write("\n")
    return path


def load_bench_document(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-check a ``BENCH_*.json`` document."""
    with Path(path).open("r", encoding="utf-8") as stream:
        document = json.load(stream)
    if not isinstance(document, dict) or "results" not in document:
        raise ValueError(f"{path} is not a bench document")
    if document.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path} uses bench schema {document.get('schema')!r}; this "
            f"version reads schema {BENCH_SCHEMA_VERSION}"
        )
    return document


def _rows_by_key(
    document: Mapping[str, object]
) -> Dict[Tuple[str, Optional[int], Optional[int], str, int], BenchResult]:
    rows = [BenchResult.from_dict(r) for r in document["results"]]  # type: ignore[union-attr]
    return {row.key(): row for row in rows}


# ----------------------------------------------------------------------
# regression diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchComparison:
    """Diff of one cell across two bench documents."""

    label: str
    old_wall: float
    new_wall: float
    #: ``old / new``: > 1 means the new run is faster.
    speedup: float
    #: Whether the slowdown exceeds the comparison threshold.
    regressed: bool


def compare_documents(
    old: Mapping[str, object],
    new: Mapping[str, object],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Tuple[List[BenchComparison], List[str], List[str]]:
    """Cell-by-cell wall-time diff of two bench documents.

    Returns ``(comparisons, only_old, only_new)``: matched cells with their
    speedups (old wall / new wall) plus the labels present in only one of
    the documents.  A cell regresses when its wall time grew by more than
    ``threshold`` (relative).
    """
    old_rows = _rows_by_key(old)
    new_rows = _rows_by_key(new)
    comparisons: List[BenchComparison] = []
    for key, new_row in new_rows.items():
        old_row = old_rows.get(key)
        if old_row is None:
            continue
        speedup = (old_row.wall_seconds / new_row.wall_seconds) if new_row.wall_seconds else 0.0
        comparisons.append(
            BenchComparison(
                label=new_row.label(),
                old_wall=old_row.wall_seconds,
                new_wall=new_row.wall_seconds,
                speedup=speedup,
                regressed=new_row.wall_seconds > old_row.wall_seconds * (1.0 + threshold),
            )
        )
    only_old = [row.label() for key, row in old_rows.items() if key not in new_rows]
    only_new = [row.label() for key, row in new_rows.items() if key not in old_rows]
    return comparisons, only_old, only_new


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_results(results: Sequence[BenchResult]) -> str:
    """Result rows as a fixed-width report table."""
    lines = [
        f"{'cell':<42} {'wall (ms)':>10} {'events/s':>14} "
        f"{'tasks/s':>12} {'peak RSS (MB)':>14}"
    ]
    for row in results:
        estimate = "~" if row.events_estimated else " "
        lines.append(
            f"{row.label():<42} {row.wall_seconds * 1000:>10.1f} "
            f"{estimate}{row.events_per_second:>13,.0f} "
            f"{row.tasks_per_second:>12,.0f} {row.peak_rss_kb / 1024:>14.1f}"
        )
    lines.append("(~ events/s estimated from lifecycle events: no engine counter)")
    return "\n".join(lines)


def render_comparison(
    comparisons: Sequence[BenchComparison],
    only_old: Sequence[str],
    only_new: Sequence[str],
) -> str:
    """A comparison as a fixed-width report table plus a verdict line."""
    lines = [
        f"{'cell':<42} {'old (ms)':>10} {'new (ms)':>10} {'speedup':>9}"
    ]
    for comp in comparisons:
        flag = "  << REGRESSION" if comp.regressed else ""
        lines.append(
            f"{comp.label:<42} {comp.old_wall * 1000:>10.1f} "
            f"{comp.new_wall * 1000:>10.1f} {comp.speedup:>8.2f}x{flag}"
        )
    for label in only_old:
        lines.append(f"{label:<42} (only in the old snapshot)")
    for label in only_new:
        lines.append(f"{label:<42} (only in the new snapshot)")
    regressed = sum(1 for c in comparisons if c.regressed)
    # Matrix drift (cells present in only one snapshot) is reported, not an
    # error: snapshots recorded before a spec change stay usable baselines.
    drift = ""
    if only_old or only_new:
        drift = f", {len(only_new)} cell(s) added, {len(only_old)} removed"
    if comparisons:
        geomean = 1.0
        for comp in comparisons:
            geomean *= max(comp.speedup, 1e-9)
        geomean **= 1.0 / len(comparisons)
        lines.append(
            f"{len(comparisons)} cells compared, geometric-mean speedup "
            f"{geomean:.2f}x, {regressed} regression(s){drift}"
        )
    else:
        lines.append(f"no comparable cells between the two snapshots{drift}")
    return "\n".join(lines)
