"""Speedup and scalability metrics shared by the experiment drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of a sequence of positive values."""
    filtered = [value for value in values if value > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(value) for value in filtered) / len(filtered))


def relative_improvement(candidate: float, baseline: float) -> float:
    """``candidate / baseline`` guarded against a zero baseline."""
    if baseline <= 0:
        return float("inf") if candidate > 0 else 0.0
    return candidate / baseline


@dataclass
class ScalabilityCurve:
    """Speedup as a function of the number of workers for one configuration."""

    label: str
    #: Mapping of worker count to speedup.
    points: Dict[int, float] = field(default_factory=dict)

    def add(self, workers: int, speedup: float) -> None:
        """Record one point of the curve."""
        self.points[workers] = speedup

    def worker_counts(self) -> List[int]:
        """Worker counts of the curve, ascending."""
        return sorted(self.points)

    def speedups(self) -> List[float]:
        """Speedups of the curve, in worker-count order."""
        return [self.points[w] for w in self.worker_counts()]

    def peak(self) -> Tuple[int, float]:
        """(workers, speedup) of the best point of the curve."""
        if not self.points:
            return (0, 0.0)
        best = max(self.points.items(), key=lambda item: item[1])
        return best

    def saturation_workers(self, tolerance: float = 0.05) -> int:
        """Smallest worker count within ``tolerance`` of the peak speedup.

        This is the quantity the paper uses informally when it says the
        software runtime "scales up to 8 workers maximum" while the
        prototype "continues to scale to 24 workers".
        """
        if not self.points:
            return 0
        _, peak = self.peak()
        for workers in self.worker_counts():
            if self.points[workers] >= peak * (1.0 - tolerance):
                return workers
        return self.worker_counts()[-1]

    def dominates(self, other: "ScalabilityCurve", from_workers: int = 1) -> bool:
        """Whether this curve is at least as fast as ``other`` everywhere.

        Only worker counts present in both curves and ``>= from_workers``
        are compared.
        """
        common = [
            workers
            for workers in self.points
            if workers in other.points and workers >= from_workers
        ]
        if not common:
            return False
        return all(self.points[w] >= other.points[w] for w in common)


def crossover_block_size(
    speedups_by_block: Dict[int, float], baseline_by_block: Dict[int, float]
) -> Optional[int]:
    """Largest block size at which the candidate starts beating the baseline.

    The paper's headline claim is that as granularity decreases the hardware
    keeps scaling while the software collapses; this helper finds the block
    size (iterating from coarse to fine) at which the candidate first wins,
    or ``None`` if it never does.
    """
    for block_size in sorted(set(speedups_by_block) & set(baseline_by_block), reverse=True):
        if speedups_by_block[block_size] > baseline_by_block[block_size]:
            return block_size
    return None


def speedup_ratio_summary(
    candidate: Dict[int, float], baseline: Dict[int, float]
) -> Dict[str, float]:
    """Geometric-mean, min and max ratio between two speedup maps."""
    ratios = [
        relative_improvement(candidate[key], baseline[key])
        for key in sorted(set(candidate) & set(baseline))
        if baseline[key] > 0
    ]
    if not ratios:
        return {"geomean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "geomean": geometric_mean(ratios),
        "min": min(ratios),
        "max": max(ratios),
    }
