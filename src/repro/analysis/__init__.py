"""Metrics and report rendering.

:mod:`repro.analysis.speedup` provides the speedup / scalability helpers the
experiment drivers share, and :mod:`repro.analysis.report` renders fixed-
width tables and ASCII series so every table and figure of the paper can be
regenerated on a terminal.
"""

from repro.analysis.speedup import (
    ScalabilityCurve,
    crossover_block_size,
    geometric_mean,
    relative_improvement,
)
from repro.analysis.report import Table, render_series, render_table

__all__ = [
    "ScalabilityCurve",
    "crossover_block_size",
    "geometric_mean",
    "relative_improvement",
    "Table",
    "render_series",
    "render_table",
]
