"""Plain-text rendering of tables and figure series.

The experiment drivers print their results as fixed-width tables (for the
paper's tables) and labelled numeric series (for the paper's figures); this
module provides those renderers so every driver produces uniform,
diff-friendly output that EXPERIMENTS.md can quote directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned table."""

    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    title: str = ""
    precision: int = 2

    def add_row(self, *cells: Cell) -> None:
        """Append one row; the cell count must match the header count."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the table as fixed-width text."""
        formatted_rows = [
            [_format_cell(cell, self.precision) for cell in row] for row in self.rows
        ]
        widths = [len(header) for header in self.headers]
        for row in formatted_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header_line = "  ".join(
            header.ljust(widths[index]) for index, header in enumerate(self.headers)
        )
        lines.append(header_line)
        lines.append("  ".join("-" * width for width in widths))
        for row in formatted_rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 2,
) -> str:
    """One-shot helper building and rendering a :class:`Table`."""
    table = Table(headers=list(headers), title=title, precision=precision)
    for row in rows:
        table.add_row(*row)
    return table.render()


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[Cell],
    series: Dict[str, Sequence[float]],
    precision: int = 2,
) -> str:
    """Render a figure-style family of curves as a table.

    ``series`` maps a curve label to its y-values, one per ``x_values``
    entry; this is how the figure drivers print the curves of Figures 1, 8,
    9, 10 and 11 in a terminal-friendly form.
    """
    headers = [x_label] + list(series)
    rows: List[List[Cell]] = []
    for index, x_value in enumerate(x_values):
        row: List[Cell] = [x_value]
        for label in series:
            values = series[label]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return render_table(headers, rows, title=title, precision=precision)


def render_bar_chart(
    title: str,
    values: Dict[str, float],
    width: int = 40,
    precision: int = 2,
) -> str:
    """Render a simple horizontal ASCII bar chart (used by examples)."""
    if not values:
        return title
    peak = max(values.values())
    lines = [title] if title else []
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        bar_length = 0 if peak <= 0 else int(round(width * value / peak))
        bar = "#" * bar_length
        lines.append(
            f"{label.ljust(label_width)}  {bar} {_format_cell(value, precision)}"
        )
    return "\n".join(lines)
