"""Experiment drivers: one module per table and figure of the paper.

Every driver exposes two functions:

* ``run_*`` -- performs the simulations and returns plain data structures
  (dictionaries / dataclasses) so tests and benchmarks can assert on them;
* ``render_*`` -- formats the data as the table or figure series the paper
  reports, using :mod:`repro.analysis.report`.

The :mod:`repro.experiments.cli` module (installed as the
``picos-experiment`` console script) runs any of them from the command
line.

Scale note: the drivers accept a ``scale`` argument.  ``scale=1.0`` uses the
paper's exact problem sizes (which can take minutes for the finest
granularities); smaller scales shrink the problem while keeping the
dependence structure and the granularity ratios, so the qualitative results
are unchanged.  The defaults used by the benchmark suite are recorded in
EXPERIMENTS.md together with the measured numbers.
"""

from repro.experiments import (
    fig01_granularity,
    fig08_dm_designs,
    fig09_lu_corner,
    fig10_nanos_overhead,
    fig11_scalability,
    runner,
    table1_benchmarks,
    table2_dm_conflicts,
    table3_resources,
    table4_synthetic,
)
from repro.experiments.runner import (
    ExperimentSpec,
    JobResult,
    RunnerOptions,
    SweepPoint,
    run_points,
    run_sweep,
)

__all__ = [
    "ExperimentSpec",
    "JobResult",
    "RunnerOptions",
    "SweepPoint",
    "run_points",
    "run_sweep",
    "runner",
    "fig01_granularity",
    "fig08_dm_designs",
    "fig09_lu_corner",
    "fig10_nanos_overhead",
    "fig11_scalability",
    "table1_benchmarks",
    "table2_dm_conflicts",
    "table3_resources",
    "table4_synthetic",
]
