"""Figure 8: speedup of the three Picos configurations (DM designs).

Four real benchmarks, each with a pair of block sizes, are run under the
HIL HW-only mode with the three DM designs (8-way, 16-way, Pearson+8-way)
and 2 to 12 workers.  The paper's observations that this experiment should
reproduce:

* for Heat and Cholesky, the 8-way and 16-way designs do not scale while
  the Pearson design does;
* for Lu and SparseLu all three designs benefit from smaller blocks, with
  16-way and Pearson close to the best;
* Lu is a corner case where the 16-way design beats Pearson (analysed
  further in Figure 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_series
from repro.apps.registry import build_benchmark
from repro.core.config import DMDesign, PicosConfig
from repro.sim.hil import HILMode, HILSimulator

#: The benchmark / block-size pairs of Figure 8.
FIG8_BENCHMARKS: Tuple[Tuple[str, int], ...] = (
    ("heat", 128),
    ("heat", 64),
    ("cholesky", 256),
    ("cholesky", 128),
    ("lu", 64),
    ("lu", 32),
    ("sparselu", 128),
    ("sparselu", 64),
)

#: Worker counts of the x-axis.
FIG8_WORKERS: Tuple[int, ...] = (2, 4, 8, 12)


def run_fig08(
    benchmarks: Sequence[Tuple[str, int]] = FIG8_BENCHMARKS,
    worker_counts: Sequence[int] = FIG8_WORKERS,
    problem_size: Optional[int] = None,
) -> Dict[Tuple[str, int], Dict[str, Dict[int, float]]]:
    """Compute the Figure 8 speedup bars.

    Returns ``{(benchmark, block_size): {design: {workers: speedup}}}``.
    """
    results: Dict[Tuple[str, int], Dict[str, Dict[int, float]]] = {}
    for benchmark, block_size in benchmarks:
        program = build_benchmark(benchmark, block_size, problem_size=problem_size)
        per_design: Dict[str, Dict[int, float]] = {}
        for design in DMDesign:
            config = PicosConfig.paper_prototype(design)
            curve: Dict[int, float] = {}
            for workers in worker_counts:
                simulation = HILSimulator(
                    program, config=config, mode=HILMode.HW_ONLY, num_workers=workers
                ).run()
                curve[workers] = simulation.speedup
            per_design[design.display_name] = curve
        results[(benchmark, block_size)] = per_design
    return results


def render_fig08(
    results: Dict[Tuple[str, int], Dict[str, Dict[int, float]]]
) -> str:
    """Render the Figure 8 families of bars, one table per benchmark pair."""
    sections: List[str] = []
    for (benchmark, block_size), per_design in results.items():
        worker_counts = sorted(next(iter(per_design.values())))
        series = {
            design: [curve[w] for w in worker_counts]
            for design, curve in per_design.items()
        }
        sections.append(
            render_series(
                title=f"Figure 8 -- {benchmark} ({block_size}x{block_size}): "
                "speedup per DM design (HW-only)",
                x_label="workers",
                x_values=worker_counts,
                series=series,
            )
        )
    return "\n\n".join(sections)


def best_design(
    results: Dict[Tuple[str, int], Dict[str, Dict[int, float]]],
    benchmark: str,
    block_size: int,
    workers: int,
) -> str:
    """Name of the DM design with the highest speedup at one point."""
    per_design = results[(benchmark, block_size)]
    return max(per_design, key=lambda design: per_design[design][workers])


def main() -> None:
    """Run and print Figure 8 (console entry point)."""
    print(render_fig08(run_fig08()))


if __name__ == "__main__":
    main()
