"""Figure 8: speedup of the three Picos configurations (DM designs).

Four real benchmarks, each with a pair of block sizes, are run under the
HIL HW-only mode with the three DM designs (8-way, 16-way, Pearson+8-way)
and 2 to 12 workers.  The paper's observations that this experiment should
reproduce:

* for Heat and Cholesky, the 8-way and 16-way designs do not scale while
  the Pearson design does;
* for Lu and SparseLu all three designs benefit from smaller blocks, with
  16-way and Pearson close to the best;
* Lu is a corner case where the 16-way design beats Pearson (analysed
  further in Figure 9).

The 8 benchmarks x 3 designs x 4 worker counts = 96 independent
simulations are declared as one spec and dispatched through the shared
runner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_series
from repro.core.config import DMDesign
from repro.experiments.runner import (
    ExperimentSpec,
    RunnerOptions,
    require_config_sensitive_backend,
    run_sweep,
)
from repro.sim.backend import BACKEND_HIL_HW

#: The benchmark / block-size pairs of Figure 8.
FIG8_BENCHMARKS: Tuple[Tuple[str, int], ...] = (
    ("heat", 128),
    ("heat", 64),
    ("cholesky", 256),
    ("cholesky", 128),
    ("lu", 64),
    ("lu", 32),
    ("sparselu", 128),
    ("sparselu", 64),
)

#: Worker counts of the x-axis.
FIG8_WORKERS: Tuple[int, ...] = (2, 4, 8, 12)


def fig08_spec(
    benchmarks: Sequence[Tuple[str, int]] = FIG8_BENCHMARKS,
    worker_counts: Sequence[int] = FIG8_WORKERS,
    problem_size: Optional[int] = None,
    backend: str = BACKEND_HIL_HW,
) -> ExperimentSpec:
    """Declare the Figure 8 sweep (benchmarks x DM designs x workers)."""
    require_config_sensitive_backend("fig08", backend)
    return ExperimentSpec(
        name="fig08",
        workloads=tuple(benchmarks),
        backends=(backend,),
        dm_designs=tuple(design.value for design in DMDesign),
        worker_counts=tuple(worker_counts),
        problem_size=problem_size,
    )


def run_fig08(
    benchmarks: Sequence[Tuple[str, int]] = FIG8_BENCHMARKS,
    worker_counts: Sequence[int] = FIG8_WORKERS,
    problem_size: Optional[int] = None,
    backend: str = BACKEND_HIL_HW,
    options: Optional[RunnerOptions] = None,
) -> Dict[Tuple[str, int], Dict[str, Dict[int, float]]]:
    """Compute the Figure 8 speedup bars.

    Returns ``{(benchmark, block_size): {design: {workers: speedup}}}``.
    """
    spec = fig08_spec(benchmarks, worker_counts, problem_size, backend)
    results: Dict[Tuple[str, int], Dict[str, Dict[int, float]]] = {}
    for point, job in run_sweep(spec, options).items():
        assert point.block_size is not None and point.dm_design is not None
        design = DMDesign(point.dm_design).display_name
        per_design = results.setdefault((point.workload, point.block_size), {})
        per_design.setdefault(design, {})[point.num_workers] = job.speedup
    return results


def render_fig08(
    results: Dict[Tuple[str, int], Dict[str, Dict[int, float]]]
) -> str:
    """Render the Figure 8 families of bars, one table per benchmark pair."""
    sections: List[str] = []
    for (benchmark, block_size), per_design in results.items():
        worker_counts = sorted(next(iter(per_design.values())))
        series = {
            design: [curve[w] for w in worker_counts]
            for design, curve in per_design.items()
        }
        sections.append(
            render_series(
                title=f"Figure 8 -- {benchmark} ({block_size}x{block_size}): "
                "speedup per DM design (HW-only)",
                x_label="workers",
                x_values=worker_counts,
                series=series,
            )
        )
    return "\n\n".join(sections)


def best_design(
    results: Dict[Tuple[str, int], Dict[str, Dict[int, float]]],
    benchmark: str,
    block_size: int,
    workers: int,
) -> str:
    """Name of the DM design with the highest speedup at one point."""
    per_design = results[(benchmark, block_size)]
    return max(per_design, key=lambda design: per_design[design][workers])


def main() -> None:
    """Run and print Figure 8 (console entry point)."""
    print(render_fig08(run_fig08()))


if __name__ == "__main__":
    main()
