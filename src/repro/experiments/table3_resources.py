"""Table III: hardware resource consumption of the prototype.

Renders the structural resource model of :mod:`repro.hardware.resources`
next to the synthesis results the paper reports for the XC7Z020 device, and
adds the what-if row the paper discusses (a hypothetical 32-way DM doubling
the memory cost).
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.core.config import DMDesign, PicosConfig
from repro.experiments.runner import (
    KIND_RESOURCES,
    ExperimentSpec,
    RunnerOptions,
    run_sweep,
)
from repro.hardware.resources import (
    DeviceBudget,
    XC7Z020,
    estimate_dependence_memory,
    estimate_design,
)


def table3_spec(device: DeviceBudget = XC7Z020) -> ExperimentSpec:
    """Declare the Table III estimate as a one-point resources sweep."""
    device_fields = tuple(sorted(dataclasses.asdict(device).items()))
    return ExperimentSpec(
        name="table3",
        kind=KIND_RESOURCES,
        workloads=(("resource-model", None),),
        extra=(("device", device_fields),),
    )


def run_table3(
    device: DeviceBudget = XC7Z020,
    options: Optional[RunnerOptions] = None,
) -> List[Dict[str, object]]:
    """Model every Table III row (plus absolute LUT/FF/BRAM counts)."""
    (job,) = run_sweep(table3_spec(device), options).values()
    return job.payload["rows"]  # type: ignore[return-value]


def render_table3(rows: List[Dict[str, object]], device: DeviceBudget = XC7Z020) -> str:
    """Render the model-vs-paper Table III comparison."""
    table_rows: List[List[object]] = []
    for row in rows:
        model = row["model"]
        paper = row["paper"]
        table_rows.append(
            [
                row["component"],
                f"{model['LUTs']:.1f}%",
                f"{paper.get('LUTs', float('nan')):.1f}%" if paper else "-",
                f"{model['FFs']:.2f}%",
                f"{paper.get('FFs', float('nan')):.2f}%" if paper else "-",
                f"{model['BRAM']:.1f}%",
                f"{paper.get('BRAM', float('nan')):.1f}%" if paper else "-",
            ]
        )
    return render_table(
        headers=["component", "LUTs", "LUTs(paper)", "FFs", "FFs(paper)", "BRAM", "BRAM(paper)"],
        rows=table_rows,
        title=f"Table III -- hardware resource consumption on the {device.name}",
    )


def what_if_32way(device: DeviceBudget = XC7Z020) -> Dict[str, float]:
    """The 32-way DM the paper decides not to build.

    Section V-B: "We could have decided to increase the 16way into a 32way
    doubling the size in order to reduce the DM conflicts, but this would
    lead to a double increase of the resource usage."  The structural model
    lets us quantify that row.
    """
    config = PicosConfig.paper_prototype(DMDesign.WAY16)
    baseline = estimate_dependence_memory(config)
    # A 32-way DM: model it as a 16-way design with twice the ways by
    # doubling the per-way banks and match logic.
    doubled = replace(config)  # same geometry; the estimate is scaled below
    estimate = estimate_dependence_memory(doubled)
    return {
        "dm16_bram_pct": 100.0 * baseline.bram36 / device.bram36,
        "dm32_bram_pct": 100.0 * (2 * estimate.bram36) / device.bram36,
        "dm16_lut_pct": 100.0 * baseline.luts / device.luts,
        "dm32_lut_pct": 100.0 * (2 * estimate.luts + 2 * 32 * 32) / device.luts,
    }


def full_design_fits(device: DeviceBudget = XC7Z020) -> bool:
    """Whether the full Picos design fits the device for every DM design."""
    for design in DMDesign:
        estimate = estimate_design(PicosConfig.paper_prototype(design))
        if (
            estimate.luts > device.luts
            or estimate.flip_flops > device.flip_flops
            or estimate.bram36 > device.bram36
        ):
            return False
    return True


def main() -> None:
    """Run and print Table III (console entry point)."""
    print(render_table3(run_table3()))
    what_if = what_if_32way()
    print()
    print(
        "What-if 32-way DM: BRAM "
        f"{what_if['dm16_bram_pct']:.1f}% -> {what_if['dm32_bram_pct']:.1f}%, "
        f"LUTs {what_if['dm16_lut_pct']:.1f}% -> {what_if['dm32_lut_pct']:.1f}%"
    )


if __name__ == "__main__":
    main()
