"""Table I: characteristics of the real benchmarks.

For every benchmark and block size the driver builds the task program with
the generators of :mod:`repro.apps` and reports the number of tasks, the
dependence range, the average task size and the sequential execution time
next to the values of Table I, so the fidelity of the workload substitution
is visible at a glance.

No simulation is involved, but workload characterisation is still a sweep
(benchmarks x block sizes), so it is declared as a spec of ``characterize``
jobs and dispatched through the shared runner -- building the 140k-task
H264dec programs is exactly the kind of work worth caching and
parallelising.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.apps.registry import PAPER_BENCHMARKS, table1_reference
from repro.experiments.runner import (
    KIND_CHARACTERIZE,
    ExperimentSpec,
    RunnerOptions,
    run_sweep,
)

#: Benchmarks of Table I (the ``mlu`` variant is excluded: it is a
#: creation-order permutation of ``lu`` with identical characteristics).
TABLE1_BENCHMARKS: Tuple[str, ...] = ("heat", "lu", "sparselu", "cholesky", "h264dec")


def table1_spec(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS,
    problem_size: Optional[int] = None,
) -> ExperimentSpec:
    """Declare the Table I characterisation sweep."""
    workloads = tuple(
        (benchmark, block_size)
        for benchmark in benchmarks
        for block_size in PAPER_BENCHMARKS[benchmark].block_sizes
    )
    return ExperimentSpec(
        name="table1",
        kind=KIND_CHARACTERIZE,
        workloads=workloads,
        problem_size=problem_size,
    )


def run_table1(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS,
    problem_size: Optional[int] = None,
    options: Optional[RunnerOptions] = None,
) -> List[Dict[str, object]]:
    """Build every benchmark of Table I and collect its characteristics.

    Each returned row contains the generated values and the paper's
    reference values.
    """
    spec = table1_spec(benchmarks, problem_size)
    rows: List[Dict[str, object]] = []
    for point, job in run_sweep(spec, options).items():
        assert point.block_size is not None
        reference = table1_reference(point.workload, point.block_size)
        rows.append(
            {
                "benchmark": point.workload,
                "block_size": point.block_size,
                "num_tasks": int(job.metrics["num_tasks"]),
                "paper_num_tasks": reference.num_tasks,
                "dep_range": (int(job.metrics["dep_lo"]), int(job.metrics["dep_hi"])),
                "paper_dep_range": reference.dep_range,
                "avg_task_size": float(job.metrics["avg_task_size"]),
                "paper_avg_task_size": reference.average_task_size,
                "sequential_cycles": float(job.metrics["sequential_cycles"]),
                "paper_sequential_cycles": reference.sequential_cycles,
            }
        )
    return rows


def render_table1(rows: List[Dict[str, object]]) -> str:
    """Render the generated-vs-paper Table I comparison."""
    table_rows = []
    for row in rows:
        dep_lo, dep_hi = row["dep_range"]  # type: ignore[misc]
        paper_lo, paper_hi = row["paper_dep_range"]  # type: ignore[misc]
        table_rows.append(
            [
                row["benchmark"],
                row["block_size"],
                row["num_tasks"],
                row["paper_num_tasks"],
                f"{dep_lo}-{dep_hi}",
                f"{paper_lo}-{paper_hi}",
                float(row["avg_task_size"]),
                float(row["paper_avg_task_size"]),
                float(row["sequential_cycles"]),
                float(row["paper_sequential_cycles"]),
            ]
        )
    return render_table(
        headers=[
            "benchmark",
            "blocksize",
            "#tasks",
            "#tasks(paper)",
            "#dep",
            "#dep(paper)",
            "AveTSize",
            "AveTSize(paper)",
            "SeqExec",
            "SeqExec(paper)",
        ],
        rows=table_rows,
        title="Table I -- real benchmarks (generated vs paper)",
    )


def task_count_error(rows: List[Dict[str, object]]) -> Dict[Tuple[str, int], float]:
    """Relative task-count error per benchmark / block size."""
    errors: Dict[Tuple[str, int], float] = {}
    for row in rows:
        paper = float(row["paper_num_tasks"])  # type: ignore[arg-type]
        generated = float(row["num_tasks"])  # type: ignore[arg-type]
        errors[(str(row["benchmark"]), int(row["block_size"]))] = (
            abs(generated - paper) / paper if paper else 0.0
        )
    return errors


def main() -> None:
    """Run and print Table I (console entry point)."""
    print(render_table1(run_table1()))


if __name__ == "__main__":
    main()
