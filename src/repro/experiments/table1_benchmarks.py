"""Table I: characteristics of the real benchmarks.

For every benchmark and block size the driver builds the task program with
the generators of :mod:`repro.apps` and reports the number of tasks, the
dependence range, the average task size and the sequential execution time
next to the values of Table I, so the fidelity of the workload substitution
is visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.apps.registry import (
    PAPER_BENCHMARKS,
    build_benchmark,
    table1_reference,
)

#: Benchmarks of Table I (the ``mlu`` variant is excluded: it is a
#: creation-order permutation of ``lu`` with identical characteristics).
TABLE1_BENCHMARKS: Tuple[str, ...] = ("heat", "lu", "sparselu", "cholesky", "h264dec")


def run_table1(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS,
    problem_size: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Build every benchmark of Table I and collect its characteristics.

    Each returned row contains the generated values and the paper's
    reference values.
    """
    rows: List[Dict[str, object]] = []
    for benchmark in benchmarks:
        spec = PAPER_BENCHMARKS[benchmark]
        for block_size in spec.block_sizes:
            program = build_benchmark(benchmark, block_size, problem_size=problem_size)
            reference = table1_reference(benchmark, block_size)
            lo, hi = program.dependence_count_range
            rows.append(
                {
                    "benchmark": benchmark,
                    "block_size": block_size,
                    "num_tasks": program.num_tasks,
                    "paper_num_tasks": reference.num_tasks,
                    "dep_range": (lo, hi),
                    "paper_dep_range": reference.dep_range,
                    "avg_task_size": program.average_task_size,
                    "paper_avg_task_size": reference.average_task_size,
                    "sequential_cycles": float(program.sequential_cycles),
                    "paper_sequential_cycles": reference.sequential_cycles,
                }
            )
    return rows


def render_table1(rows: List[Dict[str, object]]) -> str:
    """Render the generated-vs-paper Table I comparison."""
    table_rows = []
    for row in rows:
        dep_lo, dep_hi = row["dep_range"]  # type: ignore[misc]
        paper_lo, paper_hi = row["paper_dep_range"]  # type: ignore[misc]
        table_rows.append(
            [
                row["benchmark"],
                row["block_size"],
                row["num_tasks"],
                row["paper_num_tasks"],
                f"{dep_lo}-{dep_hi}",
                f"{paper_lo}-{paper_hi}",
                float(row["avg_task_size"]),
                float(row["paper_avg_task_size"]),
                float(row["sequential_cycles"]),
                float(row["paper_sequential_cycles"]),
            ]
        )
    return render_table(
        headers=[
            "benchmark",
            "blocksize",
            "#tasks",
            "#tasks(paper)",
            "#dep",
            "#dep(paper)",
            "AveTSize",
            "AveTSize(paper)",
            "SeqExec",
            "SeqExec(paper)",
        ],
        rows=table_rows,
        title="Table I -- real benchmarks (generated vs paper)",
    )


def task_count_error(rows: List[Dict[str, object]]) -> Dict[Tuple[str, int], float]:
    """Relative task-count error per benchmark / block size."""
    errors: Dict[Tuple[str, int], float] = {}
    for row in rows:
        paper = float(row["paper_num_tasks"])  # type: ignore[arg-type]
        generated = float(row["num_tasks"])  # type: ignore[arg-type]
        errors[(str(row["benchmark"]), int(row["block_size"]))] = (
            abs(generated - paper) / paper if paper else 0.0
        )
    return errors


def main() -> None:
    """Run and print Table I (console entry point)."""
    print(render_table1(run_table1()))


if __name__ == "__main__":
    main()
