"""Figure 11: scalability of the real benchmarks (Picos vs Perfect vs Nanos++).

The headline evaluation of the paper: the five real applications, each at
four block sizes, are executed with the Picos prototype under the HIL
Full-system mode, with the Perfect (roofline) simulator and with the
Nanos++ software-only runtime, for 2 to 24 workers.  The observations the
reproduction must preserve:

* the Picos prototype reaches (nearly) the roofline for the coarse and
  medium block sizes;
* Nanos++ saturates around 8 workers and then degrades, while the prototype
  keeps scaling;
* as the block size shrinks, Nanos++ collapses while the prototype keeps
  advancing or at least remains stable.

Running the full paper matrix (five benchmarks x four block sizes x seven
worker counts x three simulators, with programs of up to 140k tasks) takes
tens of minutes in pure Python; the driver therefore accepts subsets and a
problem-size override, and the defaults used by the benchmark suite are the
medium granularities recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_series
from repro.analysis.speedup import ScalabilityCurve
from repro.apps.registry import build_benchmark
from repro.core.config import DMDesign, PicosConfig
from repro.runtime.nanos import NanosRuntimeSimulator
from repro.runtime.perfect import PerfectScheduler
from repro.sim.hil import HILMode, HILSimulator

#: Worker counts of the x-axis.
FIG11_WORKERS: Tuple[int, ...] = (2, 4, 8, 12, 16, 20, 24)

#: The full benchmark matrix of the figure (benchmark -> block sizes).
FIG11_FULL_MATRIX: Dict[str, Tuple[int, ...]] = {
    "heat": (256, 128, 64, 32),
    "cholesky": (256, 128, 64, 32),
    "lu": (256, 128, 64, 32),
    "sparselu": (256, 128, 64, 32),
    "h264dec": (8, 4, 2, 1),
}

#: A representative subset that runs in a couple of minutes and still shows
#: every qualitative effect (used by the benchmark suite).
FIG11_QUICK_MATRIX: Dict[str, Tuple[int, ...]] = {
    "heat": (128, 64),
    "cholesky": (128, 64),
    "lu": (64, 32),
    "sparselu": (128, 64),
    "h264dec": (8, 4),
}

#: The three simulators compared in each plot.
FIG11_SIMULATORS: Tuple[str, ...] = ("picos", "perfect", "nanos")


def run_fig11_point(
    benchmark: str,
    block_size: int,
    worker_counts: Sequence[int] = FIG11_WORKERS,
    problem_size: Optional[int] = None,
    design: DMDesign = DMDesign.PEARSON8,
) -> Dict[str, ScalabilityCurve]:
    """Scalability curves of one benchmark / block-size pair.

    Returns ``{"picos": curve, "perfect": curve, "nanos": curve}``.
    """
    program = build_benchmark(benchmark, block_size, problem_size=problem_size)
    config = PicosConfig.paper_prototype(design)
    curves = {
        name: ScalabilityCurve(label=f"{benchmark}-{block_size}-{name}")
        for name in FIG11_SIMULATORS
    }
    for workers in worker_counts:
        picos = HILSimulator(
            program, config=config, mode=HILMode.FULL_SYSTEM, num_workers=workers
        ).run()
        perfect = PerfectScheduler(program, num_workers=workers).run()
        nanos = NanosRuntimeSimulator(program, num_threads=workers).run()
        curves["picos"].add(workers, picos.speedup)
        curves["perfect"].add(workers, perfect.speedup)
        curves["nanos"].add(workers, nanos.speedup)
    return curves


def run_fig11(
    matrix: Optional[Dict[str, Sequence[int]]] = None,
    worker_counts: Sequence[int] = FIG11_WORKERS,
    problem_size: Optional[int] = None,
) -> Dict[Tuple[str, int], Dict[str, ScalabilityCurve]]:
    """Compute the Figure 11 curves for a benchmark matrix.

    ``matrix`` defaults to the quick subset; pass ``FIG11_FULL_MATRIX`` for
    the complete paper sweep.
    """
    matrix = matrix if matrix is not None else FIG11_QUICK_MATRIX
    results: Dict[Tuple[str, int], Dict[str, ScalabilityCurve]] = {}
    for benchmark, block_sizes in matrix.items():
        for block_size in block_sizes:
            results[(benchmark, block_size)] = run_fig11_point(
                benchmark,
                block_size,
                worker_counts=worker_counts,
                problem_size=problem_size,
            )
    return results


def render_fig11(
    results: Dict[Tuple[str, int], Dict[str, ScalabilityCurve]]
) -> str:
    """Render the Figure 11 curves, one table per benchmark / block size."""
    sections: List[str] = []
    for (benchmark, block_size), curves in results.items():
        worker_counts = curves["picos"].worker_counts()
        series = {
            "Picos full-system": curves["picos"].speedups(),
            "Perfect simulator": curves["perfect"].speedups(),
            "Nanos++ RTS": curves["nanos"].speedups(),
        }
        sections.append(
            render_series(
                title=f"Figure 11 -- {benchmark} (block size {block_size}): "
                "speedup vs workers",
                x_label="workers",
                x_values=worker_counts,
                series=series,
            )
        )
    return "\n\n".join(sections)


def qualitative_checks(
    curves: Dict[str, ScalabilityCurve]
) -> Dict[str, bool]:
    """The paper's qualitative claims for one benchmark / block-size point."""
    picos = curves["picos"]
    perfect = curves["perfect"]
    nanos = curves["nanos"]
    max_workers = max(picos.worker_counts())
    return {
        # The prototype never exceeds the roofline.
        "picos_below_roofline": all(
            picos.points[w] <= perfect.points[w] * 1.02 for w in picos.worker_counts()
        ),
        # The prototype at the largest worker count beats the software peak.
        "picos_beats_nanos_peak": picos.points[max_workers] >= nanos.peak()[1],
        # The software runtime saturates no later than the prototype.
        "nanos_saturates_earlier": nanos.peak()[0] <= picos.peak()[0],
    }


def main() -> None:
    """Run and print the quick Figure 11 subset (console entry point)."""
    print(render_fig11(run_fig11()))


if __name__ == "__main__":
    main()
