"""Figure 11: scalability of the real benchmarks (Picos vs Perfect vs Nanos++).

The headline evaluation of the paper: the five real applications, each at
four block sizes, are executed with the Picos prototype under the HIL
Full-system mode, with the Perfect (roofline) simulator and with the
Nanos++ software-only runtime, for 2 to 24 workers.  The observations the
reproduction must preserve:

* the Picos prototype reaches (nearly) the roofline for the coarse and
  medium block sizes;
* Nanos++ saturates around 8 workers and then degrades, while the prototype
  keeps scaling;
* as the block size shrinks, Nanos++ collapses while the prototype keeps
  advancing or at least remains stable.

The full paper matrix (five benchmarks x four block sizes x seven worker
counts x three simulators, with programs of up to 140k tasks) is exactly
the kind of embarrassingly parallel sweep the shared runner exists for:
every (benchmark, block size, workers, simulator) cell is one independent
job, all of them are submitted in a single batch, and the on-disk cache
makes re-rendering the figure free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_series
from repro.analysis.speedup import ScalabilityCurve
from repro.core.config import DMDesign
from repro.experiments.runner import (
    RunnerOptions,
    SweepPoint,
    run_points,
)
from repro.sim.backend import BACKEND_HIL_FULL, BACKEND_NANOS, BACKEND_PERFECT

#: Worker counts of the x-axis.
FIG11_WORKERS: Tuple[int, ...] = (2, 4, 8, 12, 16, 20, 24)

#: The full benchmark matrix of the figure (benchmark -> block sizes).
FIG11_FULL_MATRIX: Dict[str, Tuple[int, ...]] = {
    "heat": (256, 128, 64, 32),
    "cholesky": (256, 128, 64, 32),
    "lu": (256, 128, 64, 32),
    "sparselu": (256, 128, 64, 32),
    "h264dec": (8, 4, 2, 1),
}

#: A representative subset that runs in a couple of minutes and still shows
#: every qualitative effect (used by the benchmark suite).
FIG11_QUICK_MATRIX: Dict[str, Tuple[int, ...]] = {
    "heat": (128, 64),
    "cholesky": (128, 64),
    "lu": (64, 32),
    "sparselu": (128, 64),
    "h264dec": (8, 4),
}

#: Curve label -> simulator backend of the three comparison points.
FIG11_BACKENDS: Dict[str, str] = {
    "picos": BACKEND_HIL_FULL,
    "perfect": BACKEND_PERFECT,
    "nanos": BACKEND_NANOS,
}

#: The three simulators compared in each plot.
FIG11_SIMULATORS: Tuple[str, ...] = tuple(FIG11_BACKENDS)

#: Display labels of the rendered series.
FIG11_SERIES_LABELS: Dict[str, str] = {
    "picos": "Picos full-system",
    "perfect": "Perfect simulator",
    "nanos": "Nanos++ RTS",
}


def fig11_points(
    matrix: Dict[str, Sequence[int]],
    worker_counts: Sequence[int] = FIG11_WORKERS,
    problem_size: Optional[int] = None,
    design: DMDesign = DMDesign.PEARSON8,
    simulators: Sequence[str] = FIG11_SIMULATORS,
) -> Dict[Tuple[str, int, str], SweepPoint]:
    """Declare every Figure 11 job, keyed by (benchmark, block, simulator).

    The DM design only parameterises the Picos backend; the software
    runtime and the roofline scheduler have no Picos configuration, so
    their points carry none (and therefore share cache entries across
    designs).
    """
    points: Dict[Tuple[str, int, str], SweepPoint] = {}
    for benchmark, block_sizes in matrix.items():
        for block_size in block_sizes:
            for workers in worker_counts:
                for simulator in simulators:
                    backend = FIG11_BACKENDS[simulator]
                    points[(benchmark, block_size, f"{simulator}@{workers}")] = SweepPoint(
                        experiment="fig11",
                        workload=benchmark,
                        block_size=block_size,
                        problem_size=problem_size,
                        backend=backend,
                        dm_design=design.value if backend == BACKEND_HIL_FULL else None,
                        num_workers=workers,
                    )
    return points


def run_fig11(
    matrix: Optional[Dict[str, Sequence[int]]] = None,
    worker_counts: Sequence[int] = FIG11_WORKERS,
    problem_size: Optional[int] = None,
    design: DMDesign = DMDesign.PEARSON8,
    simulators: Sequence[str] = FIG11_SIMULATORS,
    options: Optional[RunnerOptions] = None,
) -> Dict[Tuple[str, int], Dict[str, ScalabilityCurve]]:
    """Compute the Figure 11 curves for a benchmark matrix.

    ``matrix`` defaults to the quick subset; pass ``FIG11_FULL_MATRIX`` for
    the complete paper sweep.  Every cell of the matrix is submitted as one
    batch so a parallel runner saturates all cores.
    """
    matrix = matrix if matrix is not None else FIG11_QUICK_MATRIX
    points = fig11_points(matrix, worker_counts, problem_size, design, simulators)
    job_results = run_points(list(points.values()), options)

    results: Dict[Tuple[str, int], Dict[str, ScalabilityCurve]] = {}
    for (benchmark, block_size, tag), point in points.items():
        simulator = tag.split("@", 1)[0]
        curves = results.setdefault(
            (benchmark, block_size),
            {
                name: ScalabilityCurve(label=f"{benchmark}-{block_size}-{name}")
                for name in simulators
            },
        )
        curves[simulator].add(point.num_workers, job_results[point].speedup)
    return results


def run_fig11_point(
    benchmark: str,
    block_size: int,
    worker_counts: Sequence[int] = FIG11_WORKERS,
    problem_size: Optional[int] = None,
    design: DMDesign = DMDesign.PEARSON8,
    simulators: Sequence[str] = FIG11_SIMULATORS,
    options: Optional[RunnerOptions] = None,
) -> Dict[str, ScalabilityCurve]:
    """Scalability curves of one benchmark / block-size pair.

    Returns ``{"picos": curve, "perfect": curve, "nanos": curve}``.
    """
    results = run_fig11(
        matrix={benchmark: (block_size,)},
        worker_counts=worker_counts,
        problem_size=problem_size,
        design=design,
        simulators=simulators,
        options=options,
    )
    return results[(benchmark, block_size)]


def render_fig11(
    results: Dict[Tuple[str, int], Dict[str, ScalabilityCurve]]
) -> str:
    """Render the Figure 11 curves, one table per benchmark / block size."""
    sections: List[str] = []
    for (benchmark, block_size), curves in results.items():
        present = [name for name in FIG11_SERIES_LABELS if name in curves]
        worker_counts = curves[present[0]].worker_counts()
        series = {
            FIG11_SERIES_LABELS[name]: curves[name].speedups() for name in present
        }
        sections.append(
            render_series(
                title=f"Figure 11 -- {benchmark} (block size {block_size}): "
                "speedup vs workers",
                x_label="workers",
                x_values=worker_counts,
                series=series,
            )
        )
    return "\n\n".join(sections)


def qualitative_checks(
    curves: Dict[str, ScalabilityCurve]
) -> Dict[str, bool]:
    """The paper's qualitative claims for one benchmark / block-size point."""
    picos = curves["picos"]
    perfect = curves["perfect"]
    nanos = curves["nanos"]
    max_workers = max(picos.worker_counts())
    return {
        # The prototype never exceeds the roofline.
        "picos_below_roofline": all(
            picos.points[w] <= perfect.points[w] * 1.02 for w in picos.worker_counts()
        ),
        # The prototype at the largest worker count beats the software peak.
        "picos_beats_nanos_peak": picos.points[max_workers] >= nanos.peak()[1],
        # The software runtime saturates no later than the prototype.
        "nanos_saturates_earlier": nanos.peak()[0] <= picos.peak()[0],
    }


def main() -> None:
    """Run and print the quick Figure 11 subset (console entry point)."""
    print(render_fig11(run_fig11()))


if __name__ == "__main__":
    main()
