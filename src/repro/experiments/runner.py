"""Declarative experiment runner: sweep expansion, parallelism and caching.

Every table and figure of the paper is a sweep -- applications crossed with
simulator backends, Dependence Memory designs, worker counts and problem
sizes -- and every point of a sweep is an independent simulation.  This
module turns that observation into infrastructure:

* :class:`SweepPoint` describes one job (one simulation, workload
  characterisation, overhead-model evaluation or resource estimate) as a
  small frozen value object;
* :class:`ExperimentSpec` declares a whole sweep and expands it into the
  cross product of its axes, in a deterministic order;
* :func:`run_points` executes the jobs -- serially or on a
  :class:`concurrent.futures.ProcessPoolExecutor` -- and memoizes each one
  in an on-disk JSON cache keyed by
  :meth:`repro.sim.request.SimulationRequest.cache_key` (trace content,
  backend name, Picos configuration, worker count, policy), so re-running
  an experiment replays instantly.  Simulation points are request
  templates: :meth:`SweepPoint.to_request` produces the exact
  ``SimulationRequest`` that both executes the job and mints its key.

Results come back as :class:`JobResult` objects whose ``metrics``,
``counters`` and ``payload`` dictionaries are JSON round-tripped before
they leave the runner; a fresh simulation and a cache hit are therefore
structurally identical, and a parallel run is byte-for-byte equal to a
serial one.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import DMDesign, PicosConfig
from repro.core.hashing import stable_digest
from repro.core.scheduler import SchedulingPolicy
from repro.runtime.overhead import NanosOverheadModel
from repro.sim.driver import simulate_request
from repro.sim.request import (
    SimulationRequest,
    WorkloadRef,
    build_workload,
    config_fields,
    workload_trace_digest,
)
from repro.sim.request import _TRACE_DIGEST_MEMO  # shared digest memo
from repro.traces.synthetic import first_and_average_dependences

#: Bumped whenever the job-result layout changes, so stale cache entries
#: from older versions of the runner are never replayed.
CACHE_SCHEMA_VERSION = 1

#: Job kinds understood by the runner.
KIND_SIMULATE = "simulate"
KIND_CHARACTERIZE = "characterize"
KIND_OVERHEAD = "overhead"
KIND_RESOURCES = "resources"

_KINDS = (KIND_SIMULATE, KIND_CHARACTERIZE, KIND_OVERHEAD, KIND_RESOURCES)

#: JSON-safe scalar / nested-tuple values allowed in ``SweepPoint.extra``.
ExtraValue = Union[str, int, float, bool, None, Tuple["ExtraValue", ...]]
ExtraItems = Tuple[Tuple[str, ExtraValue], ...]


# ----------------------------------------------------------------------
# sweep model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One independent job of an experiment sweep.

    The point is a pure value: hashable, picklable (it crosses the process
    boundary to the worker pool) and serialisable (it is stored next to the
    cached result for debuggability).  Enum-valued knobs are carried as
    their string values for exactly that reason.
    """

    #: Name of the owning experiment ("fig08", "table4", ...); cosmetic.
    experiment: str = ""
    #: What to do: simulate / characterize / overhead / resources.
    kind: str = KIND_SIMULATE
    #: Benchmark name (``repro.apps.registry``) or synthetic case name.
    workload: str = ""
    #: Block size (or H264dec granularity); ``None`` for synthetic cases.
    block_size: Optional[int] = None
    #: Problem-size override; ``None`` selects the paper's size.
    problem_size: Optional[int] = None
    #: Simulator backend name; required for ``simulate`` jobs.
    backend: Optional[str] = None
    #: Dependence Memory design (``DMDesign`` value) or ``None`` for the
    #: backend's default configuration.
    dm_design: Optional[str] = None
    num_workers: int = 12
    #: Task Scheduler policy (``SchedulingPolicy`` value).
    policy: str = SchedulingPolicy.FIFO.value
    #: Kind-specific parameters as a sorted tuple of ``(key, value)`` pairs.
    extra: ExtraItems = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; choose from {_KINDS}")
        if self.kind == KIND_SIMULATE and not self.backend:
            raise ValueError("simulate jobs require a backend name")
        if self.kind in (KIND_SIMULATE, KIND_CHARACTERIZE) and not self.workload:
            raise ValueError(f"{self.kind} jobs require a workload name")

    def extra_dict(self) -> Dict[str, ExtraValue]:
        """The ``extra`` pairs as a dictionary."""
        return dict(self.extra)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary form (stored next to cached results)."""
        return dataclasses.asdict(self)

    def to_request(self) -> SimulationRequest:
        """The typed :class:`SimulationRequest` this sweep point describes.

        Only meaningful for ``simulate`` points: the declarative workload
        fields become a :class:`~repro.sim.request.WorkloadRef`, the
        configuration is resolved exactly as the cache key resolves it
        (an explicit ``config`` in ``extra`` wins over the ``dm_design``
        shortcut), and enum-valued knobs are rehydrated from their string
        forms.  Execution and cache keys both derive from this request,
        so a point can never simulate one thing and cache another.
        """
        if self.kind != KIND_SIMULATE:
            raise ValueError(f"only simulate points map to requests, not {self.kind!r}")
        assert self.backend is not None  # __post_init__ guarantees it
        return SimulationRequest(
            program=WorkloadRef(self.workload, self.block_size, self.problem_size),
            backend=self.backend,
            num_workers=self.num_workers,
            config=_config_for(self),
            policy=SchedulingPolicy(self.policy),
            overhead=_overhead_from_extra(self.extra_dict()),
        )


def overhead_extra(model: Optional[NanosOverheadModel]) -> ExtraItems:
    """Encode a Nanos++ overhead model override into ``extra`` pairs.

    The model is a frozen dataclass of scalars, so its field values travel
    through the cache key and across the process boundary unchanged; the
    default model contributes nothing (keeping keys stable for the common
    case).
    """
    if model is None:
        return ()
    return (("overhead", tuple(sorted(dataclasses.asdict(model).items()))),)


def _overhead_from_extra(extra: Dict[str, ExtraValue]) -> Optional[NanosOverheadModel]:
    encoded = extra.get("overhead")
    if encoded is None:
        return None
    return NanosOverheadModel(**{str(key): value for key, value in encoded})


def _config_fields(config: PicosConfig) -> Dict[str, ExtraValue]:
    """The configuration's fields as JSON-safe scalars (enums -> values)."""
    # Shared with SimulationRequest.config_fingerprint: the two renderings
    # must match or warm-cache keys and execution would disagree.
    return config_fields(config)  # type: ignore[return-value]


def config_extra(config: Optional[PicosConfig]) -> ExtraItems:
    """Encode a full Picos configuration override into ``extra`` pairs.

    ``dm_design`` on the point only selects among the paper-prototype
    configurations; a fully custom :class:`PicosConfig` travels through this
    encoding instead (every field is a scalar, so the round trip is exact).
    """
    if config is None:
        return ()
    return (("config", tuple(sorted(_config_fields(config).items()))),)


def _config_from_extra(extra: Dict[str, ExtraValue]) -> Optional[PicosConfig]:
    encoded = extra.get("config")
    if encoded is None:
        return None
    params = {str(key): value for key, value in encoded}  # type: ignore[union-attr]
    params["dm_design"] = DMDesign(params["dm_design"])
    return PicosConfig(**params)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative sweep: the cross product of a few axes.

    ``expand()`` produces the points in a fixed nested order -- workloads,
    then DM designs, then policies, then worker counts, then backends --
    so every run of the same spec enumerates (and reports) its jobs
    identically.
    """

    name: str
    kind: str = KIND_SIMULATE
    #: ``(workload, block_size)`` pairs; block size ``None`` for synthetic
    #: cases and characterisation-only workloads.
    workloads: Tuple[Tuple[str, Optional[int]], ...] = ()
    #: Backend names; must be set explicitly for ``simulate`` sweeps
    #: (``expand`` raises otherwise), irrelevant for the analytic kinds.
    backends: Tuple[Optional[str], ...] = (None,)
    dm_designs: Tuple[Optional[str], ...] = (None,)
    worker_counts: Tuple[int, ...] = (12,)
    policies: Tuple[str, ...] = (SchedulingPolicy.FIFO.value,)
    problem_size: Optional[int] = None
    extra: ExtraItems = ()

    def expand(self) -> List[SweepPoint]:
        """The sweep's points, in deterministic declaration order."""
        if self.kind == KIND_SIMULATE and not any(self.backends):
            raise ValueError(
                f"spec {self.name!r} declares simulate jobs but no backends; "
                "set backends=('hil-full', ...) or another registered name"
            )
        points: List[SweepPoint] = []
        for workload, block_size in self.workloads:
            for design in self.dm_designs:
                for policy in self.policies:
                    for workers in self.worker_counts:
                        for backend in self.backends:
                            points.append(
                                SweepPoint(
                                    experiment=self.name,
                                    kind=self.kind,
                                    workload=workload,
                                    block_size=block_size,
                                    problem_size=self.problem_size,
                                    backend=backend,
                                    dm_design=design,
                                    num_workers=workers,
                                    policy=policy,
                                    extra=self.extra,
                                )
                            )
        return points


# ----------------------------------------------------------------------
# job results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobResult:
    """Outcome of one sweep point, reduced to JSON-safe data.

    Full :class:`~repro.sim.results.SimulationResult` objects (with their
    per-task timelines) are too heavy to cache for 100k-task programs, so
    the runner keeps the quantities the paper's tables and figures consume.
    """

    kind: str
    #: Simulator identifier ("picos-hw-only", ...) or "analytic".
    simulator: str
    workload: str
    num_workers: int
    #: Headline numbers: speedup, makespan, L1st, thrTask, ...
    metrics: Mapping[str, float] = field(default_factory=dict)
    #: Hardware / runtime counters collected during a simulation.
    counters: Mapping[str, float] = field(default_factory=dict)
    #: Kind-specific structured data (curves, table rows, ...).
    payload: Mapping[str, object] = field(default_factory=dict)
    #: Cache key of the point (useful for debugging / eviction).
    key: str = ""
    #: Whether this result was replayed from the on-disk cache.
    cached: bool = False

    @property
    def speedup(self) -> float:
        """Speedup metric shortcut (0.0 for non-simulation jobs)."""
        return float(self.metrics.get("speedup", 0.0))

    def to_document(self) -> Dict[str, object]:
        """Serialisable form stored in the cache (runtime flags excluded)."""
        return {
            "kind": self.kind,
            "simulator": self.simulator,
            "workload": self.workload,
            "num_workers": self.num_workers,
            "metrics": dict(self.metrics),
            "counters": dict(self.counters),
            "payload": dict(self.payload),
        }

    @classmethod
    def from_document(
        cls, document: Mapping[str, object], *, key: str, cached: bool
    ) -> "JobResult":
        return cls(
            kind=str(document["kind"]),
            simulator=str(document["simulator"]),
            workload=str(document["workload"]),
            num_workers=int(document["num_workers"]),  # type: ignore[arg-type]
            metrics=dict(document.get("metrics", {})),  # type: ignore[arg-type]
            counters=dict(document.get("counters", {})),  # type: ignore[arg-type]
            payload=dict(document.get("payload", {})),  # type: ignore[arg-type]
            key=key,
            cached=cached,
        )


# ----------------------------------------------------------------------
# execution options
# ----------------------------------------------------------------------
def default_cache_dir() -> Path:
    """Cache location: ``$PICOS_CACHE_DIR`` or ``.picos-cache`` in the cwd."""
    return Path(os.environ.get("PICOS_CACHE_DIR", ".picos-cache"))


@dataclass(frozen=True)
class RunnerOptions:
    """How a sweep is executed.

    ``jobs=None`` (the library default) runs serially in-process, which is
    what the test and benchmark suites want; the command line defaults to
    ``os.cpu_count()`` instead.  ``cache_dir=None`` disables the on-disk
    cache entirely.
    """

    jobs: Optional[int] = None
    cache_dir: Optional[Union[str, Path]] = None

    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return 1
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        return self.jobs


#: Options used when an experiment driver receives ``options=None``.
SERIAL_UNCACHED = RunnerOptions()


# ----------------------------------------------------------------------
# on-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """A directory of JSON documents, one per cache key.

    Writes are atomic (temp file + :func:`os.replace`), so a crashed or
    interrupted run never leaves a half-written entry behind, and two
    concurrent runs at worst do the same work twice.  A write that fails
    mid-dump removes its own temp file before the error propagates, and the
    constructor sweeps temp files old enough to be orphans of a killed
    process (age guards the sweep so a concurrent run's in-flight write is
    never yanked out from under it).
    """

    #: Temp files older than this are considered orphaned by a dead writer
    #: (an in-flight cache write lasts milliseconds, not minutes).
    STALE_TEMP_SECONDS = 600.0

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._sweep_stale_temp_files()

    def _sweep_stale_temp_files(self) -> None:
        """Delete orphaned ``*.tmp.*``/``*.corrupt.*`` writer leftovers."""
        if not self.directory.is_dir():
            return
        import time

        cutoff = time.time() - self.STALE_TEMP_SECONDS
        for pattern in ("*/*.tmp.*", "*/*.corrupt.*"):
            for leftover in self.directory.glob(pattern):
                try:
                    if leftover.stat().st_mtime < cutoff:
                        leftover.unlink()
                except OSError:
                    # Another sweep got there first, or the writer completed
                    # its os.replace between our glob and stat; both are fine.
                    continue

    def path_for(self, key: str) -> Path:
        # Two-level fan-out keeps directories small for big sweeps.
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored result document for ``key``, or ``None``.

        Tolerant of whatever a concurrent or crashed writer may have left
        behind: a torn/partial/garbage JSON file is treated as a miss and
        quarantined (renamed to a ``.corrupt.<pid>`` sibling) so the
        recompute can re-``put`` the entry without fighting the wreck, and
        the evidence survives for inspection.  A non-mapping document is a
        plain miss.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as stream:
                document = json.load(stream)
        except OSError:
            return None
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        if not isinstance(document, dict):
            return None
        if document.get("version") != CACHE_SCHEMA_VERSION:
            return None
        result = document.get("result")
        return result if isinstance(result, dict) else None

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a torn cache entry out of the lookup path (best effort)."""
        try:
            os.replace(path, path.with_suffix(f".corrupt.{os.getpid()}"))
        except OSError:
            # Another reader quarantined it first, or the writer already
            # replaced it with a good entry; either way the miss stands.
            pass

    def put(
        self,
        key: str,
        point: Optional[SweepPoint],
        result: Dict[str, object],
    ) -> Path:
        """Store ``result`` for ``key`` and return the entry's path.

        ``point`` annotates the entry with the sweep point that produced it
        (for humans reading the cache tree); service-layer writers that
        have no sweep point pass ``None``.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "version": CACHE_SCHEMA_VERSION,
            "key": key,
            "point": point.as_dict() if point is not None else None,
            "result": result,
        }
        # The temp name must be unique per *writer*, not just per process:
        # the service layer puts from worker threads, and two same-key
        # threads sharing one pid-suffixed temp file would race each
        # other's os.replace.
        temporary = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            with temporary.open("w", encoding="utf-8") as stream:
                json.dump(document, stream, sort_keys=True, indent=1)
            os.replace(temporary, path)
        except BaseException:
            # A failed dump (unserialisable value, full disk, interrupt)
            # must not leak its half-written temp file into the cache tree.
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))


# ----------------------------------------------------------------------
# workload construction and cache keys
# ----------------------------------------------------------------------
# Workload building and trace digesting are the program-reference half of
# the typed request API and live in :mod:`repro.sim.request` now;
# ``build_workload`` / ``workload_trace_digest`` are re-exported above for
# the callers (and cache keys) that grew up with this module.


def _config_for(point: SweepPoint) -> Optional[PicosConfig]:
    custom = _config_from_extra(point.extra_dict())
    if custom is not None:
        return custom
    if point.dm_design is None:
        return None
    return PicosConfig.paper_prototype(DMDesign(point.dm_design))


def point_cache_key(point: SweepPoint) -> str:
    """Stable cache key of one sweep point.

    Simulation keys are minted by :meth:`SimulationRequest.cache_key` --
    trace content, backend name, configuration fingerprint, worker count
    and scheduling policy, the exact inputs that determine a simulation's
    outcome -- salted with the schema/package versions and the point's
    ``extra`` pairs.  The composition is byte-identical to the keys this
    function produced before the request type existed, so warm caches
    survive the refactor.  The experiment name is deliberately excluded:
    two figures sharing a point share its result.
    """
    # The package version participates so that simulator code changes
    # (shipped as version bumps) invalidate previously cached numbers;
    # CACHE_SCHEMA_VERSION only guards the document layout.
    from repro import __version__

    prefix: List[object] = [CACHE_SCHEMA_VERSION, __version__, point.kind]
    if point.kind == KIND_SIMULATE:
        digest = workload_trace_digest(
            point.workload, point.block_size, point.problem_size
        )
        # The overhead model already travels through ``extra`` (the suffix),
        # where it has always lived in the key; strip it from the request so
        # it does not contribute a second, key-changing part.
        request = point.to_request().without(("overhead",))
        return request.cache_key(
            prefix=prefix, suffix=(point.extra,), trace_digest=digest
        )
    parts = prefix
    if point.kind == KIND_CHARACTERIZE:
        parts.append(
            workload_trace_digest(point.workload, point.block_size, point.problem_size)
        )
    if point.kind == KIND_OVERHEAD:
        parts.append(point.num_workers)
    parts.append(point.extra)
    return stable_digest(*parts)


# ----------------------------------------------------------------------
# job execution
# ----------------------------------------------------------------------
def _normalize(document: Dict[str, object]) -> Dict[str, object]:
    """JSON round-trip so fresh and cached results are indistinguishable."""
    return json.loads(json.dumps(document, sort_keys=True))


def _execute_simulate(point: SweepPoint) -> Dict[str, object]:
    request = point.to_request()
    program = request.build_program()
    result = simulate_request(request)
    d1st, avg_deps = first_and_average_dependences(program)
    return {
        "kind": point.kind,
        "simulator": result.simulator,
        "workload": program.name or point.workload,
        "num_workers": result.num_workers,
        "metrics": {
            "makespan": result.makespan,
            "speedup": result.speedup,
            "efficiency": result.efficiency,
            "sequential_cycles": result.sequential_cycles,
            "num_tasks": result.num_tasks,
            "first_task_latency": result.first_task_latency(),
            "task_throughput": result.task_throughput(),
            "completion_throughput": result.completion_throughput(),
            "d1st": d1st,
            "avg_deps": avg_deps,
        },
        "counters": dict(result.counters),
        "payload": {},
    }


def _execute_characterize(point: SweepPoint) -> Dict[str, object]:
    program = build_workload(point.workload, point.block_size, point.problem_size)
    dep_lo, dep_hi = program.dependence_count_range
    return {
        "kind": point.kind,
        "simulator": "analytic",
        "workload": program.name or point.workload,
        "num_workers": 0,
        "metrics": {
            "num_tasks": program.num_tasks,
            "dep_lo": dep_lo,
            "dep_hi": dep_hi,
            "avg_task_size": program.average_task_size,
            "avg_deps": program.average_dependences,
            "sequential_cycles": program.sequential_cycles,
        },
        "counters": {},
        "payload": {},
    }


def _execute_overhead(point: SweepPoint) -> Dict[str, object]:
    extra = point.extra_dict()
    model = _overhead_from_extra(extra) or NanosOverheadModel()
    dep_counts = [int(v) for v in extra.get("dep_counts", ())]  # type: ignore[union-attr]
    thread_counts = [int(v) for v in extra.get("thread_counts", ())]  # type: ignore[union-attr]
    curves = model.overhead_table(dep_counts, thread_counts)
    return {
        "kind": point.kind,
        "simulator": "analytic",
        "workload": point.workload or "nanos-overhead",
        "num_workers": 0,
        "metrics": {},
        "counters": {},
        "payload": {"curves": curves, "thread_counts": thread_counts},
    }


def _execute_resources(point: SweepPoint) -> Dict[str, object]:
    from repro.hardware.resources import DeviceBudget, table3_rows

    extra = point.extra_dict()
    device_fields = dict(extra.get("device", ()))  # type: ignore[arg-type]
    if device_fields:
        device = DeviceBudget(**{str(k): v for k, v in device_fields.items()})
        rows = table3_rows(device)
    else:
        rows = table3_rows()
    return {
        "kind": point.kind,
        "simulator": "analytic",
        "workload": point.workload or "resource-model",
        "num_workers": 0,
        "metrics": {},
        "counters": {},
        "payload": {"rows": rows},
    }


_EXECUTORS = {
    KIND_SIMULATE: _execute_simulate,
    KIND_CHARACTERIZE: _execute_characterize,
    KIND_OVERHEAD: _execute_overhead,
    KIND_RESOURCES: _execute_resources,
}


def _execute_point(point: SweepPoint) -> Dict[str, object]:
    """Run one job and return its normalised result document.

    Module-level so it pickles cleanly into pool worker processes; the
    worker rebuilds the task program from the point's declarative fields
    (generation is deterministic) rather than shipping programs around.
    """
    return _normalize(_EXECUTORS[point.kind](point))


_WorkloadTriple = Tuple[str, Optional[int], Optional[int]]


def _digest_triple(triple: _WorkloadTriple) -> str:
    """Pool-friendly wrapper around :func:`workload_trace_digest`."""
    return workload_trace_digest(*triple)


def _prefetch_trace_digests(
    points: Sequence[SweepPoint], jobs: int
) -> None:
    """Fill the trace-digest memo for ``points``, in parallel when allowed.

    Cache-key computation has to digest each workload's trace in the parent
    process; doing that serially would bottleneck a cold parallel run on
    single-core program generation, so the distinct workloads are digested
    through a short-lived pool first.
    """
    triples: List[_WorkloadTriple] = []
    seen = set()
    for point in points:
        if point.kind not in (KIND_SIMULATE, KIND_CHARACTERIZE):
            continue
        triple = (point.workload, point.block_size, point.problem_size)
        if triple in seen or triple in _TRACE_DIGEST_MEMO:
            continue
        seen.add(triple)
        triples.append(triple)
    if jobs > 1 and len(triples) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(triples))) as pool:
            for triple, digest in zip(triples, pool.map(_digest_triple, triples)):
                _TRACE_DIGEST_MEMO[triple] = digest
    else:
        for triple in triples:
            _TRACE_DIGEST_MEMO[triple] = _digest_triple(triple)


def _is_pool_safe(point: SweepPoint) -> bool:
    """Whether a point may run in a worker process.

    Built-in backends re-register themselves when a worker imports the
    simulator modules, but a plug-in backend registered by user code in
    the parent does not exist in a freshly spawned worker; such points are
    executed in-process instead of crashing the pool under spawn/forkserver
    start methods.
    """
    if point.kind != KIND_SIMULATE:
        return True
    from repro.sim.backend import BUILTIN_BACKENDS

    return point.backend in BUILTIN_BACKENDS


# ----------------------------------------------------------------------
# sweep execution
# ----------------------------------------------------------------------
def run_points(
    points: Sequence[SweepPoint],
    options: Optional[RunnerOptions] = None,
) -> Dict[SweepPoint, JobResult]:
    """Execute a list of sweep points and return results in input order.

    Cache hits are replayed without simulating; the remaining jobs run on a
    process pool when ``options.jobs`` allows.  The returned mapping
    preserves the order of ``points`` (duplicates collapse onto one entry),
    so downstream rendering is independent of completion order.
    """
    options = options if options is not None else SERIAL_UNCACHED
    cache = ResultCache(options.cache_dir) if options.cache_dir is not None else None
    jobs = options.resolved_jobs()

    if cache is not None:
        _prefetch_trace_digests(points, jobs)

    results: Dict[SweepPoint, JobResult] = {}
    pending: List[SweepPoint] = []
    keys: Dict[SweepPoint, str] = {}
    for point in points:
        if point in keys:
            continue
        # Key computation builds the workload to digest its trace, so it is
        # only worth doing when there is a cache to consult.
        key = point_cache_key(point) if cache is not None else ""
        keys[point] = key
        document = cache.get(key) if cache is not None else None
        if document is not None:
            results[point] = JobResult.from_document(document, key=key, cached=True)
        else:
            pending.append(point)

    if pending:
        pooled = [p for p in pending if _is_pool_safe(p)]
        documents: Dict[SweepPoint, Dict[str, object]] = {}
        if jobs > 1 and len(pooled) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pooled))) as pool:
                for point, document in zip(pooled, pool.map(_execute_point, pooled)):
                    documents[point] = document
        else:
            pooled = []
        for point in pending:
            if point not in documents:
                # Serial fallback: small batches, jobs=1, and points whose
                # backend only exists in this process.
                documents[point] = _execute_point(point)
        for point in pending:
            key = keys[point]
            document = documents[point]
            if cache is not None:
                cache.put(key, point, document)
            results[point] = JobResult.from_document(document, key=key, cached=False)

    return {point: results[point] for point in points}


def run_sweep(
    spec: ExperimentSpec,
    options: Optional[RunnerOptions] = None,
) -> Dict[SweepPoint, JobResult]:
    """Expand ``spec`` and execute every point (see :func:`run_points`)."""
    return run_points(spec.expand(), options)


def require_config_sensitive_backend(experiment: str, backend: Optional[str]) -> None:
    """Reject built-in backends that ignore the Picos configuration.

    Experiments that sweep the DM-design axis (or read Picos hardware
    counters) are meaningless on the software runtime and the roofline
    scheduler: every design would simulate identically and hardware
    counters like ``dm_conflicts`` do not exist.  Unknown (plug-in)
    backends pass through -- a custom hardware model may well be
    configuration sensitive.
    """
    from repro.sim.backend import BACKEND_NANOS, BACKEND_PERFECT

    if backend in (BACKEND_NANOS, BACKEND_PERFECT):
        raise ValueError(
            f"{experiment} sweeps the Picos configuration; the {backend!r} "
            "backend ignores it (use one of the hil-* backends or a "
            "configuration-sensitive plug-in)"
        )
