"""Figure 10: Nanos++ task creation and submission overhead per task.

The figure plots, as a function of the number of runtime threads, the
cycles the software-only runtime spends creating one task (independent of
its dependences) and submitting it (growing with the number of dependences
and with thread contention).  The reproduction evaluates the calibrated
:class:`~repro.runtime.overhead.NanosOverheadModel` at the same points.

There is no simulation behind this figure -- it is the overhead model
itself -- but the evaluation is still declared as a (single-point) sweep
and dispatched through the shared runner so it caches and composes like
every other artefact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_series
from repro.experiments.runner import (
    KIND_OVERHEAD,
    ExperimentSpec,
    RunnerOptions,
    overhead_extra,
    run_sweep,
)
from repro.runtime.overhead import NanosOverheadModel

#: Dependence counts of the submission curves shown in the figure.
FIG10_DEP_COUNTS: Sequence[int] = (1, 3, 5, 9, 15)
#: Thread counts of the x-axis (the shared-memory machine has 12 cores).
FIG10_THREADS: Sequence[int] = (1, 2, 4, 6, 8, 10, 12)


def fig10_spec(
    dep_counts: Sequence[int] = FIG10_DEP_COUNTS,
    thread_counts: Sequence[int] = FIG10_THREADS,
    overhead: Optional[NanosOverheadModel] = None,
) -> ExperimentSpec:
    """Declare the Figure 10 evaluation as a one-point overhead sweep."""
    extra = (
        ("dep_counts", tuple(int(d) for d in dep_counts)),
        ("thread_counts", tuple(int(t) for t in thread_counts)),
    ) + overhead_extra(overhead)
    return ExperimentSpec(
        name="fig10",
        kind=KIND_OVERHEAD,
        workloads=(("nanos-overhead", None),),
        extra=tuple(sorted(extra)),
    )


def run_fig10(
    dep_counts: Sequence[int] = FIG10_DEP_COUNTS,
    thread_counts: Sequence[int] = FIG10_THREADS,
    overhead: Optional[NanosOverheadModel] = None,
    options: Optional[RunnerOptions] = None,
) -> Dict[str, List[int]]:
    """Compute the Figure 10 curves.

    Returns ``{curve_label: [cycles per thread count]}``; the ``creation``
    curve plus one ``"<x> DEPs"`` submission curve per dependence count.
    """
    spec = fig10_spec(dep_counts, thread_counts, overhead)
    (job,) = run_sweep(spec, options).values()
    curves: Dict[str, List[int]] = job.payload["curves"]  # type: ignore[assignment]
    # Restore the figure's curve order (creation first, then by dependence
    # count); the cache stores JSON objects with sorted keys.
    labels = ["creation"] + [f"{deps} DEPs" for deps in dep_counts]
    return {label: curves[label] for label in labels}


def render_fig10(
    curves: Dict[str, List[int]], thread_counts: Sequence[int] = FIG10_THREADS
) -> str:
    """Render the Figure 10 curves as a table (threads on the x-axis)."""
    return render_series(
        title="Figure 10 -- Nanos++ RTS overhead for a single task (cycles)",
        x_label="threads",
        x_values=list(thread_counts),
        series={label: [float(v) for v in values] for label, values in curves.items()},
    )


def overhead_at(
    curves: Dict[str, List[int]],
    label: str,
    thread_counts: Sequence[int],
    threads: int,
) -> int:
    """Value of one curve at one thread count."""
    return curves[label][list(thread_counts).index(threads)]


def main() -> None:
    """Run and print Figure 10 (console entry point)."""
    print(render_fig10(run_fig10()))


if __name__ == "__main__":
    main()
