"""Table II: number of DM conflicts in the three Picos designs.

Reproduces the conflict counts observed while running four real benchmarks
(each at two block sizes) with 12 workers: the direct-hash designs (8-way
and 16-way) suffer hundreds to thousands of conflicts because block-aligned
dependence addresses cluster on a few DM sets, while the Pearson-hashed
design eliminates essentially all of them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.config import DMDesign
from repro.experiments.runner import (
    ExperimentSpec,
    RunnerOptions,
    require_config_sensitive_backend,
    run_sweep,
)
from repro.sim.backend import BACKEND_HIL_HW

#: Benchmark / block-size pairs of Table II.
TABLE2_BENCHMARKS: Tuple[Tuple[str, int], ...] = (
    ("heat", 128),
    ("heat", 64),
    ("sparselu", 128),
    ("sparselu", 64),
    ("lu", 64),
    ("lu", 32),
    ("cholesky", 256),
    ("cholesky", 128),
)

#: Worker count used by the paper for this table.
TABLE2_WORKERS = 12

#: Table II of the paper (conflicts for DM 8way / 16way / P+8way).
PAPER_TABLE2: Dict[Tuple[str, int], Tuple[int, int, int]] = {
    ("heat", 128): (254, 252, 65),
    ("heat", 64): (1022, 1020, 757),
    ("sparselu", 128): (189, 166, 0),
    ("sparselu", 64): (239, 0, 0),
    ("lu", 64): (491, 392, 0),
    ("lu", 32): (2039, 1937, 0),
    ("cholesky", 256): (108, 79, 0),
    ("cholesky", 128): (807, 792, 0),
}


def table2_spec(
    benchmarks: Sequence[Tuple[str, int]] = TABLE2_BENCHMARKS,
    num_workers: int = TABLE2_WORKERS,
    problem_size: Optional[int] = None,
    backend: str = BACKEND_HIL_HW,
) -> ExperimentSpec:
    """Declare the Table II sweep (benchmarks x DM designs)."""
    require_config_sensitive_backend("table2", backend)
    return ExperimentSpec(
        name="table2",
        workloads=tuple(benchmarks),
        backends=(backend,),
        dm_designs=tuple(design.value for design in DMDesign),
        worker_counts=(num_workers,),
        problem_size=problem_size,
    )


def run_table2(
    benchmarks: Sequence[Tuple[str, int]] = TABLE2_BENCHMARKS,
    num_workers: int = TABLE2_WORKERS,
    problem_size: Optional[int] = None,
    backend: str = BACKEND_HIL_HW,
    options: Optional[RunnerOptions] = None,
) -> Dict[Tuple[str, int], Dict[str, int]]:
    """Count DM conflicts per benchmark and design.

    Returns ``{(benchmark, block_size): {design_name: conflicts}}``.
    """
    spec = table2_spec(benchmarks, num_workers, problem_size, backend)
    results: Dict[Tuple[str, int], Dict[str, int]] = {}
    for point, job in run_sweep(spec, options).items():
        assert point.block_size is not None and point.dm_design is not None
        design = DMDesign(point.dm_design).display_name
        per_design = results.setdefault((point.workload, point.block_size), {})
        conflicts = job.counters.get("dm_conflicts")
        if conflicts is None:
            raise ValueError(
                f"backend {point.backend!r} reports no 'dm_conflicts' counter; "
                "table2 requires a Picos hardware backend (hil-*)"
            )
        per_design[design] = int(conflicts)
    return results


def render_table2(results: Dict[Tuple[str, int], Dict[str, int]]) -> str:
    """Render the measured conflicts next to the paper's Table II."""
    rows: List[List[object]] = []
    for (benchmark, block_size), per_design in results.items():
        paper = PAPER_TABLE2.get((benchmark, block_size), ("-", "-", "-"))
        rows.append(
            [
                benchmark,
                block_size,
                per_design[DMDesign.WAY8.display_name],
                per_design[DMDesign.WAY16.display_name],
                per_design[DMDesign.PEARSON8.display_name],
                f"{paper[0]}/{paper[1]}/{paper[2]}",
            ]
        )
    return render_table(
        headers=["benchmark", "blocksize", "DM 8way", "DM 16way", "DM P+8way", "paper (8/16/P8)"],
        rows=rows,
        title="Table II -- #DM conflicts in the three Picos designs "
        f"({TABLE2_WORKERS} workers)",
    )


def pearson_is_conflict_free(
    results: Dict[Tuple[str, int], Dict[str, int]], tolerance: int = 50
) -> bool:
    """Whether the Pearson design shows (essentially) no conflicts anywhere."""
    label = DMDesign.PEARSON8.display_name
    return all(per_design[label] <= tolerance for per_design in results.values())


def main() -> None:
    """Run and print Table II (console entry point)."""
    print(render_table2(run_table2()))


if __name__ == "__main__":
    main()
