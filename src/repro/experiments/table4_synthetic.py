"""Table IV: processing capacity on the synthetic benchmarks.

The seven synthetic benchmarks of Section IV-C are run with 12 workers in
the three HIL modes; for each case the driver reports the latency of the
first task (``L1st``), the per-task throughput (``thrTask``) and the
per-dependence throughput (``thrDep``) in cycles, next to the values the
paper measured on the Zedboard prototype.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.config import PicosConfig
from repro.experiments.runner import (
    ExperimentSpec,
    RunnerOptions,
    SweepPoint,
    config_extra,
    run_points,
)
from repro.sim.hil import HILMode
from repro.traces.synthetic import synthetic_case_names

#: Worker count used by the paper for this table.
TABLE4_WORKERS = 12

#: Table IV of the paper: ``{mode: {case: (L1st, thrTask, thrDep)}}``.
#: A ``thrDep`` of ``None`` marks the "-" cells (cases without dependences).
PAPER_TABLE4: Dict[str, Dict[str, Tuple[int, int, Optional[int]]]] = {
    "hw-only": {
        "case1": (45, 15, None),
        "case2": (73, 24, 24),
        "case3": (312, 243, 16),
        "case4": (72, 24, 24),
        "case5": (96, 35, 18),
        "case6": (287, 38, 19),
        "case7": (233, 178, 16),
    },
    "hw-comm": {
        "case1": (1172, 740, None),
        "case2": (1174, 740, 740),
        "case3": (1293, 734, 49),
        "case4": (1151, 743, 743),
        "case5": (1158, 743, 371),
        "case6": (1274, 743, 372),
        "case7": (1279, 743, 68),
    },
    "full-system": {
        "case1": (3879, 2729, None),
        "case2": (4240, 3125, 3125),
        "case3": (4710, 3413, 228),
        "case4": (4246, 3124, 3124),
        "case5": (4217, 3168, 1584),
        "case6": (4531, 3165, 1583),
        "case7": (4549, 3379, 307),
    },
}


#: The three HIL modes of the table, in paper (row) order.
TABLE4_MODES: Tuple[HILMode, ...] = (
    HILMode.HW_ONLY,
    HILMode.HW_COMM,
    HILMode.FULL_SYSTEM,
)


def table4_specs(
    cases: Optional[Sequence[str]] = None,
    num_workers: int = TABLE4_WORKERS,
    config: Optional[PicosConfig] = None,
    modes: Sequence[HILMode] = TABLE4_MODES,
) -> Dict[str, ExperimentSpec]:
    """Declare one sweep per HIL mode (synthetic cases x one backend).

    A custom :class:`PicosConfig` travels through the spec's ``extra``
    encoding, so even calibration studies hit the cache coherently.
    """
    cases = tuple(cases) if cases is not None else synthetic_case_names()
    specs: Dict[str, ExperimentSpec] = {}
    for mode in modes:
        specs[mode.value] = ExperimentSpec(
            name=f"table4-{mode.value}",
            workloads=tuple((case, None) for case in cases),
            backends=(mode.backend_name,),
            worker_counts=(num_workers,),
            extra=config_extra(config),
        )
    return specs


def run_table4(
    cases: Optional[Sequence[str]] = None,
    num_workers: int = TABLE4_WORKERS,
    config: Optional[PicosConfig] = None,
    modes: Sequence[HILMode] = TABLE4_MODES,
    options: Optional[RunnerOptions] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Measure L1st / thrTask / thrDep for every case and HIL mode.

    Returns ``{mode_value: {case: {"L1st": ..., "thrTask": ..., "thrDep":
    ..., "d1st": ..., "avg_deps": ...}}}``.
    """
    specs = table4_specs(cases, num_workers, config, modes)
    expanded: Dict[str, Tuple[SweepPoint, ...]] = {
        mode_value: tuple(spec.expand()) for mode_value, spec in specs.items()
    }
    all_points = [point for points in expanded.values() for point in points]
    job_results = run_points(all_points, options)

    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for mode_value, points in expanded.items():
        per_case: Dict[str, Dict[str, float]] = {}
        for point in points:
            job = job_results[point]
            avg_deps = float(job.metrics["avg_deps"])
            thr_task = float(job.metrics["task_throughput"])
            per_case[point.workload] = {
                "d1st": float(job.metrics["d1st"]),
                "avg_deps": avg_deps,
                "L1st": float(job.metrics["first_task_latency"]),
                "thrTask": thr_task,
                "thrDep": (thr_task / avg_deps) if avg_deps > 0 else 0.0,
            }
        results[mode_value] = per_case
    return results


def render_table4(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Render the measured values next to the paper's Table IV."""
    sections: List[str] = []
    for mode_value, per_case in results.items():
        rows: List[List[object]] = []
        for case, metrics in per_case.items():
            paper = PAPER_TABLE4.get(mode_value, {}).get(case)
            paper_text = (
                f"{paper[0]}/{paper[1]}/{paper[2] if paper[2] is not None else '-'}"
                if paper
                else "-"
            )
            rows.append(
                [
                    case,
                    f"{int(metrics['d1st'])}/{metrics['avg_deps']:.0f}",
                    round(metrics["L1st"]),
                    round(metrics["thrTask"]),
                    round(metrics["thrDep"]) if metrics["avg_deps"] > 0 else "-",
                    paper_text,
                ]
            )
        sections.append(
            render_table(
                headers=["case", "#d1st/avg#d", "L1st", "thrTask", "thrDep", "paper (L/thrT/thrD)"],
                rows=rows,
                title=f"Table IV -- {mode_value} mode ({TABLE4_WORKERS} workers)",
            )
        )
    return "\n\n".join(sections)


def relative_error(
    results: Dict[str, Dict[str, Dict[str, float]]],
    mode: str,
    case: str,
    metric: str,
) -> float:
    """Relative error of one measured cell against the paper's value."""
    metric_index = {"L1st": 0, "thrTask": 1, "thrDep": 2}[metric]
    paper_value = PAPER_TABLE4[mode][case][metric_index]
    if paper_value is None:
        return 0.0
    measured = results[mode][case][metric]
    return abs(measured - paper_value) / paper_value


def main() -> None:
    """Run and print Table IV (console entry point)."""
    print(render_table4(run_table4()))


if __name__ == "__main__":
    main()
