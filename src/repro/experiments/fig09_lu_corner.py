"""Figure 9: the Lu corner case and its two remedies.

Section V-A explains why the Pearson DM design loses to the 16-way design
on the original Lu: with no DM conflicts the dependence graph is built very
quickly, and when a diagonal (producer) task finishes Picos wakes its
consumers starting from the *last* one, postponing the panel task that
feeds the next diagonal (the critical path).  The paper shows two fixes:

* *MLu* (left plot): create the panel tasks in reverse order so the
  critical consumer is the last created and therefore the first woken;
* *LIFO* (right plot): keep the original creation order but use a LIFO
  ready queue in the Task Scheduler.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.report import render_series
from repro.apps.registry import build_benchmark
from repro.core.config import DMDesign, PicosConfig
from repro.core.scheduler import SchedulingPolicy
from repro.sim.hil import HILMode, HILSimulator

#: Block sizes of Figure 9.
FIG9_BLOCK_SIZES: Tuple[int, ...] = (64, 32)
#: Worker count used for the comparison.
FIG9_WORKERS = 12

#: The three experiment variants of the figure.
FIG9_VARIANTS: Tuple[str, ...] = ("lu-fifo", "mlu-fifo", "lu-lifo")


def run_fig09(
    block_sizes: Sequence[int] = FIG9_BLOCK_SIZES,
    num_workers: int = FIG9_WORKERS,
    problem_size: Optional[int] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Compute the Figure 9 speedups.

    Returns ``{variant: {block_size: {design: speedup}}}`` where ``variant``
    is one of ``lu-fifo`` (original), ``mlu-fifo`` (modified creation
    order) and ``lu-lifo`` (original order, LIFO ready queue).
    """
    results: Dict[str, Dict[int, Dict[str, float]]] = {
        variant: {} for variant in FIG9_VARIANTS
    }
    for block_size in block_sizes:
        lu = build_benchmark("lu", block_size, problem_size=problem_size)
        mlu = build_benchmark("mlu", block_size, problem_size=problem_size)
        plans = {
            "lu-fifo": (lu, SchedulingPolicy.FIFO),
            "mlu-fifo": (mlu, SchedulingPolicy.FIFO),
            "lu-lifo": (lu, SchedulingPolicy.LIFO),
        }
        for variant, (program, policy) in plans.items():
            per_design: Dict[str, float] = {}
            for design in DMDesign:
                simulation = HILSimulator(
                    program,
                    config=PicosConfig.paper_prototype(design),
                    mode=HILMode.HW_ONLY,
                    num_workers=num_workers,
                    policy=policy,
                ).run()
                per_design[design.display_name] = simulation.speedup
            results[variant][block_size] = per_design
    return results


def render_fig09(results: Dict[str, Dict[int, Dict[str, float]]]) -> str:
    """Render the Figure 9 comparison, one table per variant."""
    sections = []
    titles = {
        "lu-fifo": "original Lu, FIFO Task Scheduler",
        "mlu-fifo": "Modified Lu (reversed panel creation order), FIFO",
        "lu-lifo": "original Lu, LIFO Task Scheduler",
    }
    for variant, by_block in results.items():
        block_sizes = sorted(by_block, reverse=True)
        designs = list(next(iter(by_block.values())))
        series = {
            design: [by_block[bs][design] for bs in block_sizes] for design in designs
        }
        sections.append(
            render_series(
                title=f"Figure 9 -- {titles[variant]} ({FIG9_WORKERS} workers)",
                x_label="block size",
                x_values=block_sizes,
                series=series,
            )
        )
    return "\n\n".join(sections)


def pearson_recovers(results: Dict[str, Dict[int, Dict[str, float]]]) -> bool:
    """Whether the Pearson design becomes the best once either fix is applied.

    This is the headline qualitative claim of Figure 9, used by the test
    suite and recorded in EXPERIMENTS.md.
    """
    pearson = DMDesign.PEARSON8.display_name
    for variant in ("mlu-fifo", "lu-lifo"):
        for block_size, per_design in results[variant].items():
            best = max(per_design, key=lambda design: per_design[design])
            if best != pearson:
                return False
    return True


def main() -> None:
    """Run and print Figure 9 (console entry point)."""
    print(render_fig09(run_fig09()))


if __name__ == "__main__":
    main()
