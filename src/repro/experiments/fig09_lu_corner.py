"""Figure 9: the Lu corner case and its two remedies.

Section V-A explains why the Pearson DM design loses to the 16-way design
on the original Lu: with no DM conflicts the dependence graph is built very
quickly, and when a diagonal (producer) task finishes Picos wakes its
consumers starting from the *last* one, postponing the panel task that
feeds the next diagonal (the critical path).  The paper shows two fixes:

* *MLu* (left plot): create the panel tasks in reverse order so the
  critical consumer is the last created and therefore the first woken;
* *LIFO* (right plot): keep the original creation order but use a LIFO
  ready queue in the Task Scheduler.

Each variant is one declarative spec (the ``mlu`` workload and the LIFO
policy are first-class sweep axes); the three specs run through the shared
runner as a single batch of jobs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.report import render_series
from repro.core.config import DMDesign
from repro.core.scheduler import SchedulingPolicy
from repro.experiments.runner import (
    ExperimentSpec,
    RunnerOptions,
    SweepPoint,
    require_config_sensitive_backend,
    run_points,
)
from repro.sim.backend import BACKEND_HIL_HW

#: Block sizes of Figure 9.
FIG9_BLOCK_SIZES: Tuple[int, ...] = (64, 32)
#: Worker count used for the comparison.
FIG9_WORKERS = 12

#: The three experiment variants of the figure, each a (workload, policy)
#: pair: original Lu with FIFO, Modified Lu with FIFO, original Lu with LIFO.
FIG9_VARIANT_PLANS: Dict[str, Tuple[str, str]] = {
    "lu-fifo": ("lu", SchedulingPolicy.FIFO.value),
    "mlu-fifo": ("mlu", SchedulingPolicy.FIFO.value),
    "lu-lifo": ("lu", SchedulingPolicy.LIFO.value),
}

#: The three experiment variants of the figure.
FIG9_VARIANTS: Tuple[str, ...] = tuple(FIG9_VARIANT_PLANS)


def fig09_specs(
    block_sizes: Sequence[int] = FIG9_BLOCK_SIZES,
    num_workers: int = FIG9_WORKERS,
    problem_size: Optional[int] = None,
    backend: str = BACKEND_HIL_HW,
) -> Dict[str, ExperimentSpec]:
    """Declare one sweep per Figure 9 variant."""
    require_config_sensitive_backend("fig09", backend)
    specs: Dict[str, ExperimentSpec] = {}
    for variant, (workload, policy) in FIG9_VARIANT_PLANS.items():
        specs[variant] = ExperimentSpec(
            name=f"fig09-{variant}",
            workloads=tuple((workload, block_size) for block_size in block_sizes),
            backends=(backend,),
            dm_designs=tuple(design.value for design in DMDesign),
            worker_counts=(num_workers,),
            policies=(policy,),
            problem_size=problem_size,
        )
    return specs


def run_fig09(
    block_sizes: Sequence[int] = FIG9_BLOCK_SIZES,
    num_workers: int = FIG9_WORKERS,
    problem_size: Optional[int] = None,
    backend: str = BACKEND_HIL_HW,
    options: Optional[RunnerOptions] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Compute the Figure 9 speedups.

    Returns ``{variant: {block_size: {design: speedup}}}`` where ``variant``
    is one of ``lu-fifo`` (original), ``mlu-fifo`` (modified creation
    order) and ``lu-lifo`` (original order, LIFO ready queue).
    """
    specs = fig09_specs(block_sizes, num_workers, problem_size, backend)
    expanded: Dict[str, Tuple[SweepPoint, ...]] = {
        variant: tuple(spec.expand()) for variant, spec in specs.items()
    }
    all_points = [point for points in expanded.values() for point in points]
    job_results = run_points(all_points, options)

    results: Dict[str, Dict[int, Dict[str, float]]] = {
        variant: {} for variant in specs
    }
    for variant, points in expanded.items():
        for point in points:
            assert point.block_size is not None and point.dm_design is not None
            design = DMDesign(point.dm_design).display_name
            results[variant].setdefault(point.block_size, {})[design] = job_results[
                point
            ].speedup
    return results


def render_fig09(results: Dict[str, Dict[int, Dict[str, float]]]) -> str:
    """Render the Figure 9 comparison, one table per variant."""
    sections = []
    titles = {
        "lu-fifo": "original Lu, FIFO Task Scheduler",
        "mlu-fifo": "Modified Lu (reversed panel creation order), FIFO",
        "lu-lifo": "original Lu, LIFO Task Scheduler",
    }
    for variant, by_block in results.items():
        block_sizes = sorted(by_block, reverse=True)
        designs = list(next(iter(by_block.values())))
        series = {
            design: [by_block[bs][design] for bs in block_sizes] for design in designs
        }
        sections.append(
            render_series(
                title=f"Figure 9 -- {titles[variant]} ({FIG9_WORKERS} workers)",
                x_label="block size",
                x_values=block_sizes,
                series=series,
            )
        )
    return "\n\n".join(sections)


def pearson_recovers(results: Dict[str, Dict[int, Dict[str, float]]]) -> bool:
    """Whether the Pearson design becomes the best once either fix is applied.

    This is the headline qualitative claim of Figure 9, used by the test
    suite and recorded in EXPERIMENTS.md.
    """
    pearson = DMDesign.PEARSON8.display_name
    for variant in ("mlu-fifo", "lu-lifo"):
        for block_size, per_design in results[variant].items():
            best = max(per_design, key=lambda design: per_design[design])
            if best != pearson:
                return False
    return True


def main() -> None:
    """Run and print Figure 9 (console entry point)."""
    print(render_fig09(run_fig09()))


if __name__ == "__main__":
    main()
