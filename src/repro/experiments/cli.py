"""Command-line interface: ``picos-experiment <experiment>``.

Runs any table or figure of the paper from a terminal::

    picos-experiment table4
    picos-experiment fig8 --jobs 8
    picos-experiment fig11 --full --cache-dir /tmp/picos-cache
    picos-experiment all --quick

The ``--quick`` flag shrinks the problem sizes so every experiment finishes
in seconds (useful for smoke testing); ``--full`` selects the complete
paper matrix where a reduced default exists (Figure 11).

Simulations fan out over a process pool (``--jobs``, defaulting to every
CPU) and memoize their results in an on-disk cache (``--cache-dir``,
defaulting to ``$PICOS_CACHE_DIR`` or ``.picos-cache``), so re-rendering an
experiment is instant.  ``--backend`` re-targets an experiment's primary
sweep at any registered simulator backend; ``picos-experiment backends``
lists them.

``picos-experiment simulate`` drives one workload through the typed
request/session API instead of a paper figure::

    picos-experiment simulate --workload cholesky --block-size 32
    picos-experiment simulate --workload case3 --backend hil-hw \\
        --workers 4 --until-cycle 20000 --show-events 10

It opens a streaming session, optionally stops delivering events at a
cycle horizon (``--until-cycle``, the early-abort scenario) and prints the
lifecycle-event head plus the session statistics and final result summary.
Checkpoint/resume rides on the same command::

    picos-experiment simulate --workload cholesky --block-size 128 \\
        --checkpoint-at 60000 --checkpoint-to /tmp/chol.snap.json
    picos-experiment simulate --restore /tmp/chol.snap.json

The first invocation snapshots the run at the cycle-60000 boundary (then
finishes it normally); the second resumes from the snapshot document and
produces the bit-exact same result -- see ``docs/snapshots.md``.

``picos-experiment bench`` times the simulators themselves (wall-clock
seconds, engine events per second, peak RSS) and snapshots the numbers as
``BENCH_<date>.json`` at the repository root::

    picos-experiment bench                      # the full default matrix
    picos-experiment bench --quick              # the CI smoke matrix
    picos-experiment bench --compare BENCH_2026-07-01.json
    picos-experiment bench --quick --profile    # + per-cell cProfile report

``--compare`` additionally diffs the fresh run against an earlier
snapshot, flagging wall-time regressions cell by cell (cells present in
only one snapshot are reported as added/removed, never an error).
``--profile`` re-runs each cell under ``cProfile`` after the timed pass
and writes the top cumulative functions per cell to a
``<snapshot>.profile.txt`` sibling of the JSON snapshot.
``--service`` times the simulation *server* instead of the simulators
(requests per second and slice latency at several concurrency levels);
those cells are never part of the regression gate.

``picos-experiment serve`` starts the simulation service: an asyncio
server accepting typed simulation requests over a newline-delimited-JSON
TCP protocol (plus an HTTP adapter with ``/metrics``, ``/healthz`` and an
SSE ``/simulate``), with per-tenant admission control and an optional
shared on-disk result cache::

    picos-experiment serve --port 9178
    picos-experiment serve --port 0 --cache-dir /tmp/picos-cache \\
        --tenant-sessions teamA=4 --tenant-rate teamA=2e8

It prints one ``serving <proto> on <host>:<port>`` line per listener
(parseable, so ``--port 0`` works for tooling) and runs until SIGINT or
SIGTERM, draining running sessions before exiting.  See
``docs/service.md`` for the protocol and operations guide.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    fig01_granularity,
    fig08_dm_designs,
    fig09_lu_corner,
    fig10_nanos_overhead,
    fig11_scalability,
    table1_benchmarks,
    table2_dm_conflicts,
    table3_resources,
    table4_synthetic,
)
from repro.experiments.runner import RunnerOptions, default_cache_dir
from repro.sim.backend import describe_backends
from repro.sim.hil import HILMode

#: Problem size used by ``--quick`` for the dense / sparse kernels.
QUICK_PROBLEM_SIZE = 1024
#: Frame count used by ``--quick`` for H264dec.
QUICK_FRAMES = 2

#: Signature of every experiment entry: (quick, full, options, backend).
ExperimentRunner = Callable[[bool, bool, RunnerOptions, Optional[str]], str]


def _run_fig01(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    kwargs = {"backend": backend} if backend else {}
    return fig01_granularity.render_fig01(
        fig01_granularity.run_fig01(problem_size=problem, options=options, **kwargs)
    )


def _run_fig08(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    kwargs = {"backend": backend} if backend else {}
    return fig08_dm_designs.render_fig08(
        fig08_dm_designs.run_fig08(problem_size=problem, options=options, **kwargs)
    )


def _run_fig09(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    kwargs = {"backend": backend} if backend else {}
    return fig09_lu_corner.render_fig09(
        fig09_lu_corner.run_fig09(problem_size=problem, options=options, **kwargs)
    )


def _run_fig10(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    return fig10_nanos_overhead.render_fig10(
        fig10_nanos_overhead.run_fig10(options=options)
    )


def _run_fig11(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    matrix = fig11_scalability.FIG11_FULL_MATRIX if full else None
    if quick:
        matrix = {"heat": (64,), "cholesky": (64,), "lu": (32,), "sparselu": (64,)}
    simulators = fig11_scalability.FIG11_SIMULATORS
    if backend:
        simulators = tuple(
            label
            for label, name in fig11_scalability.FIG11_BACKENDS.items()
            if name == backend
        )
        if not simulators:
            comparands = ", ".join(fig11_scalability.FIG11_BACKENDS.values())
            raise SystemExit(
                f"fig11 compares {comparands}; --backend {backend!r} is not one of them"
            )
    return fig11_scalability.render_fig11(
        fig11_scalability.run_fig11(
            matrix=matrix, simulators=simulators, options=options
        )
    )


def _run_table1(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    return table1_benchmarks.render_table1(table1_benchmarks.run_table1(options=options))


def _run_table2(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    hil_backends = tuple(mode.backend_name for mode in HILMode)
    if backend and backend not in hil_backends:
        raise SystemExit(
            "table2 counts Dependence Memory conflicts, a Picos hardware "
            f"counter; --backend {backend!r} must be one of "
            + ", ".join(hil_backends)
        )
    kwargs = {"backend": backend} if backend else {}
    return table2_dm_conflicts.render_table2(
        table2_dm_conflicts.run_table2(problem_size=problem, options=options, **kwargs)
    )


def _run_table3(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    return table3_resources.render_table3(table3_resources.run_table3(options=options))


def _run_table4(
    quick: bool, full: bool, options: RunnerOptions, backend: Optional[str]
) -> str:
    modes = table4_synthetic.TABLE4_MODES
    if backend:
        modes = tuple(mode for mode in modes if mode.backend_name == backend)
        if not modes:
            comparands = ", ".join(m.backend_name for m in table4_synthetic.TABLE4_MODES)
            raise SystemExit(
                f"table4 compares {comparands}; --backend {backend!r} is not one of them"
            )
    return table4_synthetic.render_table4(
        table4_synthetic.run_table4(modes=modes, options=options)
    )


EXPERIMENTS: Dict[str, ExperimentRunner] = {
    "fig1": _run_fig01,
    "fig8": _run_fig08,
    "fig9": _run_fig09,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
}


def render_backends() -> str:
    """One line per registered simulator backend."""
    lines = ["registered simulator backends:"]
    for name, description in describe_backends().items():
        lines.append(f"  {name:<10} {description}")
    return "\n".join(lines)


def run_simulate(args: argparse.Namespace) -> str:
    """Drive one workload through a streaming session (see module docs)."""
    from repro.sim.request import SimulationRequest
    from repro.sim.session import open_session
    from repro.sim.snapshot import SnapshotError, load_snapshot, save_snapshot
    from repro.sim.snapshot import restore as restore_session

    if args.checkpoint_at is not None and args.checkpoint_to is None:
        raise SystemExit("--checkpoint-at requires --checkpoint-to PATH")
    faults = ()
    if args.fault:
        from repro.faults.scenario import FaultConfigurationError, parse_fault_spec

        try:
            faults = tuple(parse_fault_spec(spec) for spec in args.fault)
        except FaultConfigurationError as exc:
            raise SystemExit(f"--fault: {exc}") from None
    lines = []
    if args.restore is not None:
        if args.workload:
            raise SystemExit("--restore resumes a snapshot; drop --workload")
        if faults:
            raise SystemExit(
                "--fault cannot be combined with --restore: armed scenarios "
                "travel inside the snapshot document"
            )
        try:
            snapshot = load_snapshot(args.restore)
            session = restore_session(snapshot)
        except SnapshotError as exc:
            raise SystemExit(str(exc)) from None
        request = session.request
        lines.append(
            f"restored: kind={snapshot.kind!r} cycle={snapshot.cycle} "
            f"backend={request.backend!r} workers={request.num_workers} "
            f"from {args.restore}"
        )
    else:
        if not args.workload:
            raise SystemExit(
                "simulate requires --workload (a benchmark or caseN name) "
                "or --restore PATH"
            )
        backend = args.backend or "hil-full"
        request = SimulationRequest.for_workload(
            args.workload,
            block_size=args.block_size,
            problem_size=args.problem_size,
            backend=backend,
            num_workers=args.workers,
            faults=faults,
        )
        try:
            session = open_session(request)
        except ValueError as exc:
            # Unknown workloads and benchmarks missing --block-size surface
            # here (program construction); give a CLI error, not a traceback.
            raise SystemExit(str(exc)) from None
        lines.append(
            f"request: workload={args.workload!r} backend={backend!r} "
            f"workers={args.workers} cache_key={request.cache_key()}"
        )
        for spec, scenario in zip(args.fault or [], faults):
            lines.append(f"fault armed: {scenario.kind.value} ({spec})")
    shown: list = []
    if args.checkpoint_to is not None:
        # Snapshot at the requested cycle boundary (0 = before any work),
        # then let the run continue below: the snapshot is copy-on-capture,
        # so finishing this session does not disturb the saved document.
        at = args.checkpoint_at if args.checkpoint_at is not None else 0
        if at > 0:
            for event in session.advance(at).events:
                if len(shown) < args.show_events:
                    shown.append(event)
        snapshot = session.checkpoint()
        save_snapshot(snapshot, args.checkpoint_to)
        lines.append(
            f"checkpoint: kind={snapshot.kind!r} cycle={snapshot.cycle} "
            f"digest={snapshot.digest} -> {args.checkpoint_to}"
        )
    if args.show_events > 0 or args.until_cycle is not None:
        for event in session.events(until_cycle=args.until_cycle):
            if len(shown) < args.show_events:
                shown.append(event)
    stats = session.stats()
    if shown:
        lines.append(f"first {len(shown)} lifecycle events:")
        for event in shown:
            lines.append(f"  cycle {event.cycle:>10}  {event.kind:<9} task {event.task_id}")
    if args.until_cycle is not None:
        lines.append(
            f"stopped at cycle horizon {args.until_cycle}: "
            f"{stats.tasks_retired}/{stats.tasks_submitted} tasks retired, "
            f"{stats.events_delivered} events delivered"
        )
    result = session.result()
    lines.append(
        f"result: makespan={result.makespan} speedup={result.speedup:.2f} "
        f"tasks={result.num_tasks} simulator={result.simulator}"
    )
    if "faults_injected" in result.counters:
        lines.append(
            f"faults: injected={result.counters['faults_injected']} "
            f"recovered={result.counters['faults_recovered']}"
        )
    return "\n".join(lines)


def _parse_tenant_value(entries, what: str, convert):
    """Parse repeated ``tenant=value`` CLI options into a dict."""
    parsed = {}
    for entry in entries or []:
        tenant, sep, raw = entry.partition("=")
        if not sep or not tenant:
            raise SystemExit(f"--{what} expects TENANT=VALUE, got {entry!r}")
        try:
            parsed[tenant] = convert(raw)
        except ValueError:
            raise SystemExit(f"--{what}: invalid value {raw!r} for {tenant!r}") from None
    return parsed


def run_serve(args: argparse.Namespace) -> int:
    """Start the simulation service in the foreground (see module docs)."""
    import asyncio

    from repro.service import ServerConfig, TenantQuota, serve_until_interrupted

    sessions_by_tenant = _parse_tenant_value(
        args.tenant_sessions, "tenant-sessions", int
    )
    rate_by_tenant = _parse_tenant_value(args.tenant_rate, "tenant-rate", float)
    tenant_quotas = {
        tenant: TenantQuota(
            max_sessions=sessions_by_tenant.get(tenant),
            cycles_per_second=rate_by_tenant.get(tenant),
        )
        for tenant in set(sessions_by_tenant) | set(rate_by_tenant)
    }
    config = ServerConfig(
        host=args.host,
        port=args.port,
        http_port=None if args.no_http else args.http_port,
        # Serving caches only on request: a server writing into the default
        # experiment cache directory unasked would be a surprise.
        cache_dir=args.cache_dir,
        max_sessions=args.max_sessions,
        default_quota=TenantQuota(
            max_sessions=args.default_tenant_sessions,
            cycles_per_second=args.default_tenant_rate,
        ),
        tenant_quotas=tenant_quotas,
        idle_timeout=args.idle_timeout,
    )
    if args.slice_cycles is not None:
        if args.slice_cycles < 1:
            raise SystemExit("--slice-cycles must be at least 1")
        config.slice_cycles = args.slice_cycles
    try:
        asyncio.run(serve_until_interrupted(config))
    except KeyboardInterrupt:
        pass
    return 0


def run_bench_command(args: argparse.Namespace) -> int:
    """Time the simulators and snapshot/compare the numbers (see module docs)."""
    import dataclasses as _dataclasses

    from repro.bench import (
        DEFAULT_REGRESSION_THRESHOLD,
        compare_documents,
        default_specs,
        gate_specs,
        load_bench_document,
        profile_specs,
        render_comparison,
        render_results,
        run_bench,
        write_bench_file,
        write_profile_file,
    )

    if args.service:
        from repro.bench import run_service_bench, service_bench_file_name

        results = run_service_bench(progress=print)
        print()
        print(render_results(results))
        if args.output:
            out_path = write_bench_file(
                results,
                directory=os.path.dirname(args.output) or ".",
                file_name=os.path.basename(args.output),
            )
        else:
            # BENCH_service_<date>.json: outside the regression gate's
            # BENCH_2*.json baseline glob -- service cells never gate.
            out_path = write_bench_file(results, file_name=service_bench_file_name())
        print(f"\nwrote {out_path}")
        return 0
    if args.compare is None and (
        args.fail_on_regression or args.fail_threshold is not None
    ):
        # A gate without a baseline would silently always pass.
        raise SystemExit(
            "--fail-on-regression/--fail-threshold require --compare "
            "(there is no baseline to regress against otherwise)"
        )
    # Load the baseline before writing anything: the default output name is
    # date-stamped, so a same-day --compare target would otherwise be
    # overwritten before it was read.
    baseline = load_bench_document(args.compare) if args.compare else None
    specs = gate_specs() if args.gate else default_specs(quick=args.quick)
    if args.backend:
        specs = [
            _dataclasses.replace(spec, backends=(args.backend,)) for spec in specs
        ]
    if args.repeats > 1:
        specs = [_dataclasses.replace(spec, repeats=args.repeats) for spec in specs]
    results = run_bench(specs, progress=print)
    print()
    print(render_results(results))
    if args.output:
        out_path = write_bench_file(
            results,
            directory=os.path.dirname(args.output) or ".",
            file_name=os.path.basename(args.output),
        )
    else:
        out_path = write_bench_file(results)
    print(f"\nwrote {out_path}")
    if args.profile:
        # Separate profiled pass: the timings above stay honest, and the
        # report explaining them lands next to the snapshot.
        reports = profile_specs(specs, progress=print)
        profile_path = write_profile_file(reports, out_path)
        print(f"wrote {profile_path}")
    if baseline is not None:
        threshold = (
            args.fail_threshold
            if args.fail_threshold is not None
            else DEFAULT_REGRESSION_THRESHOLD
        )
        comparisons, only_old, only_new = compare_documents(
            baseline, load_bench_document(out_path), threshold=threshold
        )
        print(f"\ncomparison against {args.compare}:")
        print(render_comparison(comparisons, only_old, only_new))
        if args.fail_on_regression and not comparisons:
            # A gate that matched nothing gates nothing: treat the silent
            # no-op (wrong baseline file, drifted matrices) as a failure
            # so CI cannot stay green while comparing thin air.
            print(
                f"\nFAIL: no cell of this run matches {args.compare}; "
                "the regression gate has nothing to compare",
                file=sys.stderr,
            )
            return 1
        regressions = [comp for comp in comparisons if comp.regressed]
        if args.fail_on_regression and regressions:
            print(
                f"\nFAIL: {len(regressions)} cell(s) regressed beyond "
                f"{threshold:.0%} against {args.compare}",
                file=sys.stderr,
            )
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="picos-experiment",
        description="Reproduce the tables and figures of the Picos ISPASS 2016 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "backends", "simulate", "bench", "serve", "lint"],
        help="which table/figure to reproduce ('all' for every one, "
        "'backends' to list the simulator backends, 'simulate' to drive "
        "one workload through the streaming session API, 'bench' to time "
        "the simulators and write a BENCH_<date>.json snapshot, 'serve' to "
        "start the simulation service, 'lint' to run the repro-lint "
        "invariant checker over the package)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced problem sizes so every experiment finishes in seconds",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the complete paper matrix where a reduced default exists",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="simulation jobs to run in parallel (default: all CPUs)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="re-target the experiment's sweep at one simulator backend "
        "(hil-full, hil-hw, hil-comm, nanos, perfect, or a plug-in); "
        "ignored by the purely analytic experiments (fig10, table1, table3)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="directory of the on-disk result cache "
        "(default: $PICOS_CACHE_DIR or .picos-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    simulate = parser.add_argument_group(
        "simulate", "options for the 'simulate' session-driven command"
    )
    simulate.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help="benchmark (cholesky, lu, ...) or synthetic case (case1..case7)",
    )
    simulate.add_argument(
        "--block-size",
        type=int,
        default=None,
        metavar="N",
        help="block size of the benchmark (unused for synthetic cases)",
    )
    simulate.add_argument(
        "--problem-size",
        type=int,
        default=None,
        metavar="N",
        help="problem-size override (default: the paper's size)",
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=12,
        metavar="N",
        help="worker cores to simulate (default: 12, as in the paper)",
    )
    simulate.add_argument(
        "--until-cycle",
        type=int,
        default=None,
        metavar="CYCLE",
        help="stop delivering lifecycle events at this cycle (early abort)",
    )
    simulate.add_argument(
        "--show-events",
        type=int,
        default=0,
        metavar="K",
        help="print the first K lifecycle events of the run",
    )
    simulate.add_argument(
        "--checkpoint-at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="snapshot the run at this cycle boundary (0 = before any "
        "work); the run then continues to completion as usual",
    )
    simulate.add_argument(
        "--checkpoint-to",
        default=None,
        metavar="PATH",
        help="write the snapshot document to PATH (required with "
        "--checkpoint-at; without it, snapshots before any work)",
    )
    simulate.add_argument(
        "--restore",
        default=None,
        metavar="PATH",
        help="resume a run from a snapshot document instead of opening a "
        "fresh workload (mutually exclusive with --workload)",
    )
    simulate.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="arm one fault scenario (repeatable); SPEC is "
        "KIND@TRIGGER[:OPT=V...], e.g. "
        "'kill-worker@cycle=5000:worker=3' or "
        "'drop-event@p=0.01:class=ready:seed=7' (see docs/faults.md)",
    )
    bench = parser.add_argument_group(
        "bench", "options for the 'bench' performance-snapshot command"
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="where to write the benchmark snapshot "
        "(default: ./BENCH_<today>.json)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="diff the fresh run against an earlier BENCH_*.json snapshot",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="after timing, re-run each cell under cProfile and write the "
        "top-25 cumulative functions per cell to <snapshot>.profile.txt "
        "next to the BENCH_<date>.json snapshot",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="timing repeats per cell; the best wall time is kept (default: 1)",
    )
    bench.add_argument(
        "--gate",
        action="store_true",
        help="time the regression-gate matrix instead of the default/quick "
        "one: few large cells where a 15%% wall-time change is signal, all "
        "present in every committed full snapshot (overrides --quick)",
    )
    bench.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="relative wall-time growth that counts as a regression when "
        "comparing (default: 0.25; the CI gate uses 0.15)",
    )
    bench.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when the --compare diff contains a regression "
        "(turns the bench job into a CI gate instead of an artifact upload)",
    )
    bench.add_argument(
        "--service",
        action="store_true",
        help="time the simulation service instead of the simulators "
        "(requests/s and slice latency at 1/16/64 concurrent sessions; "
        "writes BENCH_service_<date>.json, which the regression gate "
        "never reads)",
    )
    serve = parser.add_argument_group(
        "serve", "options for the 'serve' simulation-service command"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="address to bind the listeners to (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=9178,
        metavar="N",
        help="TCP (NDJSON) port; 0 picks an ephemeral port (default: 9178)",
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=0,
        metavar="N",
        help="HTTP adapter port (/metrics, /healthz, SSE /simulate); "
        "0 picks an ephemeral port (default: 0)",
    )
    serve.add_argument(
        "--no-http",
        action="store_true",
        help="disable the HTTP adapter entirely",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="server-wide concurrent-session cap (default: unlimited)",
    )
    serve.add_argument(
        "--default-tenant-sessions",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant concurrent-session quota applied to tenants "
        "without an explicit --tenant-sessions entry (default: unlimited)",
    )
    serve.add_argument(
        "--default-tenant-rate",
        type=float,
        default=None,
        metavar="CYCLES",
        help="per-tenant simulated-cycles-per-second throttle applied to "
        "tenants without an explicit --tenant-rate entry (default: none)",
    )
    serve.add_argument(
        "--tenant-sessions",
        action="append",
        metavar="TENANT=N",
        help="concurrent-session quota of one tenant (repeatable)",
    )
    serve.add_argument(
        "--tenant-rate",
        action="append",
        metavar="TENANT=CYCLES",
        help="cycles-per-second throttle of one tenant (repeatable)",
    )
    serve.add_argument(
        "--slice-cycles",
        type=int,
        default=None,
        metavar="N",
        help="default cooperative-slice cycle budget "
        "(requests may override via their stream options)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="evict sessions that were accepted but never run after this "
        "long idle (default: 300)",
    )
    lint = parser.add_argument_group(
        "lint", "options for the 'lint' invariant-checker command"
    )
    lint.add_argument(
        "--lint-path",
        action="append",
        metavar="PATH",
        help="file or directory to lint (repeatable; default: the installed "
        "repro package)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered lint rules and exit",
    )
    return parser


def runner_options_from_args(args: argparse.Namespace) -> RunnerOptions:
    """Translate parsed CLI arguments into runner options."""
    jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
    if jobs < 1:
        raise SystemExit("--jobs must be at least 1")
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = default_cache_dir()
    return RunnerOptions(jobs=jobs, cache_dir=cache_dir)


def main(argv: Optional[list] = None) -> int:
    """Console-script entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "backends":
        print(render_backends())
        return 0
    if args.experiment == "lint":
        from repro.lint.cli import main as lint_main

        lint_argv = list(args.lint_path or [])
        if args.list_rules:
            lint_argv.append("--list-rules")
        return lint_main(lint_argv)
    if args.experiment == "simulate":
        if args.backend is not None and args.backend not in describe_backends():
            print(f"unknown backend {args.backend!r}", file=sys.stderr)
            print(render_backends(), file=sys.stderr)
            return 2
        print(run_simulate(args))
        return 0
    if args.experiment == "serve":
        return run_serve(args)
    if args.experiment == "bench":
        if args.backend is not None and args.backend not in describe_backends():
            print(f"unknown backend {args.backend!r}", file=sys.stderr)
            print(render_backends(), file=sys.stderr)
            return 2
        if args.repeats < 1:
            raise SystemExit("--repeats must be at least 1")
        return run_bench_command(args)
    if args.backend is not None and args.backend not in describe_backends():
        print(f"unknown backend {args.backend!r}", file=sys.stderr)
        print(render_backends(), file=sys.stderr)
        return 2
    options = runner_options_from_args(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        try:
            output = EXPERIMENTS[name](args.quick, args.full, options, args.backend)
        except (SystemExit, ValueError) as exc:
            # An experiment that cannot honour --backend aborts with a
            # message (SystemExit from a wrapper, ValueError from the
            # library specs); under "all" that one is skipped instead of
            # killing the remaining experiments.
            if args.experiment != "all":
                raise SystemExit(str(exc)) from None
            print(f"===== {name} (skipped) =====")
            print(exc)
            print()
            continue
        elapsed = time.time() - start
        print(f"===== {name} ({elapsed:.1f}s) =====")
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
