"""Command-line interface: ``picos-experiment <experiment>``.

Runs any table or figure of the paper from a terminal::

    picos-experiment table4
    picos-experiment fig8
    picos-experiment fig11 --full
    picos-experiment all --quick

The ``--quick`` flag shrinks the problem sizes so every experiment finishes
in seconds (useful for smoke testing); ``--full`` selects the complete
paper matrix where a reduced default exists (Figure 11).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    fig01_granularity,
    fig08_dm_designs,
    fig09_lu_corner,
    fig10_nanos_overhead,
    fig11_scalability,
    table1_benchmarks,
    table2_dm_conflicts,
    table3_resources,
    table4_synthetic,
)

#: Problem size used by ``--quick`` for the dense / sparse kernels.
QUICK_PROBLEM_SIZE = 1024
#: Frame count used by ``--quick`` for H264dec.
QUICK_FRAMES = 2


def _run_fig01(quick: bool, full: bool) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    return fig01_granularity.render_fig01(
        fig01_granularity.run_fig01(problem_size=problem)
    )


def _run_fig08(quick: bool, full: bool) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    return fig08_dm_designs.render_fig08(
        fig08_dm_designs.run_fig08(problem_size=problem)
    )


def _run_fig09(quick: bool, full: bool) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    return fig09_lu_corner.render_fig09(
        fig09_lu_corner.run_fig09(problem_size=problem)
    )


def _run_fig10(quick: bool, full: bool) -> str:
    return fig10_nanos_overhead.render_fig10(fig10_nanos_overhead.run_fig10())


def _run_fig11(quick: bool, full: bool) -> str:
    matrix = fig11_scalability.FIG11_FULL_MATRIX if full else None
    if quick:
        matrix = {"heat": (64,), "cholesky": (64,), "lu": (32,), "sparselu": (64,)}
    return fig11_scalability.render_fig11(
        fig11_scalability.run_fig11(matrix=matrix)
    )


def _run_table1(quick: bool, full: bool) -> str:
    return table1_benchmarks.render_table1(table1_benchmarks.run_table1())


def _run_table2(quick: bool, full: bool) -> str:
    problem = QUICK_PROBLEM_SIZE if quick else None
    return table2_dm_conflicts.render_table2(
        table2_dm_conflicts.run_table2(problem_size=problem)
    )


def _run_table3(quick: bool, full: bool) -> str:
    return table3_resources.render_table3(table3_resources.run_table3())


def _run_table4(quick: bool, full: bool) -> str:
    return table4_synthetic.render_table4(table4_synthetic.run_table4())


EXPERIMENTS: Dict[str, Callable[[bool, bool], str]] = {
    "fig1": _run_fig01,
    "fig8": _run_fig08,
    "fig9": _run_fig09,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="picos-experiment",
        description="Reproduce the tables and figures of the Picos ISPASS 2016 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to reproduce (or 'all')",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced problem sizes so every experiment finishes in seconds",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the complete paper matrix where a reduced default exists",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """Console-script entry point."""
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        output = EXPERIMENTS[name](args.quick, args.full)
        elapsed = time.time() - start
        print(f"===== {name} ({elapsed:.1f}s) =====")
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
