"""Figure 1: speedup vs task granularity with the software-only runtime.

The motivating figure of the paper: four OmpSs applications run with the
Nanos++ software-only runtime on 12 cores, with a constant problem size and
decreasing block sizes.  Speedup first grows (more parallelism becomes
available) and then collapses once the per-task runtime overhead rivals the
task duration.

The sweep is declared as an :class:`~repro.experiments.runner.ExperimentSpec`
and executed through the shared runner, so it parallelises and caches like
every other figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_series
from repro.experiments.runner import (
    ExperimentSpec,
    RunnerOptions,
    overhead_extra,
    run_sweep,
)
from repro.runtime.overhead import NanosOverheadModel
from repro.sim.backend import BACKEND_NANOS

#: Benchmarks and block-size sweeps of the figure.  The sweep extends one
#: step below the Table I range for the coarse-grained kernels so the
#: turn-over point is visible for every application, as it is in the paper.
FIG1_SWEEPS: Dict[str, Sequence[int]] = {
    "heat": (256, 128, 64, 32),
    "lu": (256, 128, 64, 32, 16, 8),
    "sparselu": (256, 128, 64, 32, 16),
    "cholesky": (256, 128, 64, 32),
}

#: Worker count of the figure (the shared-memory machine has 12 cores).
FIG1_WORKERS = 12


def fig01_spec(
    num_workers: int = FIG1_WORKERS,
    problem_size: Optional[int] = None,
    sweeps: Optional[Dict[str, Sequence[int]]] = None,
    overhead: Optional[NanosOverheadModel] = None,
    backend: str = BACKEND_NANOS,
) -> ExperimentSpec:
    """Declare the Figure 1 sweep (benchmarks x block sizes, one backend)."""
    sweeps = sweeps if sweeps is not None else FIG1_SWEEPS
    workloads = tuple(
        (benchmark, block_size)
        for benchmark, block_sizes in sweeps.items()
        for block_size in block_sizes
    )
    return ExperimentSpec(
        name="fig01",
        workloads=workloads,
        backends=(backend,),
        worker_counts=(num_workers,),
        problem_size=problem_size,
        extra=overhead_extra(overhead),
    )


def run_fig01(
    num_workers: int = FIG1_WORKERS,
    problem_size: Optional[int] = None,
    sweeps: Optional[Dict[str, Sequence[int]]] = None,
    overhead: Optional[NanosOverheadModel] = None,
    backend: str = BACKEND_NANOS,
    options: Optional[RunnerOptions] = None,
) -> Dict[str, Dict[int, float]]:
    """Compute the Figure 1 curves.

    Returns ``{benchmark: {block_size: speedup}}`` for the software-only
    runtime with ``num_workers`` threads (or for ``backend`` when
    overridden).
    """
    spec = fig01_spec(num_workers, problem_size, sweeps, overhead, backend)
    results: Dict[str, Dict[int, float]] = {}
    for point, job in run_sweep(spec, options).items():
        assert point.block_size is not None
        results.setdefault(point.workload, {})[point.block_size] = job.speedup
    return results


def render_fig01(results: Dict[str, Dict[int, float]]) -> str:
    """Render the Figure 1 curves as one table per benchmark."""
    sections: List[str] = []
    for benchmark, curve in results.items():
        block_sizes = sorted(curve, reverse=True)
        sections.append(
            render_series(
                title=f"Figure 1 -- {benchmark}: Nanos++ speedup vs block size "
                f"({FIG1_WORKERS} cores)",
                x_label="block size",
                x_values=block_sizes,
                series={"speedup": [curve[bs] for bs in block_sizes]},
            )
        )
    return "\n\n".join(sections)


def peak_block_size(curve: Dict[int, float]) -> int:
    """Block size at which the software-only speedup peaks."""
    return max(curve, key=lambda block_size: curve[block_size])


def main() -> None:
    """Run and print Figure 1 (console entry point)."""
    print(render_fig01(run_fig01()))


if __name__ == "__main__":
    main()
