"""Figure 1: speedup vs task granularity with the software-only runtime.

The motivating figure of the paper: four OmpSs applications run with the
Nanos++ software-only runtime on 12 cores, with a constant problem size and
decreasing block sizes.  Speedup first grows (more parallelism becomes
available) and then collapses once the per-task runtime overhead rivals the
task duration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_series
from repro.apps.registry import build_benchmark
from repro.runtime.nanos import NanosRuntimeSimulator
from repro.runtime.overhead import NanosOverheadModel

#: Benchmarks and block-size sweeps of the figure.  The sweep extends one
#: step below the Table I range for the coarse-grained kernels so the
#: turn-over point is visible for every application, as it is in the paper.
FIG1_SWEEPS: Dict[str, Sequence[int]] = {
    "heat": (256, 128, 64, 32),
    "lu": (256, 128, 64, 32, 16, 8),
    "sparselu": (256, 128, 64, 32, 16),
    "cholesky": (256, 128, 64, 32),
}

#: Worker count of the figure (the shared-memory machine has 12 cores).
FIG1_WORKERS = 12


def run_fig01(
    num_workers: int = FIG1_WORKERS,
    problem_size: Optional[int] = None,
    sweeps: Optional[Dict[str, Sequence[int]]] = None,
    overhead: Optional[NanosOverheadModel] = None,
) -> Dict[str, Dict[int, float]]:
    """Compute the Figure 1 curves.

    Returns ``{benchmark: {block_size: speedup}}`` for the software-only
    runtime with ``num_workers`` threads.
    """
    sweeps = sweeps if sweeps is not None else FIG1_SWEEPS
    results: Dict[str, Dict[int, float]] = {}
    for benchmark, block_sizes in sweeps.items():
        curve: Dict[int, float] = {}
        for block_size in block_sizes:
            program = build_benchmark(benchmark, block_size, problem_size=problem_size)
            simulation = NanosRuntimeSimulator(
                program, num_threads=num_workers, overhead=overhead
            ).run()
            curve[block_size] = simulation.speedup
        results[benchmark] = curve
    return results


def render_fig01(results: Dict[str, Dict[int, float]]) -> str:
    """Render the Figure 1 curves as one table per benchmark."""
    sections: List[str] = []
    for benchmark, curve in results.items():
        block_sizes = sorted(curve, reverse=True)
        sections.append(
            render_series(
                title=f"Figure 1 -- {benchmark}: Nanos++ speedup vs block size "
                f"({FIG1_WORKERS} cores)",
                x_label="block size",
                x_values=block_sizes,
                series={"speedup": [curve[bs] for bs in block_sizes]},
            )
        )
    return "\n\n".join(sections)


def peak_block_size(curve: Dict[int, float]) -> int:
    """Block size at which the software-only speedup peaks."""
    return max(curve, key=lambda block_size: curve[block_size])


def main() -> None:
    """Run and print Figure 1 (console entry point)."""
    print(render_fig01(run_fig01()))


if __name__ == "__main__":
    main()
