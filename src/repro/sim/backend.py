"""Simulator-backend abstraction: one protocol, one registry, five backends.

The paper compares a single workload across several dependence-management
implementations: the Picos hardware prototype in its three HIL modes, the
Nanos++ software-only runtime and the Perfect (roofline) scheduler.  This
module gives those implementations one common face, so every experiment
driver -- and every future runtime model -- talks to them through a single
string-keyed dispatch point instead of hard-coding simulator classes.

A backend is any object satisfying :class:`SimulatorBackend`: it has a
``name``, a ``description``, a ``simulate(program, ...)`` method returning
a :class:`~repro.sim.results.SimulationResult`, and (optionally) an
``accepts`` set declaring which request parameters it understands and an
``open_session`` method producing a streaming
:class:`~repro.sim.session.SimulationSession`.  Backends that predate the
typed-request API work unchanged: their accepted parameters are inferred
from the ``simulate`` signature (:func:`backend_accepted_parameters`) and
:func:`open_session` wraps their batch ``simulate`` in the default session
adapter.  The built-in simulators register themselves when their module is
imported:

========== ==========================================================
``hil-full``  Picos HIL platform, Full-system mode (Table IV row 3)
``hil-comm``  Picos HIL platform, HW+communication mode (row 2)
``hil-hw``    Picos HIL platform, HW-only mode (row 1)
``nanos``     Nanos++ software-only runtime (the paper's baseline)
``perfect``   Perfect scheduler (zero-overhead roofline)
========== ==========================================================

New backends plug in with :func:`register_backend`::

    class MyRuntime:
        name = "my-runtime"
        description = "an experimental scheduler"
        accepts = frozenset({"policy"})          # declared parameter set
        def simulate(self, program, *, num_workers=12, policy=..., **kwargs):
            ...
    register_backend(MyRuntime())
    simulate_request(SimulationRequest.for_program(program, backend="my-runtime"))
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Protocol, Tuple, runtime_checkable

from repro.core.config import PicosConfig
from repro.core.scheduler import SchedulingPolicy
from repro.runtime.task import TaskProgram
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.request import SimulationRequest
    from repro.sim.session import SimulationSession

#: The request parameters a backend may declare in its ``accepts`` set
#: (``program`` and ``num_workers`` are universal and always passed).
REQUEST_PARAMETERS: FrozenSet[str] = frozenset(
    {"config", "dm_design", "policy", "overhead", "seed", "faults"}
)


@runtime_checkable
class SimulatorBackend(Protocol):
    """What every simulator backend must provide.

    ``simulate`` receives the program plus the keyword parameters the
    backend *declares* (via an ``accepts`` frozenset of names drawn from
    :data:`REQUEST_PARAMETERS`); the typed request layer validates every
    :class:`~repro.sim.request.SimulationRequest` against that set, so a
    backend is never handed a knob it did not ask for and callers get an
    :class:`~repro.sim.request.InvalidRequestError` instead of silent
    swallowing.  Legacy backends without ``accepts`` keep working: their
    parameter set is inferred from the ``simulate`` signature.
    """

    #: Registry key and display identifier of the backend.
    name: str
    #: One-line human description (shown by ``picos-experiment`` helpers).
    description: str

    def simulate(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        config: Optional[PicosConfig] = None,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        **kwargs: object,
    ) -> SimulationResult:
        """Run ``program`` on ``num_workers`` workers and return the result."""
        ...


def backend_accepted_parameters(backend: SimulatorBackend) -> FrozenSet[str]:
    """The request parameters ``backend`` understands.

    A backend declares them explicitly through an ``accepts`` attribute
    (the built-ins all do).  For legacy backends the set is inferred from
    the ``simulate`` signature: named keyword parameters are accepted, and
    a bare ``**kwargs`` catch-all -- the historical protocol -- accepts
    everything, preserving old plug-in behaviour.
    """
    declared = getattr(backend, "accepts", None)
    if declared is not None:
        return frozenset(declared)
    try:
        parameters = inspect.signature(backend.simulate).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/C callables
        return REQUEST_PARAMETERS
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return REQUEST_PARAMETERS
    return frozenset(REQUEST_PARAMETERS & set(parameters))


def open_session(request: "SimulationRequest") -> "SimulationSession":
    """Open a streaming session for ``request`` (see :mod:`repro.sim.session`).

    Dispatches to the backend's native ``open_session`` when it has one and
    falls back to the default batch-adapter session otherwise.  Re-exported
    here so the whole backend surface -- registry, batch dispatch, session
    opening -- lives behind one import.
    """
    from repro.sim.session import open_session as _open_session

    return _open_session(request)


class UnknownBackendError(KeyError):
    """Raised when a backend name is not present in the registry."""

    def __init__(self, name: str, available: Tuple[str, ...]) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        names = ", ".join(self.available) or "<none>"
        return f"unknown simulator backend {self.name!r}; available: {names}"


#: Canonical names of the built-in backends (the five comparison points of
#: the paper), exported so callers never spell them by hand.
BACKEND_HIL_FULL = "hil-full"
BACKEND_HIL_HW = "hil-hw"
BACKEND_HIL_COMM = "hil-comm"
BACKEND_NANOS = "nanos"
BACKEND_PERFECT = "perfect"

BUILTIN_BACKENDS: Tuple[str, ...] = (
    BACKEND_HIL_FULL,
    BACKEND_HIL_HW,
    BACKEND_HIL_COMM,
    BACKEND_NANOS,
    BACKEND_PERFECT,
)

_REGISTRY: Dict[str, SimulatorBackend] = {}
_BUILTINS_LOADED = False


def _load_builtin_backends() -> None:
    """Import the simulator modules so they self-register.

    The simulators import this module (for :func:`register_backend`), so the
    registry must not import them at module level; they are pulled in lazily
    the first time a lookup happens.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.runtime.nanos  # noqa: F401  (registers "nanos")
    import repro.runtime.perfect  # noqa: F401  (registers "perfect")
    import repro.sim.hil  # noqa: F401  (registers the three HIL modes)


def register_backend(backend: SimulatorBackend, *, replace: bool = False) -> SimulatorBackend:
    """Add ``backend`` to the registry under ``backend.name``.

    Registering a name twice is an error unless ``replace=True``; this
    protects against two plug-ins silently shadowing each other.  The
    backend is returned so the call can be used as a decorator-like
    one-liner on an instance.
    """
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError("a backend must expose a non-empty string 'name'")
    if not callable(getattr(backend, "simulate", None)):
        raise ValueError(f"backend {name!r} must expose a callable 'simulate'")
    if not replace and name in _REGISTRY:
        raise ValueError(f"a backend named {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> SimulatorBackend:
    """Look up a backend by name, loading the built-ins on first use."""
    _load_builtin_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, backend_names()) from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted alphabetically."""
    _load_builtin_backends()
    return tuple(sorted(_REGISTRY))


def describe_backends() -> Dict[str, str]:
    """Mapping of backend name to its one-line description."""
    _load_builtin_backends()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}
