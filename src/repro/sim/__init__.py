"""Hardware-In-the-Loop execution platform substrate.

This subpackage models the embedded system of Section IV-B: the ARM
processing system that creates tasks and exchanges AXI-stream messages with
the Picos accelerator in the programmable logic, the worker cores that
execute tasks, and the three operational modes the paper evaluates
(HW-only, HW+communication and Full-system).

The central entry point is :func:`repro.sim.driver.simulate_program`, which
runs a :class:`~repro.runtime.task.TaskProgram` through a Picos
configuration on a given number of workers and returns a
:class:`~repro.sim.results.SimulationResult`.
"""

from repro.sim.backend import (
    BUILTIN_BACKENDS,
    SimulatorBackend,
    UnknownBackendError,
    backend_names,
    describe_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.sim.engine import EventQueue
from repro.sim.hil import HILMode, HILSimulator
from repro.sim.results import SimulationResult, TaskTimeline
from repro.sim.driver import simulate_program, simulate_worker_sweep
from repro.sim.worker import WorkerPool

__all__ = [
    "BUILTIN_BACKENDS",
    "EventQueue",
    "HILMode",
    "HILSimulator",
    "SimulationResult",
    "SimulatorBackend",
    "TaskTimeline",
    "UnknownBackendError",
    "backend_names",
    "describe_backends",
    "get_backend",
    "register_backend",
    "simulate_program",
    "simulate_worker_sweep",
    "unregister_backend",
    "WorkerPool",
]
