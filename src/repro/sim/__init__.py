"""Hardware-In-the-Loop execution platform substrate.

This subpackage models the embedded system of Section IV-B: the ARM
processing system that creates tasks and exchanges AXI-stream messages with
the Picos accelerator in the programmable logic, the worker cores that
execute tasks, and the three operational modes the paper evaluates
(HW-only, HW+communication and Full-system).

The central entry points are request based: describe one run as a
:class:`~repro.sim.request.SimulationRequest`, then either execute it in
one shot with :func:`~repro.sim.driver.simulate_request` or open a
streaming :class:`~repro.sim.session.SimulationSession` with
:func:`~repro.sim.session.open_session` for incremental submission and a
typed, cycle-stamped lifecycle-event stream.  The historical
:func:`~repro.sim.driver.simulate_program` keyword interface survives as a
deprecating shim over the same path.
"""

from repro.sim.backend import (
    BUILTIN_BACKENDS,
    REQUEST_PARAMETERS,
    SimulatorBackend,
    UnknownBackendError,
    backend_accepted_parameters,
    backend_names,
    describe_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.sim.engine import EventQueue
from repro.sim.hil import HILMode, HILSimulator
from repro.sim.request import (
    InlineProgramRef,
    InvalidRequestError,
    SimulationRequest,
    StreamOptions,
    WorkloadRef,
)
from repro.sim.results import SimulationResult, TaskTimeline
from repro.sim.session import (
    FaultInjected,
    FaultRecovered,
    SessionEvent,
    SessionSlice,
    SessionStats,
    SimulationSession,
    TaskReady,
    TaskRetired,
    TaskSubmitted,
    lifecycle_events,
    open_session,
)
from repro.sim.driver import (
    simulate_program,
    simulate_request,
    simulate_worker_sweep,
)
from repro.sim.worker import WorkerPool

__all__ = [
    "BUILTIN_BACKENDS",
    "EventQueue",
    "FaultInjected",
    "FaultRecovered",
    "HILMode",
    "HILSimulator",
    "InlineProgramRef",
    "InvalidRequestError",
    "REQUEST_PARAMETERS",
    "SessionEvent",
    "SessionSlice",
    "SessionStats",
    "SimulationRequest",
    "SimulationResult",
    "SimulationSession",
    "SimulatorBackend",
    "StreamOptions",
    "TaskReady",
    "TaskRetired",
    "TaskSubmitted",
    "TaskTimeline",
    "UnknownBackendError",
    "WorkloadRef",
    "backend_accepted_parameters",
    "backend_names",
    "describe_backends",
    "get_backend",
    "lifecycle_events",
    "open_session",
    "register_backend",
    "simulate_program",
    "simulate_request",
    "simulate_worker_sweep",
    "unregister_backend",
    "WorkerPool",
]
