"""High-level simulation entry points.

The canonical surface is *request based*: build a typed, validated
:class:`~repro.sim.request.SimulationRequest` and hand it to
:func:`simulate_request` (one-shot batch) or
:func:`repro.sim.session.open_session` (incremental streaming).  The
request names the backend (``"hil-full"``, ``"hil-hw"``, ``"hil-comm"``,
``"nanos"``, ``"perfect"`` -- or any registered plug-in), and parameters a
backend does not declare raise
:class:`~repro.sim.request.InvalidRequestError` instead of being silently
swallowed.

:func:`simulate_program` survives as a thin legacy shim: it assembles a
request from the historical keyword soup, *warns and drops* (rather than
rejects) parameters the chosen backend does not accept, and dispatches
through the same typed path.  The ``mode=HILMode...`` keyword and the
:func:`simulate_worker_sweep` helper are deprecated; use
``backend="hil-*"`` and :class:`repro.experiments.runner.ExperimentSpec`
(or a list of requests) instead.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional

from repro.core.config import DMDesign, PicosConfig
from repro.core.scheduler import SchedulingPolicy
from repro.runtime.overhead import NanosOverheadModel
from repro.runtime.task import TaskProgram
from repro.sim.backend import get_backend
from repro.sim.hil import HILMode
from repro.sim.request import SimulationRequest
from repro.sim.results import SimulationResult


def simulate_request(request: SimulationRequest) -> SimulationResult:
    """Run a validated request on its backend and return the result.

    This is the one batch entry point every other surface (the legacy
    shim, the experiment runner, the session ``result()``) funnels
    through; the request is normalized -- validated against the backend's
    declared parameters, ``dm_design`` folded into a full configuration --
    before dispatch.
    """
    normalized = request.normalize()
    backend = get_backend(normalized.backend)
    return backend.simulate(
        normalized.build_program(), **normalized.simulate_kwargs()
    )


def resolve_backend_name(
    backend: Optional[str] = None, mode: Optional[HILMode] = None
) -> str:
    """Turn a ``backend`` / ``mode`` pair into a registry name.

    ``backend`` wins when both are given; ``mode`` alone selects the
    corresponding ``hil-*`` backend; neither selects the Full-system HIL
    platform, the closed-loop configuration the paper evaluates end to end.
    """
    if backend is not None:
        return backend
    if mode is not None:
        return mode.backend_name
    return HILMode.FULL_SYSTEM.backend_name


def simulate_program(
    program: TaskProgram,
    num_workers: int = 12,
    mode: Optional[HILMode] = None,
    config: Optional[PicosConfig] = None,
    dm_design: Optional[DMDesign] = None,
    policy: SchedulingPolicy = SchedulingPolicy.FIFO,
    backend: Optional[str] = None,
    overhead: Optional[NanosOverheadModel] = None,
) -> SimulationResult:
    """Legacy one-call interface; prefer :func:`simulate_request`.

    Builds a :class:`SimulationRequest` from the historical keyword
    arguments and dispatches through the typed path.  Two legacy
    behaviours are preserved with ``DeprecationWarning``s instead of being
    broken outright:

    * ``mode=HILMode...`` still selects the matching ``hil-*`` backend;
    * parameters the chosen backend does not accept (``config`` on the
      software runtime, a non-FIFO ``policy`` on the roofline scheduler,
      ...) are dropped after a warning, where a directly-built request
      would raise :class:`~repro.sim.request.InvalidRequestError`.
    """
    if mode is not None:
        warnings.warn(
            "simulate_program(mode=HILMode...) is deprecated; pass "
            f"backend={mode.backend_name!r} (or build a SimulationRequest)",
            DeprecationWarning,
            stacklevel=2,
        )
    name = resolve_backend_name(backend, mode)
    request = SimulationRequest.for_program(
        program,
        backend=name,
        num_workers=num_workers,
        config=config,
        dm_design=dm_design,
        policy=policy,
        overhead=overhead,
    )
    dropped = request.rejected_parameters()
    if dropped:
        names = ", ".join(repr(p) for p in dropped)
        warnings.warn(
            f"backend {name!r} does not accept {names}; the legacy "
            "simulate_program shim drops them, a SimulationRequest would "
            "raise InvalidRequestError",
            DeprecationWarning,
            stacklevel=2,
        )
        request = request.without(dropped)
    return simulate_request(request)


def simulate_worker_sweep(
    program: TaskProgram,
    worker_counts: Iterable[int],
    mode: Optional[HILMode] = None,
    config: Optional[PicosConfig] = None,
    dm_design: Optional[DMDesign] = None,
    policy: SchedulingPolicy = SchedulingPolicy.FIFO,
    backend: Optional[str] = None,
) -> Dict[int, SimulationResult]:
    """Deprecated: run the same program for several worker counts.

    Declare the sweep instead -- either as an
    :class:`repro.experiments.runner.ExperimentSpec` (cached, parallel) or
    as a list of ``SimulationRequest`` templates differing only in
    ``num_workers``.
    """
    warnings.warn(
        "simulate_worker_sweep is deprecated; declare the sweep as an "
        "ExperimentSpec (repro.experiments.runner) or map simulate_request "
        "over SimulationRequests with different num_workers",
        DeprecationWarning,
        stacklevel=2,
    )
    name = resolve_backend_name(backend, mode)
    results: Dict[int, SimulationResult] = {}
    for workers in worker_counts:
        with warnings.catch_warnings():
            # The per-point legacy warnings would repeat for every worker
            # count; the single sweep-level warning above covers them.  The
            # filters are scoped to the two shim messages (module-based
            # scoping cannot work: a backend's own stacklevel=2 warning is
            # attributed to this module's frame too), so a
            # DeprecationWarning raised by a backend or task generator
            # still reaches the caller.
            warnings.filterwarnings(
                "ignore",
                message=r"simulate_program\(mode=HILMode",
                category=DeprecationWarning,
            )
            warnings.filterwarnings(
                "ignore",
                message=r"backend .* does not accept",
                category=DeprecationWarning,
            )
            results[workers] = simulate_program(
                program,
                num_workers=workers,
                config=config,
                dm_design=dm_design,
                policy=policy,
                backend=name,
            )
    return results


def speedup_curve(results: Dict[int, SimulationResult]) -> List[float]:
    """Extract the speedup values of a worker sweep, in worker-count order."""
    return [results[workers].speedup for workers in sorted(results)]
