"""High-level simulation entry points.

:func:`simulate_program` is the one-call interface used by the examples,
tests and experiment drivers: it runs a task program through the chosen
simulator (Picos HIL in one of its three modes, the Nanos++ software-only
runtime, or the Perfect scheduler) and returns a
:class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import DMDesign, PicosConfig
from repro.core.scheduler import SchedulingPolicy
from repro.runtime.task import TaskProgram
from repro.sim.hil import HILMode, HILSimulator
from repro.sim.results import SimulationResult


def simulate_program(
    program: TaskProgram,
    num_workers: int = 12,
    mode: HILMode = HILMode.FULL_SYSTEM,
    config: Optional[PicosConfig] = None,
    dm_design: Optional[DMDesign] = None,
    policy: SchedulingPolicy = SchedulingPolicy.FIFO,
) -> SimulationResult:
    """Simulate ``program`` on the Picos HIL platform.

    Parameters
    ----------
    program:
        The task program (trace) to execute.
    num_workers:
        Number of worker cores.
    mode:
        HIL operational mode (HW-only, HW+communication or Full-system).
    config:
        Full Picos configuration; when omitted the paper's prototype
        configuration is used.
    dm_design:
        Shortcut to select a Dependence Memory design without building a
        whole configuration (ignored when ``config`` is given).
    policy:
        Ready-queue policy of the Task Scheduler (FIFO by default, as in the
        prototype).
    """
    if config is None:
        if dm_design is not None:
            config = PicosConfig.paper_prototype(dm_design)
        else:
            config = PicosConfig()
    simulator = HILSimulator(
        program=program,
        config=config,
        mode=mode,
        num_workers=num_workers,
        policy=policy,
    )
    return simulator.run()


def simulate_worker_sweep(
    program: TaskProgram,
    worker_counts: Iterable[int],
    mode: HILMode = HILMode.FULL_SYSTEM,
    config: Optional[PicosConfig] = None,
    dm_design: Optional[DMDesign] = None,
    policy: SchedulingPolicy = SchedulingPolicy.FIFO,
) -> Dict[int, SimulationResult]:
    """Run the same program for several worker counts (scalability curves)."""
    results: Dict[int, SimulationResult] = {}
    for workers in worker_counts:
        results[workers] = simulate_program(
            program,
            num_workers=workers,
            mode=mode,
            config=config,
            dm_design=dm_design,
            policy=policy,
        )
    return results


def speedup_curve(results: Dict[int, SimulationResult]) -> List[float]:
    """Extract the speedup values of a worker sweep, in worker-count order."""
    return [results[workers].speedup for workers in sorted(results)]
