"""High-level simulation entry points.

:func:`simulate_program` is the one-call interface used by the examples,
tests and experiment drivers.  It is a thin dispatcher over the simulator
backend registry of :mod:`repro.sim.backend`: give it a backend name
(``"hil-full"``, ``"hil-hw"``, ``"hil-comm"``, ``"nanos"`` or
``"perfect"`` -- or any name registered by a plug-in) and it runs the task
program through that implementation and returns a
:class:`~repro.sim.results.SimulationResult`.

The historical ``mode=HILMode...`` keyword is still accepted as a synonym
for the three ``hil-*`` backends, so existing call sites keep working.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import DMDesign, PicosConfig
from repro.core.scheduler import SchedulingPolicy
from repro.runtime.overhead import NanosOverheadModel
from repro.runtime.task import TaskProgram
from repro.sim.backend import get_backend
from repro.sim.hil import HILMode
from repro.sim.results import SimulationResult


def resolve_backend_name(
    backend: Optional[str] = None, mode: Optional[HILMode] = None
) -> str:
    """Turn a ``backend`` / ``mode`` pair into a registry name.

    ``backend`` wins when both are given; ``mode`` alone selects the
    corresponding ``hil-*`` backend; neither selects the Full-system HIL
    platform, the closed-loop configuration the paper evaluates end to end.
    """
    if backend is not None:
        return backend
    if mode is not None:
        return mode.backend_name
    return HILMode.FULL_SYSTEM.backend_name


def simulate_program(
    program: TaskProgram,
    num_workers: int = 12,
    mode: Optional[HILMode] = None,
    config: Optional[PicosConfig] = None,
    dm_design: Optional[DMDesign] = None,
    policy: SchedulingPolicy = SchedulingPolicy.FIFO,
    backend: Optional[str] = None,
    overhead: Optional[NanosOverheadModel] = None,
) -> SimulationResult:
    """Simulate ``program`` on one of the registered simulator backends.

    Parameters
    ----------
    program:
        The task program (trace) to execute.
    num_workers:
        Number of worker cores (threads, for the software runtime).
    mode:
        HIL operational mode; legacy synonym for ``backend="hil-*"``.
    config:
        Full Picos configuration; when omitted the paper's prototype
        configuration is used.  Ignored by non-HIL backends.
    dm_design:
        Shortcut to select a Dependence Memory design without building a
        whole configuration (ignored when ``config`` is given).
    policy:
        Ready-queue policy of the Task Scheduler (FIFO by default, as in the
        prototype).  Ignored by non-HIL backends.
    backend:
        Name of the simulator backend to dispatch to.  Defaults to the
        Full-system HIL platform (or to ``mode`` when that is given).
    overhead:
        Nanos++ overhead model override, consumed by the ``nanos`` backend.
    """
    name = resolve_backend_name(backend, mode)
    return get_backend(name).simulate(
        program,
        num_workers=num_workers,
        config=config,
        dm_design=dm_design,
        policy=policy,
        overhead=overhead,
    )


def simulate_worker_sweep(
    program: TaskProgram,
    worker_counts: Iterable[int],
    mode: Optional[HILMode] = None,
    config: Optional[PicosConfig] = None,
    dm_design: Optional[DMDesign] = None,
    policy: SchedulingPolicy = SchedulingPolicy.FIFO,
    backend: Optional[str] = None,
) -> Dict[int, SimulationResult]:
    """Run the same program for several worker counts (scalability curves)."""
    results: Dict[int, SimulationResult] = {}
    for workers in worker_counts:
        results[workers] = simulate_program(
            program,
            num_workers=workers,
            mode=mode,
            config=config,
            dm_design=dm_design,
            policy=policy,
            backend=backend,
        )
    return results


def speedup_curve(results: Dict[int, SimulationResult]) -> List[float]:
    """Extract the speedup values of a worker sweep, in worker-count order."""
    return [results[workers].speedup for workers in sorted(results)]
