"""Worker cores of the Hardware-In-the-Loop platform.

Workers execute task bodies for the duration recorded in the trace.  In the
HW-only mode they live inside the programmable logic and start a ready task
immediately; in the other modes the ARM core must first retrieve the ready
task over the AXI stream, so a worker is *reserved* while its dispatch
message is in flight.  The :class:`WorkerPool` keeps track of idle, reserved
and busy workers and collects utilisation statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class WorkerState:
    """Bookkeeping for a single worker core.

    A plain ``__slots__`` value class -- the pool touches these records on
    every reserve/start/release, so they stay ``__dict__``-free.
    ``current_task`` is the task currently assigned (reserved or
    executing), if any.
    """

    __slots__ = ("worker_id", "busy_until", "tasks_executed", "busy_cycles", "current_task")

    def __init__(
        self,
        worker_id: int,
        busy_until: int = 0,
        tasks_executed: int = 0,
        busy_cycles: int = 0,
        current_task: Optional[int] = None,
    ) -> None:
        self.worker_id = worker_id
        self.busy_until = busy_until
        self.tasks_executed = tasks_executed
        self.busy_cycles = busy_cycles
        self.current_task = current_task

    def __repr__(self) -> str:
        return (
            f"WorkerState(worker_id={self.worker_id}, busy_until={self.busy_until}, "
            f"tasks_executed={self.tasks_executed}, busy_cycles={self.busy_cycles}, "
            f"current_task={self.current_task})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkerState):
            return NotImplemented
        return (
            self.worker_id == other.worker_id
            and self.busy_until == other.busy_until
            and self.tasks_executed == other.tasks_executed
            and self.busy_cycles == other.busy_cycles
            and self.current_task == other.current_task
        )


class WorkerPool:
    """A fixed pool of worker cores.

    Worker ids are dense (``0 .. num_workers - 1``), so the per-worker
    state lives in a list indexed by id -- the reserve/start/release
    triple runs once per simulated task, and a list index is measurably
    cheaper than the dict probe it replaced.
    """

    __slots__ = ("num_workers", "_workers", "_idle")

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("at least one worker is required")
        self.num_workers = num_workers
        self._workers: List[WorkerState] = [
            WorkerState(worker_id) for worker_id in range(num_workers)
        ]
        self._idle: List[int] = list(range(num_workers - 1, -1, -1))

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def idle_count(self) -> int:
        """Number of workers with no task assigned."""
        return len(self._idle)

    @property
    def has_idle(self) -> bool:
        """Whether at least one worker can accept a task."""
        return bool(self._idle)

    @property
    def busy_count(self) -> int:
        """Number of workers currently reserved or executing."""
        return self.num_workers - len(self._idle)

    def state(self, worker_id: int) -> WorkerState:
        """Bookkeeping record of one worker."""
        return self._workers[worker_id]

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def reserve(self, task_id: int) -> int:
        """Reserve an idle worker for ``task_id`` and return its id."""
        if not self._idle:
            raise RuntimeError("no idle worker available")
        worker_id = self._idle.pop()
        state = self._workers[worker_id]
        state.current_task = task_id
        return worker_id

    def start_execution(self, worker_id: int, start: int, duration: int) -> int:
        """Record that a reserved worker starts executing; returns end time."""
        state = self._workers[worker_id]
        if state.current_task is None:
            raise RuntimeError(f"worker {worker_id} has no task assigned")
        state.busy_until = start + duration
        state.busy_cycles += duration
        state.tasks_executed += 1
        return state.busy_until

    def release(self, worker_id: int) -> None:
        """Return a worker to the idle pool after its task finished."""
        state = self._workers[worker_id]
        if state.current_task is None:
            raise RuntimeError(f"worker {worker_id} was not assigned a task")
        state.current_task = None
        self._idle.append(worker_id)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def total_busy_cycles(self) -> int:
        """Sum of execution cycles across all workers."""
        return sum(state.busy_cycles for state in self._workers)

    def tasks_per_worker(self) -> Dict[int, int]:
        """Number of tasks executed by each worker."""
        return {
            state.worker_id: state.tasks_executed for state in self._workers
        }

    def utilisation(self, makespan: int) -> float:
        """Average fraction of the makespan each worker spent executing."""
        if makespan <= 0:
            return 0.0
        return self.total_busy_cycles() / (makespan * self.num_workers)
