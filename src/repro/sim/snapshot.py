"""Checkpoint/restore snapshots of sliced simulation sessions.

A :class:`SimulationSnapshot` freezes everything a resumable run needs --
the request, the engine's pending event schedule, the accelerator (or
software-runtime) state and the session's delivery counters -- into plain
JSON-safe primitives, so that :func:`restore` can rebuild a session that
continues *bit-exactly* where the captured one stood: same makespan, same
per-task timelines, same hardware counters, same lifecycle-event stream.
The differential net in ``tests/test_snapshot.py`` and
``tests/test_differential.py`` pins this for every backend, at every event
boundary, under both the flat and the reference datapath.

Three snapshot kinds cover a session's lifecycle:

``initial``
    Taken before the first :meth:`~repro.sim.session.SimulationSession.
    advance`; only the (fully assembled) request is stored.  Restoring
    yields a fresh session -- this is also the only kind non-stepper
    backends (the perfect scheduler) can produce mid-lifecycle.
``mid-run``
    Taken between ``advance`` slices at the stepper's cycle horizon; the
    complete mutable simulator state travels in the ``state`` document.
``finished``
    Taken after the run completed; the full result document is stored and
    restoring yields a finished session serving it.

Copy-on-capture
---------------

:func:`capture` encodes every piece of mutable state into fresh lists and
dictionaries *at capture time* -- a snapshot never aliases live simulator
state, so closing (or further advancing) the captured session cannot
invalidate it.  The regression tests in ``tests/test_sim_session_slicing.py``
pin this.

Canonical state schema
----------------------

The flat integer-handle datapath and the object-based reference datapath
(`core/reference/`) encode to the *same* canonical document: ``-1``
sentinels for absent handles, packed slot handles (``trs_id * per_trs +
tm_index * stride + dep_index``) for slot references, and invalid entries
normalised to their post-allocation reset values (which every allocation
path overwrites before reading, so canonicalisation is invisible to the
simulation).  That makes a snapshot datapath-neutral: a run captured under
``REPRO_REFERENCE_DATAPATH=1`` restores onto the flat datapath and vice
versa, which is how the differential suite cross-checks the two.

The VM's cached ``_dm_handle`` back-links are deliberately **excluded**
from the schema and recomputed on restore via ``dm.lookup(address)`` --
they are a pure cache of the DM's content, and recomputing them is what
lets a fork re-home live versions into a *wider* DM.

What-if forks
-------------

``restore(snapshot, config=...)`` (or the :func:`fork` convenience) resumes
a mid-run snapshot under a modified :class:`~repro.core.config.PicosConfig`
-- "what if the DM had twice the ways from this point on?".  Latency knobs
may change freely; structural geometry must stay compatible: the TM/VM/DM
set geometry is fixed, the DM hash function must not change, and the DM may
only widen (live ways are re-homed per set, and the VM free list is
extended with the new entries behind the surviving ones).

On-disk format
--------------

:func:`save_snapshot` writes the snapshot's document as one JSON object
keyed by a :func:`~repro.core.hashing.stable_digest` over its canonical
serialisation; :func:`load_snapshot` verifies the format version and the
digest before handing the snapshot back, so silent corruption (or a schema
drift without a version bump) fails loudly instead of replaying garbage.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.config import PicosConfig
from repro.core.dct import StallReason
from repro.core.gateway import PendingSubmission
from repro.core.hashing import stable_digest
from repro.core.packets import TaskSlotRef
from repro.core.reference.dependence_memory import DMWay
from repro.core.reference.task_memory import DependenceSlot, TaskEntry
from repro.core.reference.version_memory import VersionEntry
from repro.core.stats import PicosStats
from repro.faults.payloads import FaultRedeliver, FaultTimer
from repro.runtime.nanos import NanosRuntimeSimulator
from repro.runtime.task import Task, TaskProgram
from repro.sim.engine import Event
from repro.sim.hil import HILSimulator
from repro.sim.request import InlineProgramRef
from repro.sim.results import TaskTimeline
from repro.sim.session import SimulationSession, open_session

__all__ = [
    "KIND_FINISHED",
    "KIND_INITIAL",
    "KIND_MID_RUN",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SimulationSnapshot",
    "SnapshotError",
    "capture",
    "fork",
    "load_snapshot",
    "restore",
    "save_snapshot",
]

#: Format tag of the on-disk document (`format` field).
SNAPSHOT_FORMAT = "picos-snapshot"
#: Schema version; bump on any change to the state documents below.
SNAPSHOT_VERSION = 1

#: Snapshot kinds (see the module docstring).
KIND_INITIAL = "initial"
KIND_MID_RUN = "mid-run"
KIND_FINISHED = "finished"

#: PicosConfig fields that must be identical between the captured and the
#: forked configuration of a mid-run restore: they size the state arrays
#: the snapshot re-homes into.  (The DM design itself is checked separately
#: -- widening is allowed.)
_GEOMETRY_FIELDS = (
    "num_trs",
    "num_dct",
    "tm_entries",
    "max_deps_per_task",
    "vm_entries",
    "dm_sets",
)

#: PicosStats counters in dataclass order (the ``extra`` map travels
#: separately as sorted pairs).
_STATS_FIELDS = tuple(
    f.name for f in dataclasses.fields(PicosStats) if f.name != "extra"
)


class SnapshotError(RuntimeError):
    """A snapshot could not be captured, decoded, restored or forked."""


# ----------------------------------------------------------------------
# event payload codec
# ----------------------------------------------------------------------
# Engine event payloads are a small closed vocabulary: ``None``, a bare
# int, an int list (ready-task cycle-cluster), an int pair (worker/task),
# a master job ``(kind, sub)`` whose sub-payload is a Task (create), an
# int pair (dispatch) or an int (finish), or -- in a faulted run -- a
# fault timer / pending redelivery.  Ints travel raw; everything else is
# tagged so the decoder needs no knowledge of the event kind.
def _payload_to_document(payload: Any) -> Any:
    if payload is None:
        return ["none"]
    if type(payload) is int:
        return payload
    if type(payload) is list:
        return ["l", list(payload)]
    if type(payload) is tuple:
        first, second = payload
        if type(first) is str:  # a master job
            return ["j", first, _payload_to_document(second)]
        return ["t", first, second]
    if isinstance(payload, Task):
        return ["task", payload.task_id]
    if isinstance(payload, FaultTimer):
        return ["fto", payload.index, payload.tag, payload.arg]
    if isinstance(payload, FaultRedeliver):
        return ["frd", payload.index, payload.kind, _payload_to_document(payload.payload)]
    raise SnapshotError(f"unencodable event payload: {payload!r}")


def _payload_from_document(document: Any, program: TaskProgram) -> Any:
    if type(document) is int:
        return document
    tag = document[0]
    if tag == "none":
        return None
    if tag == "l":
        return list(document[1])
    if tag == "t":
        return (document[1], document[2])
    if tag == "task":
        return program.task(document[1])
    if tag == "j":
        return (document[1], _payload_from_document(document[2], program))
    if tag == "fto":
        return FaultTimer(document[1], document[2], document[3])
    if tag == "frd":
        return FaultRedeliver(
            document[1], document[2], _payload_from_document(document[3], program)
        )
    raise SnapshotError(f"unknown payload tag {tag!r}")


# ----------------------------------------------------------------------
# engine queue codec
# ----------------------------------------------------------------------
def _queue_document(queue: Any) -> Dict[str, Any]:
    current, buckets = queue.snapshot_events()
    return {
        "now": queue.now,
        "processed": queue.processed,
        "current": [
            [event.time, event.kind, _payload_to_document(event.payload)]
            for event in current
        ],
        "buckets": [
            [
                time,
                [
                    [event.kind, _payload_to_document(event.payload)]
                    for event in events
                ],
            ]
            for time, events in buckets
        ],
    }


def _restore_queue(queue: Any, document: Dict[str, Any], program: TaskProgram) -> None:
    current = [
        Event(time, kind, _payload_from_document(payload, program))
        for time, kind, payload in document["current"]
    ]
    buckets = [
        (
            time,
            [
                Event(time, kind, _payload_from_document(payload, program))
                for kind, payload in events
            ],
        )
        for time, events in document["buckets"]
    ]
    queue.restore_events(document["now"], document["processed"], current, buckets)


# ----------------------------------------------------------------------
# timelines, lifecycle log, stats
# ----------------------------------------------------------------------
def _timelines_document(timelines: Dict[int, TaskTimeline]) -> List[List[int]]:
    return [
        [t.task_id, t.created, t.submitted, t.ready, t.started, t.finished]
        for t in (timelines[task_id] for task_id in sorted(timelines))
    ]


def _timelines_from_document(document: List[List[int]]) -> Dict[int, TaskTimeline]:
    return {row[0]: TaskTimeline(*row) for row in document}


def _stats_document(stats: PicosStats) -> Dict[str, Any]:
    return {
        "fields": [getattr(stats, name) for name in _STATS_FIELDS],
        "extra": [[key, value] for key, value in sorted(stats.extra.items())],
    }


def _restore_stats(stats: PicosStats, document: Dict[str, Any]) -> None:
    values = document["fields"]
    if len(values) != len(_STATS_FIELDS):
        raise SnapshotError("stats document does not match the counter inventory")
    for name, value in zip(_STATS_FIELDS, values):
        setattr(stats, name, value)
    stats.extra = {key: value for key, value in document["extra"]}


# ----------------------------------------------------------------------
# Task Memory codec (TM0 + TMX, canonical across datapaths)
# ----------------------------------------------------------------------
def _empty_tm_document(entries: int, stride: int) -> Dict[str, Any]:
    """The canonical all-invalid TM document (post-reset field values)."""
    total = entries * stride
    return {
        "entries": entries,
        "stride": stride,
        "valid": [False] * entries,
        "task_id": [-1] * entries,
        "num_deps": [0] * entries,
        "ready_deps": [0] * entries,
        "dep_count": [0] * entries,
        "slot_address": [0] * total,
        "slot_vm_index": [-1] * total,
        "slot_ready": [False] * total,
        "slot_predecessor": [-1] * total,
        "slot_is_producer": [False] * total,
        "free": [],
        "high_water": 0,
    }


def _tm_document(trs: Any) -> Dict[str, Any]:
    inner = getattr(trs, "_inner", None)
    if inner is None:
        return _tm_document_flat(trs.task_memory)
    return _tm_document_reference(inner.task_memory, trs._codec)


def _tm_document_flat(tm: Any) -> Dict[str, Any]:
    stride = tm.max_deps_per_task
    document = _empty_tm_document(tm.entries, stride)
    for index in range(tm.entries):
        if not tm._valid[index]:
            continue
        document["valid"][index] = True
        document["task_id"][index] = tm._task_id[index]
        document["num_deps"][index] = tm._num_deps[index]
        document["ready_deps"][index] = tm._ready_deps[index]
        count = tm._dep_count[index]
        document["dep_count"][index] = count
        base = index * stride
        for dep in range(count):
            offset = base + dep
            document["slot_address"][offset] = tm._slot_address[offset]
            document["slot_vm_index"][offset] = tm._slot_vm_index[offset]
            document["slot_ready"][offset] = tm._slot_ready[offset]
            document["slot_predecessor"][offset] = tm._slot_predecessor[offset]
            document["slot_is_producer"][offset] = tm._slot_is_producer[offset]
    document["free"] = list(tm._free)
    document["high_water"] = tm._high_water
    return document


def _tm_document_reference(tm: Any, codec: Any) -> Dict[str, Any]:
    stride = tm.max_deps_per_task
    document = _empty_tm_document(tm.entries, stride)
    for index, entry in enumerate(tm._slots):
        if entry is None:
            continue
        document["valid"][index] = True
        document["task_id"][index] = entry.task_id
        document["num_deps"][index] = entry.num_deps
        document["ready_deps"][index] = entry.ready_deps
        document["dep_count"][index] = len(entry.dep_slots)
        base = index * stride
        for dep, slot in enumerate(entry.dep_slots):
            offset = base + dep
            document["slot_address"][offset] = slot.address
            document["slot_vm_index"][offset] = (
                -1 if slot.vm_index is None else slot.vm_index
            )
            document["slot_ready"][offset] = slot.ready
            document["slot_predecessor"][offset] = (
                -1 if slot.predecessor is None else codec.encode(slot.predecessor)
            )
            document["slot_is_producer"][offset] = slot.is_producer
    document["free"] = list(tm._free)
    document["high_water"] = tm._high_water
    return document


def _restore_tm(trs: Any, document: Dict[str, Any]) -> None:
    inner = getattr(trs, "_inner", None)
    tm = trs.task_memory
    if tm.entries != document["entries"] or tm.max_deps_per_task != document["stride"]:
        raise SnapshotError(
            "TM geometry mismatch: the snapshot was taken with "
            f"{document['entries']}x{document['stride']} slots, the restore "
            f"target has {tm.entries}x{tm.max_deps_per_task}"
        )
    if inner is None:
        _restore_tm_flat(tm, document)
    else:
        _restore_tm_reference(inner.task_memory, document, trs.trs_id, trs._codec)


def _restore_tm_flat(tm: Any, document: Dict[str, Any]) -> None:
    tm._valid[:] = list(document["valid"])
    tm._task_id[:] = list(document["task_id"])
    tm._num_deps[:] = list(document["num_deps"])
    tm._ready_deps[:] = list(document["ready_deps"])
    tm._dep_count[:] = list(document["dep_count"])
    tm._slot_address[:] = list(document["slot_address"])
    tm._slot_vm_index[:] = list(document["slot_vm_index"])
    tm._slot_ready[:] = list(document["slot_ready"])
    tm._slot_predecessor[:] = list(document["slot_predecessor"])
    tm._slot_is_producer[:] = list(document["slot_is_producer"])
    tm._free[:] = list(document["free"])
    tm._by_task_id = {
        document["task_id"][index]: index
        for index in range(tm.entries)
        if document["valid"][index]
    }
    tm._high_water = document["high_water"]


def _restore_tm_reference(
    tm: Any, document: Dict[str, Any], trs_id: int, codec: Any
) -> None:
    stride = tm.max_deps_per_task
    slots: List[Optional[TaskEntry]] = [None] * tm.entries
    for index in range(tm.entries):
        if not document["valid"][index]:
            continue
        entry = TaskEntry(
            tm_index=index,
            task_id=document["task_id"][index],
            num_deps=document["num_deps"][index],
            ready_deps=document["ready_deps"][index],
        )
        base = index * stride
        for dep in range(document["dep_count"][index]):
            offset = base + dep
            vm_index = document["slot_vm_index"][offset]
            predecessor = document["slot_predecessor"][offset]
            slot = DependenceSlot(
                dep_index=dep,
                address=document["slot_address"][offset],
                vm_index=None if vm_index < 0 else vm_index,
                ready=document["slot_ready"][offset],
                predecessor=None if predecessor < 0 else codec.decode(predecessor),
                is_producer=document["slot_is_producer"][offset],
            )
            slot.slot_ref = TaskSlotRef(trs_id=trs_id, tm_index=index, dep_index=dep)
            entry.dep_slots.append(slot)
        slots[index] = entry
    tm._slots = slots
    tm._free[:] = list(document["free"])
    tm._by_task_id = {
        document["task_id"][index]: index
        for index in range(tm.entries)
        if document["valid"][index]
    }
    tm._high_water = document["high_water"]


# ----------------------------------------------------------------------
# Dependence Memory codec
# ----------------------------------------------------------------------
def _dm_document(dm: Any) -> Dict[str, Any]:
    num_sets, ways = dm.num_sets, dm.ways_per_set
    total = num_sets * ways
    document: Dict[str, Any] = {
        "sets": num_sets,
        "ways": ways,
        "valid": [False] * total,
        "input_only": [True] * total,
        "tag": [-1] * total,
        "latest": [-1] * total,
        "live": [0] * total,
        "access": [0] * total,
        "conflicts": dm.conflicts,
        "allocations": dm.allocations,
        "occupied": dm._occupied,
        "high_water": dm._high_water,
    }
    reference_sets = getattr(dm, "_sets", None)
    if reference_sets is None:
        for handle in range(total):
            if not dm._valid[handle]:
                continue
            document["valid"][handle] = True
            document["input_only"][handle] = dm._input_only[handle]
            document["tag"][handle] = dm._tag[handle]
            document["latest"][handle] = dm._latest_vm_index[handle]
            document["live"][handle] = dm._live_versions[handle]
            document["access"][handle] = dm._access_count[handle]
    else:
        for set_index, set_ways in enumerate(reference_sets):
            for way_index, way in enumerate(set_ways):
                if not way.valid:
                    continue
                handle = set_index * ways + way_index
                document["valid"][handle] = True
                document["input_only"][handle] = way.input_only
                document["tag"][handle] = way.tag
                document["latest"][handle] = (
                    -1 if way.latest_vm_index is None else way.latest_vm_index
                )
                document["live"][handle] = way.live_versions
                document["access"][handle] = way.access_count
    return document


def _restore_dm(dm: Any, document: Dict[str, Any]) -> None:
    old_ways = document["ways"]
    new_ways = dm.ways_per_set
    if dm.num_sets != document["sets"]:
        raise SnapshotError(
            f"DM set-count mismatch: snapshot has {document['sets']} sets, "
            f"the restore target has {dm.num_sets}"
        )
    if new_ways < old_ways:
        raise SnapshotError(
            f"cannot narrow the DM on restore: snapshot has {old_ways} ways "
            f"per set, the restore target only {new_ways}"
        )
    reference_sets = getattr(dm, "_sets", None)
    if reference_sets is None:
        total = dm.num_sets * new_ways
        dm._valid[:] = [False] * total
        dm._input_only[:] = [True] * total
        dm._tag[:] = [-1] * total
        dm._latest_vm_index[:] = [-1] * total
        dm._live_versions[:] = [0] * total
        dm._access_count[:] = [0] * total
        for set_index in range(dm.num_sets):
            for way_index in range(old_ways):
                source = set_index * old_ways + way_index
                if not document["valid"][source]:
                    continue
                handle = set_index * new_ways + way_index
                dm._valid[handle] = True
                dm._input_only[handle] = document["input_only"][source]
                dm._tag[handle] = document["tag"][source]
                dm._latest_vm_index[handle] = document["latest"][source]
                dm._live_versions[handle] = document["live"][source]
                dm._access_count[handle] = document["access"][source]
    else:
        for set_index in range(dm.num_sets):
            set_ways = [DMWay() for _ in range(new_ways)]
            for way_index in range(old_ways):
                source = set_index * old_ways + way_index
                if not document["valid"][source]:
                    continue
                latest = document["latest"][source]
                set_ways[way_index] = DMWay(
                    valid=True,
                    input_only=document["input_only"][source],
                    tag=document["tag"][source],
                    latest_vm_index=None if latest < 0 else latest,
                    live_versions=document["live"][source],
                    access_count=document["access"][source],
                )
            reference_sets[set_index] = set_ways
    dm.conflicts = document["conflicts"]
    dm.allocations = document["allocations"]
    dm._occupied = document["occupied"]
    dm._high_water = document["high_water"]


# ----------------------------------------------------------------------
# Version Memory codec
# ----------------------------------------------------------------------
def _vm_document(vm: Any, codec: Any) -> Dict[str, Any]:
    entries = vm.entries
    document: Dict[str, Any] = {
        "entries": entries,
        "valid": [False] * entries,
        "address": [0] * entries,
        "producer": [-1] * entries,
        "producer_finished": [False] * entries,
        "last_consumer": [-1] * entries,
        "consumers_arrived": [0] * entries,
        "consumers_finished": [0] * entries,
        "next_version": [-1] * entries,
        "free": list(vm._free),
        "high_water": vm._high_water,
        "total_allocations": vm._total_allocations,
    }
    reference_slots = getattr(vm, "_slots", None)
    if reference_slots is None:
        for index in range(entries):
            if not vm._valid[index]:
                continue
            document["valid"][index] = True
            document["address"][index] = vm._address[index]
            document["producer"][index] = vm._producer[index]
            document["producer_finished"][index] = vm._producer_finished[index]
            document["last_consumer"][index] = vm._last_consumer[index]
            document["consumers_arrived"][index] = vm._consumers_arrived[index]
            document["consumers_finished"][index] = vm._consumers_finished[index]
            document["next_version"][index] = vm._next_version[index]
    else:
        for index, entry in enumerate(reference_slots):
            if entry is None:
                continue
            document["valid"][index] = True
            document["address"][index] = entry.address
            document["producer"][index] = (
                -1 if entry.producer is None else codec.encode(entry.producer)
            )
            document["producer_finished"][index] = entry.producer_finished
            document["last_consumer"][index] = (
                -1
                if entry.last_consumer is None
                else codec.encode(entry.last_consumer)
            )
            document["consumers_arrived"][index] = entry.consumers_arrived
            document["consumers_finished"][index] = entry.consumers_finished
            document["next_version"][index] = (
                -1 if entry.next_version is None else entry.next_version
            )
    return document


def _restore_vm(vm: Any, document: Dict[str, Any], dm: Any, codec: Any) -> None:
    old_entries = document["entries"]
    new_entries = vm.entries
    if new_entries < old_entries:
        raise SnapshotError(
            f"cannot shrink the VM on restore: snapshot has {old_entries} "
            f"entries, the restore target only {new_entries}"
        )
    # A widened VM (DM widening implies a larger effective VM) keeps the
    # captured free list behind the brand-new entries, so recycling order
    # for the surviving entries is untouched and fresh entries hand out in
    # ascending index order, exactly like a cold VM's.
    if new_entries > old_entries:
        free = list(range(new_entries - 1, old_entries - 1, -1)) + list(
            document["free"]
        )
    else:
        free = list(document["free"])
    reference_slots = getattr(vm, "_slots", None)
    if reference_slots is None:
        vm._valid[:] = [False] * new_entries
        vm._address[:] = [0] * new_entries
        vm._producer[:] = [-1] * new_entries
        vm._producer_finished[:] = [False] * new_entries
        vm._last_consumer[:] = [-1] * new_entries
        vm._consumers_arrived[:] = [0] * new_entries
        vm._consumers_finished[:] = [0] * new_entries
        vm._next_version[:] = [-1] * new_entries
        vm._dm_handle[:] = [-1] * new_entries
        for index in range(old_entries):
            if not document["valid"][index]:
                continue
            vm._valid[index] = True
            vm._address[index] = document["address"][index]
            vm._producer[index] = document["producer"][index]
            vm._producer_finished[index] = document["producer_finished"][index]
            vm._last_consumer[index] = document["last_consumer"][index]
            vm._consumers_arrived[index] = document["consumers_arrived"][index]
            vm._consumers_finished[index] = document["consumers_finished"][index]
            vm._next_version[index] = document["next_version"][index]
            # The DM back-link is a cache of the DM's content; recomputing
            # it (instead of storing it) is what re-homes live versions
            # into a forked, wider DM.
            vm._dm_handle[index] = dm.lookup(document["address"][index])
    else:
        slots: List[Optional[VersionEntry]] = [None] * new_entries
        for index in range(old_entries):
            if not document["valid"][index]:
                continue
            producer = document["producer"][index]
            last_consumer = document["last_consumer"][index]
            next_version = document["next_version"][index]
            slots[index] = VersionEntry(
                vm_index=index,
                address=document["address"][index],
                producer=None if producer < 0 else codec.decode(producer),
                producer_finished=document["producer_finished"][index],
                last_consumer=(
                    None if last_consumer < 0 else codec.decode(last_consumer)
                ),
                consumers_arrived=document["consumers_arrived"][index],
                consumers_finished=document["consumers_finished"][index],
                next_version=None if next_version < 0 else next_version,
            )
        vm._slots = slots
    vm._free[:] = free
    vm._high_water = document["high_water"]
    vm._total_allocations = document["total_allocations"]


# ----------------------------------------------------------------------
# DCT, Gateway, accelerator facade
# ----------------------------------------------------------------------
def _dct_document(dct: Any) -> Dict[str, Any]:
    inner = getattr(dct, "_inner", None)
    target = dct if inner is None else inner
    codec = getattr(dct, "_codec", None)
    return {
        "dm": _dm_document(target.dm),
        "vm": _vm_document(target.vm, codec),
        "blocked": sorted(target._blocked_addresses),
    }


def _restore_dct(dct: Any, document: Dict[str, Any]) -> None:
    inner = getattr(dct, "_inner", None)
    target = dct if inner is None else inner
    codec = getattr(dct, "_codec", None)
    _restore_dm(target.dm, document["dm"])
    _restore_vm(target.vm, document["vm"], target.dm, codec)
    target._blocked_addresses = set(document["blocked"])


def _gateway_document(gateway: Any) -> Dict[str, Any]:
    pending = gateway._pending
    pending_document = None
    if pending is not None:
        pending_document = {
            "task": pending.task.task_id,
            "trs": pending.trs_id,
            "tm_index": pending.tm_index,
            "next_dep_index": pending.next_dep_index,
            "reason": None if pending.reason is None else pending.reason.value,
            "retries": pending.retries,
        }
    return {
        "next_trs": gateway._next_trs,
        "pending": pending_document,
        "slots": [
            [task_id, trs_id, tm_index]
            for task_id, (trs_id, tm_index) in sorted(gateway._slot_of_task.items())
        ],
    }


def _restore_gateway(
    gateway: Any, document: Dict[str, Any], program: TaskProgram
) -> None:
    gateway._next_trs = document["next_trs"]
    pending = document["pending"]
    if pending is None:
        gateway._pending = None
    else:
        reason = pending["reason"]
        gateway._pending = PendingSubmission(
            task=program.task(pending["task"]),
            trs_id=pending["trs"],
            tm_index=pending["tm_index"],
            next_dep_index=pending["next_dep_index"],
            reason=None if reason is None else StallReason(reason),
            retries=pending["retries"],
        )
    gateway._slot_of_task = {
        task_id: (trs_id, tm_index)
        for task_id, trs_id, tm_index in document["slots"]
    }


def _scheduler_document(scheduler: Any) -> Dict[str, Any]:
    return {
        "queue": list(scheduler._queue),
        "scheduled": scheduler._total_scheduled,
        "max_occupancy": scheduler._max_occupancy,
    }


def _restore_scheduler(scheduler: Any, document: Dict[str, Any]) -> None:
    scheduler._queue = deque(document["queue"])
    scheduler._total_scheduled = document["scheduled"]
    scheduler._max_occupancy = document["max_occupancy"]


def _accel_document(accel: Any) -> Dict[str, Any]:
    arbiter = accel.arbiter
    return {
        "stats": _stats_document(accel.stats),
        "arbiter": {
            "to_trs": arbiter.messages_to_trs,
            "to_dct": arbiter.messages_to_dct,
            "load": [arbiter._per_dct_load[index] for index in range(arbiter.num_dct)],
        },
        "trs": [_tm_document(trs) for trs in accel.trs_instances],
        "dct": [_dct_document(dct) for dct in accel.dct_instances],
        "gateway": _gateway_document(accel.gateway),
        "deps_of_task": [
            [task_id, accel._deps_of_task[task_id]]
            for task_id in sorted(accel._deps_of_task)
        ],
        "submitted": accel._submitted,
        "finished": accel._finished,
        "scheduler": _scheduler_document(accel.scheduler),
    }


def _restore_accel(accel: Any, document: Dict[str, Any], program: TaskProgram) -> None:
    if len(document["trs"]) != len(accel.trs_instances) or len(
        document["dct"]
    ) != len(accel.dct_instances):
        raise SnapshotError(
            "accelerator geometry mismatch: the snapshot has "
            f"{len(document['trs'])} TRS / {len(document['dct'])} DCT "
            f"instances, the restore target "
            f"{len(accel.trs_instances)} / {len(accel.dct_instances)}"
        )
    # All TRS/DCT/Gateway instances share the accelerator's PicosStats
    # object; restoring it once in place keeps that aliasing intact.
    _restore_stats(accel.stats, document["stats"])
    arbiter = accel.arbiter
    arbiter.messages_to_trs = document["arbiter"]["to_trs"]
    arbiter.messages_to_dct = document["arbiter"]["to_dct"]
    arbiter._per_dct_load = {
        index: load for index, load in enumerate(document["arbiter"]["load"])
    }
    for trs, trs_document in zip(accel.trs_instances, document["trs"]):
        _restore_tm(trs, trs_document)
    for dct, dct_document in zip(accel.dct_instances, document["dct"]):
        _restore_dct(dct, dct_document)
    _restore_gateway(accel.gateway, document["gateway"], program)
    accel._deps_of_task = {
        task_id: count for task_id, count in document["deps_of_task"]
    }
    accel._submitted = document["submitted"]
    accel._finished = document["finished"]
    _restore_scheduler(accel.scheduler, document["scheduler"])


def _workers_document(pool: Any) -> Dict[str, Any]:
    return {
        "states": [
            [w.busy_until, w.tasks_executed, w.busy_cycles, w.current_task]
            for w in pool._workers
        ],
        "idle": list(pool._idle),
    }


def _restore_workers(pool: Any, document: Dict[str, Any]) -> None:
    states = document["states"]
    if len(states) != pool.num_workers:
        raise SnapshotError(
            f"worker-count mismatch: snapshot has {len(states)} workers, "
            f"the restore target {pool.num_workers}"
        )
    for worker, row in zip(pool._workers, states):
        worker.busy_until = row[0]
        worker.tasks_executed = row[1]
        worker.busy_cycles = row[2]
        worker.current_task = row[3]
    pool._idle[:] = list(document["idle"])


# ----------------------------------------------------------------------
# simulator codecs
# ----------------------------------------------------------------------
def _fault_plan_document(sim: Any, document: Dict[str, Any]) -> Dict[str, Any]:
    """Attach the armed-fault state under the optional ``faults`` key.

    Unfaulted runs get no key at all, so their state documents (and
    therefore snapshot digests) are byte-identical to the pre-fault
    schema -- which is why ``SNAPSHOT_VERSION`` did not bump.
    """
    plan = sim._fault_plan
    if plan is not None:
        document["faults"] = plan.snapshot_state()
    return document


def _restore_fault_plan(sim: Any, state: Dict[str, Any]) -> None:
    plan = sim._fault_plan
    document = state.get("faults")
    if document is None:
        if plan is not None:
            raise SnapshotError(
                "the restore request arms fault scenarios but the snapshot "
                "carries no armed-fault state"
            )
        return
    if plan is None:
        raise SnapshotError(
            "snapshot carries armed-fault state but the restore request "
            "arms no fault scenarios"
        )
    plan.restore_state(document)


def _hil_state_document(sim: HILSimulator) -> Dict[str, Any]:
    log = sim._lifecycle_log
    return _fault_plan_document(sim, {
        "simulator": "hil",
        "queue": _queue_document(sim.queue),
        "timelines": _timelines_document(sim._timelines),
        "log": [] if log is None else [list(entry) for entry in log],
        "pending_new": [task.task_id for task in sim._pending_new],
        "new_free_at": sim._picos_new_free_at,
        "finish_free_at": sim._picos_finish_free_at,
        "master_busy": sim._master_busy,
        "finish_jobs": list(sim._master_finish_jobs),
        "dispatch_jobs": [[task_id, worker] for task_id, worker in sim._master_dispatch_jobs],
        "next_create_index": sim._next_create_index,
        "finished_tasks": sim._finished_tasks,
        "submission_blocked": sim._submission_blocked,
        "ready_batch_extra": sim._ready_batch_extra,
        "ready": _scheduler_document(sim.ready),
        "workers": _workers_document(sim.workers),
        "accel": _accel_document(sim.accel),
    })


def _restore_hil(sim: HILSimulator, state: Dict[str, Any]) -> None:
    program = sim.program
    sim._prepared = True
    _restore_queue(sim.queue, state["queue"], program)
    sim._timelines = _timelines_from_document(state["timelines"])
    if sim._lifecycle_log is not None:
        sim._lifecycle_log[:] = [tuple(entry) for entry in state["log"]]
    sim._pending_new = deque(program.task(task_id) for task_id in state["pending_new"])
    sim._picos_new_free_at = state["new_free_at"]
    sim._picos_finish_free_at = state["finish_free_at"]
    sim._master_busy = state["master_busy"]
    sim._master_finish_jobs = deque(state["finish_jobs"])
    sim._master_dispatch_jobs = deque(
        (task_id, worker) for task_id, worker in state["dispatch_jobs"]
    )
    sim._next_create_index = state["next_create_index"]
    sim._finished_tasks = state["finished_tasks"]
    sim._submission_blocked = state["submission_blocked"]
    sim._ready_batch_extra = state["ready_batch_extra"]
    _restore_scheduler(sim.ready, state["ready"])
    _restore_workers(sim.workers, state["workers"])
    _restore_accel(sim.accel, state["accel"], program)
    _restore_fault_plan(sim, state)


def _nanos_state_document(sim: NanosRuntimeSimulator) -> Dict[str, Any]:
    log = sim._lifecycle_log
    return _fault_plan_document(sim, {
        "simulator": "nanos",
        "queue": _queue_document(sim.queue),
        "timelines": _timelines_document(sim._timelines),
        "log": [] if log is None else [list(entry) for entry in log],
        "master_joins_at": sim._master_joins_at,
        "idle_workers": list(sim._idle_workers),
        "remaining_preds": [
            [task_id, sim._remaining_preds[task_id]]
            for task_id in sorted(sim._remaining_preds)
        ],
        "submitted": sorted(
            task_id for task_id, done in sim._submitted.items() if done
        ),
        "ready_pool": list(sim._ready_pool),
        "finished": sim._finished,
        "makespan": sim._makespan,
    })


def _restore_nanos(sim: NanosRuntimeSimulator, state: Dict[str, Any]) -> None:
    program = sim.program
    sim._prepared = True
    _restore_queue(sim.queue, state["queue"], program)
    sim._timelines = _timelines_from_document(state["timelines"])
    if sim._lifecycle_log is not None:
        sim._lifecycle_log[:] = [tuple(entry) for entry in state["log"]]
    sim._master_joins_at = state["master_joins_at"]
    sim._idle_workers = list(state["idle_workers"])
    sim._remaining_preds = {
        task_id: count for task_id, count in state["remaining_preds"]
    }
    submitted = set(state["submitted"])
    sim._submitted = {task.task_id: task.task_id in submitted for task in program}
    sim._ready_pool = deque(state["ready_pool"])
    sim._finished = state["finished"]
    sim._makespan = state["makespan"]
    _restore_fault_plan(sim, state)


def _simulator_state_document(sim: Any) -> Dict[str, Any]:
    if isinstance(sim, HILSimulator):
        return _hil_state_document(sim)
    if isinstance(sim, NanosRuntimeSimulator):
        return _nanos_state_document(sim)
    raise SnapshotError(
        f"no snapshot codec for simulator type {type(sim).__name__}"
    )


def _restore_simulator_state(sim: Any, state: Dict[str, Any]) -> None:
    label = state.get("simulator")
    if isinstance(sim, HILSimulator):
        expected = "hil"
    elif isinstance(sim, NanosRuntimeSimulator):
        expected = "nanos"
    else:
        raise SnapshotError(
            f"no snapshot codec for simulator type {type(sim).__name__}"
        )
    if label != expected:
        raise SnapshotError(
            f"snapshot state is for simulator {label!r}, the restore target "
            f"runs {expected!r}"
        )
    if expected == "hil":
        _restore_hil(sim, state)
    else:
        _restore_nanos(sim, state)


# ----------------------------------------------------------------------
# the snapshot value object
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SimulationSnapshot:
    """A frozen, JSON-safe image of one simulation session.

    All fields hold plain JSON-compatible primitives (the request, state
    and result travel as their document forms), so the in-memory snapshot
    and its on-disk serialisation are the same value -- :attr:`digest` is
    stable across a save/load round trip.
    """

    #: ``initial``, ``mid-run`` or ``finished``.
    kind: str
    #: Backend name the session ran on.
    backend: str
    #: Cycle horizon the snapshot was taken at (0 for ``initial``, the
    #: stepper horizon for ``mid-run``, the drain time for ``finished``).
    cycle: int
    #: The session's request as a protocol document (streamed tasks folded
    #: into an inline program, so the restored run needs no side channel).
    request: Dict[str, Any]
    #: Session delivery counters (events delivered / ready / retired seen,
    #: current cycle), restored verbatim.
    counters: Dict[str, int]
    #: Full simulator state (``mid-run`` only).
    state: Optional[Dict[str, Any]]
    #: Full result document (``finished`` only).
    result: Optional[Dict[str, Any]]

    def _payload(self) -> Dict[str, Any]:
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "kind": self.kind,
            "backend": self.backend,
            "cycle": self.cycle,
            "request": self.request,
            "counters": self.counters,
            "state": self.state,
            "result": self.result,
        }

    @property
    def digest(self) -> str:
        """Content digest over the canonical JSON serialisation."""
        payload = self._payload()
        return stable_digest(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    def document(self) -> Dict[str, Any]:
        """The on-disk document: the payload plus its own digest."""
        document = self._payload()
        document["digest"] = self.digest
        return document

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "SimulationSnapshot":
        """Decode (and verify) a snapshot document.

        Raises :class:`SnapshotError` on a foreign format, an unsupported
        version, or -- when the document carries a ``digest`` field -- a
        digest mismatch (corruption, or hand-edited state).
        """
        if not isinstance(document, dict):
            raise SnapshotError("a snapshot document must be a JSON object")
        if document.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"not a {SNAPSHOT_FORMAT} document "
                f"(format={document.get('format')!r})"
            )
        if document.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {document.get('version')!r} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        try:
            snapshot = cls(
                kind=document["kind"],
                backend=document["backend"],
                cycle=document["cycle"],
                request=document["request"],
                counters=document["counters"],
                state=document["state"],
                result=document["result"],
            )
        except KeyError as error:
            raise SnapshotError(f"snapshot document misses field {error}") from error
        if snapshot.kind not in (KIND_INITIAL, KIND_MID_RUN, KIND_FINISHED):
            raise SnapshotError(f"unknown snapshot kind {snapshot.kind!r}")
        expected = document.get("digest")
        if expected is not None and expected != snapshot.digest:
            raise SnapshotError(
                "snapshot digest mismatch: the document was corrupted or "
                "edited after capture"
            )
        return snapshot


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def capture(session: SimulationSession) -> SimulationSnapshot:
    """Snapshot ``session`` at its current cycle boundary.

    Copy-on-capture: every piece of mutable state is encoded into fresh
    JSON primitives here, so the snapshot shares nothing with the live
    session.  Valid in any state except closed.
    """
    # Imported here, not at module level: the service package imports this
    # module (server-side checkpoint/restore), so a top-level import of its
    # protocol codecs would be circular.
    from repro.service.protocol import request_to_document, result_to_document

    if session.closed:
        raise SnapshotError("cannot capture a closed session")
    request = session.request
    if session._streamed:
        # Fold streamed tasks into an inline program so the snapshot is
        # self-contained: the restored session re-assembles exactly the
        # program this one would simulate.
        request = dataclasses.replace(
            request, program=InlineProgramRef(session._assembled_program())
        )
    request_document = request_to_document(request)
    counters = {
        "delivered": session._delivered,
        "ready_seen": session._ready_seen,
        "retired_seen": session._retired_seen,
        "current_cycle": session._current_cycle,
    }
    result = session._result
    if result is not None:
        return SimulationSnapshot(
            kind=KIND_FINISHED,
            backend=request.backend,
            cycle=result.drain_time,
            request=request_document,
            counters=counters,
            state=None,
            result=result_to_document(result),
        )
    stepper = session._stepper
    if stepper is None:
        return SimulationSnapshot(
            kind=KIND_INITIAL,
            backend=request.backend,
            cycle=0,
            request=request_document,
            counters=counters,
            state=None,
            result=None,
        )
    return SimulationSnapshot(
        kind=KIND_MID_RUN,
        backend=request.backend,
        cycle=stepper._horizon,
        request=request_document,
        counters=counters,
        state=_simulator_state_document(stepper._sim),
        result=None,
    )


# ----------------------------------------------------------------------
# restore / fork
# ----------------------------------------------------------------------
def _forked_request(snapshot, request, config):  # type: ignore[no-untyped-def]
    if snapshot.kind == KIND_FINISHED:
        raise SnapshotError(
            "cannot fork a finished snapshot: there is nothing left to run"
        )
    if "config" not in request.accepted_parameters():
        raise SnapshotError(
            f"backend {request.backend!r} takes no Picos configuration; "
            "it cannot be forked"
        )
    if snapshot.kind == KIND_MID_RUN:
        old = request.resolved_config()
        if old is None:
            old = PicosConfig()
        for name in _GEOMETRY_FIELDS:
            if getattr(old, name) != getattr(config, name):
                raise SnapshotError(
                    f"cannot fork mid-run: structural field {name!r} differs "
                    f"({getattr(old, name)!r} -> {getattr(config, name)!r}); "
                    "only latency knobs and DM widening may change"
                )
        if old.dm_design.uses_pearson != config.dm_design.uses_pearson:
            raise SnapshotError(
                "cannot fork mid-run across DM hash functions: live "
                "addresses would re-home to different sets"
            )
        if config.dm_design.ways < old.dm_design.ways:
            raise SnapshotError(
                "mid-run forks may widen the DM, never narrow it "
                f"({old.dm_design.ways} -> {config.dm_design.ways} ways)"
            )
    return dataclasses.replace(request, config=config, dm_design=None)


def restore(
    snapshot: SimulationSnapshot, *, config: Optional[PicosConfig] = None
) -> SimulationSession:
    """Rebuild a live session from ``snapshot``.

    The restored session continues bit-exactly where the captured one
    stood: running it to completion yields a result field-for-field equal
    to the uninterrupted run's.  With ``config`` the remainder of a
    mid-run (or the whole of an initial) snapshot executes under the
    modified configuration instead -- see the module docstring for the
    compatibility rules.
    """
    # Lazy for the same layering reason as in capture().
    from repro.service.protocol import request_from_document, result_from_document

    request = request_from_document(snapshot.request)
    if config is not None:
        request = _forked_request(snapshot, request, config)
    session = open_session(request)
    if not isinstance(session, SimulationSession):
        raise SnapshotError(
            f"backend {request.backend!r} opened a "
            f"{type(session).__name__} session, which restore() cannot "
            "populate"
        )
    session._delivered = snapshot.counters.get("delivered", 0)
    session._ready_seen = snapshot.counters.get("ready_seen", 0)
    session._retired_seen = snapshot.counters.get("retired_seen", 0)
    session._current_cycle = snapshot.counters.get("current_cycle", 0)
    if snapshot.kind == KIND_INITIAL:
        return session
    session.seal()
    if snapshot.kind == KIND_FINISHED:
        if config is not None:
            raise SnapshotError(
                "cannot fork a finished snapshot: there is nothing left to run"
            )
        if snapshot.result is None:
            raise SnapshotError("finished snapshot carries no result document")
        session._result = result_from_document(snapshot.result)
        return session
    if snapshot.kind != KIND_MID_RUN:
        raise SnapshotError(f"unknown snapshot kind {snapshot.kind!r}")
    if snapshot.state is None:
        raise SnapshotError("mid-run snapshot carries no state document")
    factory = getattr(session._backend, "make_stepper", None)
    if factory is None:
        raise SnapshotError(
            f"backend {request.backend!r} provides no stepper; a mid-run "
            "snapshot of it cannot exist"
        )
    stepper = factory(
        session._assembled_program(), **session.request.simulate_kwargs()
    )
    _restore_simulator_state(stepper._sim, snapshot.state)
    stepper._horizon = snapshot.cycle
    stepper.finished = stepper._sim.queue.empty
    session._stepper = stepper
    return session


def fork(
    snapshot: SimulationSnapshot, config: PicosConfig
) -> SimulationSession:
    """Resume ``snapshot`` under a modified configuration (what-if run)."""
    return restore(snapshot, config=config)


# ----------------------------------------------------------------------
# on-disk persistence
# ----------------------------------------------------------------------
def save_snapshot(
    snapshot: SimulationSnapshot, path: Union[str, Path]
) -> Path:
    """Write ``snapshot`` to ``path`` as one digest-keyed JSON object."""
    target = Path(path)
    target.write_text(
        json.dumps(snapshot.document(), sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def load_snapshot(path: Union[str, Path]) -> SimulationSnapshot:
    """Read, verify and decode a snapshot written by :func:`save_snapshot`."""
    source = Path(path)
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {source}: {error}") from error
    except json.JSONDecodeError as error:
        raise SnapshotError(f"{source} is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise SnapshotError(f"{source} does not hold a snapshot object")
    if "digest" not in document:
        raise SnapshotError(f"{source} carries no digest; refusing to load")
    return SimulationSnapshot.from_document(document)
