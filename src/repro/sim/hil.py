"""Hardware-In-the-Loop (HIL) simulation platform.

This module reproduces the embedded system of Section IV-B (Figure 6): the
Picos accelerator in the programmable logic, the ARM processing system that
creates tasks and exchanges AXI-stream messages with it, and the worker
cores that execute task bodies.  Three operational modes are supported,
matching the rows of Table IV:

``HW_ONLY``
    All tasks are pushed to Picos up front, workers live next to the
    accelerator and there is no communication cost.  This isolates the
    processing capacity of the hardware itself.

``HW_COMM``
    Adds the AXI-stream communication latency (200-300 cycles per message)
    for every new-task, ready-task and finished-task message, all serialised
    through the ARM core, but no Nanos++ software cost.

``FULL_SYSTEM``
    The closed-loop system: the ARM core additionally pays the Nanos++ task
    creation and submission cost for every task before sending it to Picos.

The simulator is a discrete-event model: the Picos pipeline is a serial
resource whose per-operation occupancy and readiness latencies come from the
functional :class:`~repro.core.picos.PicosAccelerator`, the ARM core is a
serial resource handling communication (and Nanos++ work in full-system
mode), and workers execute task bodies for their traced duration.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.config import DMDesign, PicosConfig
from repro.core.picos import PicosAccelerator, SubmitStatus
from repro.core.scheduler import SchedulingPolicy, TaskScheduler
from repro.runtime.task import Task, TaskProgram
from repro.sim.backend import (
    BACKEND_HIL_COMM,
    BACKEND_HIL_FULL,
    BACKEND_HIL_HW,
    register_backend,
)
from repro.sim.engine import EventQueue
from repro.sim.results import SimulationResult, TaskTimeline
from repro.sim.worker import WorkerPool


class HILMode(enum.Enum):
    """Operational mode of the Hardware-In-the-Loop platform."""

    HW_ONLY = "hw-only"
    HW_COMM = "hw-comm"
    FULL_SYSTEM = "full-system"

    @property
    def uses_master(self) -> bool:
        """Whether the ARM core mediates every message in this mode."""
        return self is not HILMode.HW_ONLY

    @property
    def display_name(self) -> str:
        """Label used in Table IV."""
        return {
            HILMode.HW_ONLY: "HW-only",
            HILMode.HW_COMM: "HW+comm.",
            HILMode.FULL_SYSTEM: "Full-system",
        }[self]

    @property
    def backend_name(self) -> str:
        """Name of this mode in the simulator-backend registry."""
        return {
            HILMode.HW_ONLY: BACKEND_HIL_HW,
            HILMode.HW_COMM: BACKEND_HIL_COMM,
            HILMode.FULL_SYSTEM: BACKEND_HIL_FULL,
        }[self]

    @classmethod
    def from_backend_name(cls, name: str) -> "HILMode":
        """The HIL mode behind one of the ``hil-*`` backend names."""
        for mode in cls:
            if mode.backend_name == name:
                return mode
        raise ValueError(f"{name!r} is not a HIL backend name")


# master job kinds
_JOB_CREATE = "create"
_JOB_DISPATCH = "dispatch"
_JOB_FINISH = "finish"

# event kinds
_EV_TASK_VISIBLE = "task-visible"
_EV_WORKER_DONE = "worker-done"
_EV_MASTER_DONE = "master-done"


class HILSimulator:
    """Discrete-event simulation of the HIL platform running one program."""

    #: Depth of the new-task FIFO between the ARM core and the Gateway; the
    #: master stops creating ahead once this many tasks are waiting.
    NEW_TASK_FIFO_DEPTH = 16

    def __init__(
        self,
        program: TaskProgram,
        config: Optional[PicosConfig] = None,
        mode: HILMode = HILMode.FULL_SYSTEM,
        num_workers: int = 12,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        batch_completions: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError("at least one worker is required")
        self.program = program
        self.config = config if config is not None else PicosConfig()
        self.mode = mode
        self.num_workers = num_workers
        self.policy = policy
        #: Drain runs of same-cycle worker completions in one handler
        #: activation.  Cycle-identical to one-at-a-time delivery (the
        #: parity suite pins this); ``False`` selects the reference
        #: event-per-event loop the optimized path is checked against.
        self.batch_completions = batch_completions
        # Mode flags cached as plain booleans: the enum properties cost a
        # dict lookup and comparison on every event otherwise.
        self._uses_master = mode.uses_master
        self._hw_only = mode is HILMode.HW_ONLY
        self._full_system = mode is HILMode.FULL_SYSTEM

        self.accel = PicosAccelerator(self.config, policy=policy, auto_enqueue=False)
        self.workers = WorkerPool(num_workers)
        self.ready = TaskScheduler(policy)
        self.queue = EventQueue()

        self._timelines: Dict[int, TaskTimeline] = {}
        self._pending_new: Deque[Task] = deque()
        # The new-task path (GW -> TRS/DCT insertion) and the finished-task
        # path (TRS retire -> DCT release) are separate pipelines in the
        # prototype and overlap almost completely, so each gets its own
        # serial resource.
        self._picos_new_free_at = 0
        self._picos_finish_free_at = 0
        self._master_busy = False
        self._master_finish_jobs: Deque[int] = deque()
        self._master_dispatch_jobs: Deque[Tuple[int, int]] = deque()
        self._next_create_index = 0
        self._finished_tasks = 0
        self._submission_blocked = False

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self, stop_at_cycle: Optional[int] = None) -> SimulationResult:
        """Execute the program and return the result.

        With ``stop_at_cycle`` the event loop aborts once the simulated
        clock would pass that cycle; the result then covers only the work
        performed up to the horizon (``completed_all()`` is ``False`` and
        an ``aborted_at_cycle`` counter records the horizon).  Without it
        the program must run to completion.
        """
        for task in self.program:
            self._timelines[task.task_id] = TaskTimeline(task_id=task.task_id)

        if self.mode is HILMode.HW_ONLY:
            # "all the tasks are sent to Picos once" -- every task is queued
            # at the accelerator input at time zero, in creation order.
            for task in self.program:
                self._pending_new.append(task)
            self._process_submissions(0)
        else:
            # The ARM core pays a one-time platform start-up cost before the
            # first task is created.
            self._kick_master(self.config.hil_startup_cycles)

        # Precomputed handler table: one dict hit per event instead of a
        # string-comparison ladder (this loop delivers hundreds of
        # thousands of events on the fine-grained workloads).
        handlers = {
            _EV_TASK_VISIBLE: self._on_task_visible,
            _EV_WORKER_DONE: (
                self._on_worker_done_batched
                if self.batch_completions
                else self._on_worker_done
            ),
            _EV_MASTER_DONE: self._on_master_done,
        }
        events = (
            iter(self.queue)
            if stop_at_cycle is None
            else self.queue.iter_until(stop_at_cycle)
        )
        for event in events:
            handler = handlers.get(event.kind)
            if handler is None:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {event.kind!r}")
            handler(event.payload, event.time)

        return self._build_result(aborted_at=stop_at_cycle)

    # ------------------------------------------------------------------
    # Picos pipeline
    # ------------------------------------------------------------------
    def _process_submissions(self, now: int) -> None:
        """Feed the Gateway with waiting tasks while it makes progress."""
        accepted_any = False
        while self._pending_new:
            head = self._pending_new[0]
            start = max(now, self._picos_new_free_at)
            if self.accel.has_pending_submission:
                if not self.accel.can_resume():
                    self._submission_blocked = True
                    break
                result = self.accel.resume_submission()
            else:
                result = self.accel.submit_task(head)
            if result.status is SubmitStatus.STALLED:
                self._submission_blocked = True
                break
            self._submission_blocked = False
            accepted_any = True
            self._pending_new.popleft()
            timeline = self._timelines[head.task_id]
            timeline.submitted = start
            self._picos_new_free_at = start + result.occupancy
            for ready in result.ready:
                self.queue.schedule(start + ready.latency, _EV_TASK_VISIBLE, ready.task_id)
        if accepted_any and self._uses_master and not self._master_busy:
            # Space may have freed in the new-task FIFO: let the master
            # create the next task if it was throttled.
            self._kick_master(now)

    def _process_finish(self, task_id: int, now: int) -> None:
        """Run the finished-task path through the accelerator."""
        start = max(now, self._picos_finish_free_at)
        result = self.accel.notify_finish(task_id)
        self._picos_finish_free_at = start + result.occupancy
        for ready in result.ready:
            self.queue.schedule(start + ready.latency, _EV_TASK_VISIBLE, ready.task_id)
        # Finishes free TM entries, DM ways and VM versions: retry any
        # blocked submission.
        self._process_submissions(now)

    # ------------------------------------------------------------------
    # ready tasks and workers
    # ------------------------------------------------------------------
    def _on_task_visible(self, task_id: int, now: int) -> None:
        timeline = self._timelines[task_id]
        timeline.ready = now
        self.ready.push(task_id)
        self._try_dispatch(now)

    def _try_dispatch(self, now: int) -> None:
        """Hand ready tasks to idle workers (directly or via the ARM core)."""
        while self.workers.has_idle and len(self.ready):
            task_id = self.ready.pop()
            worker_id = self.workers.reserve(task_id)
            if self._hw_only:
                self._start_execution(task_id, worker_id, now)
            else:
                self._master_dispatch_jobs.append((task_id, worker_id))
        if self._uses_master and self._master_dispatch_jobs and not self._master_busy:
            self._kick_master(now)

    def _start_execution(self, task_id: int, worker_id: int, now: int) -> None:
        task = self.program.task(task_id)
        end = self.workers.start_execution(worker_id, now, task.duration)
        self._timelines[task_id].started = now
        self.queue.schedule(end, _EV_WORKER_DONE, (worker_id, task_id))

    def _on_worker_done(self, payload: Tuple[int, int], now: int) -> None:
        worker_id, task_id = payload
        self._timelines[task_id].finished = now
        self.workers.release(worker_id)
        self._finished_tasks += 1
        if self._hw_only:
            self._process_finish(task_id, now)
        else:
            self._master_finish_jobs.append(task_id)
            self._kick_master(now)
        self._try_dispatch(now)

    def _on_worker_done_batched(self, payload: Tuple[int, int], now: int) -> None:
        """Drain the run of worker completions scheduled for this cycle.

        Completions carry no ordering interaction among themselves -- each
        releases its worker and queues its finish work -- so a same-cycle
        run can retire in one activation with a single dispatch pass at the
        end instead of one per completion.  Everything that determines
        timing (finish-job order, ready-pool pop order, master kicks) is
        preserved, so the schedule is cycle-identical to the one-at-a-time
        reference loop; only which physical worker id picks up a given
        ready task may differ, and workers are homogeneous.
        """
        queue = self.queue
        hw_only = self._hw_only
        while True:
            worker_id, task_id = payload
            self._timelines[task_id].finished = now
            self.workers.release(worker_id)
            self._finished_tasks += 1
            if hw_only:
                self._process_finish(task_id, now)
            else:
                self._master_finish_jobs.append(task_id)
            nxt = queue.pop_same_kind(_EV_WORKER_DONE, now)
            if nxt is None:
                break
            payload = nxt.payload
        if not hw_only and not self._master_busy:
            self._kick_master(now)
        self._try_dispatch(now)

    # ------------------------------------------------------------------
    # the ARM core (master) in HW+comm and Full-system modes
    # ------------------------------------------------------------------
    def _master_can_create(self) -> bool:
        return (
            self._next_create_index < self.program.num_tasks
            and len(self._pending_new) < self.NEW_TASK_FIFO_DEPTH
        )

    def _next_master_job(self) -> Optional[Tuple[str, object]]:
        """Pick the next job for the ARM core (finish > dispatch > create)."""
        if self._master_finish_jobs:
            return (_JOB_FINISH, self._master_finish_jobs.popleft())
        if self._master_dispatch_jobs:
            return (_JOB_DISPATCH, self._master_dispatch_jobs.popleft())
        if self._master_can_create():
            task = self.program[self._next_create_index]
            self._next_create_index += 1
            return (_JOB_CREATE, task)
        return None

    def _master_job_cost(self, kind: str, payload: object) -> int:
        if kind == _JOB_CREATE:
            assert isinstance(payload, Task)
            cost = self.config.comm_cycles
            if self._full_system:
                cost += self.config.nanos_submission_cycles(payload.num_dependences)
            return cost
        # dispatch and finish forwarding are one AXI-stream message each.
        return self.config.comm_cycles

    def _kick_master(self, now: int) -> None:
        if not self._uses_master or self._master_busy:
            return
        job = self._next_master_job()
        if job is None:
            return
        kind, payload = job
        cost = self._master_job_cost(kind, payload)
        self._master_busy = True
        if kind == _JOB_CREATE:
            assert isinstance(payload, Task)
            self._timelines[payload.task_id].created = now
        self.queue.schedule(now + cost, _EV_MASTER_DONE, job)

    def _on_master_done(self, job: Tuple[str, object], now: int) -> None:
        self._master_busy = False
        kind, payload = job
        if kind == _JOB_CREATE:
            assert isinstance(payload, Task)
            self._pending_new.append(payload)
            self._process_submissions(now)
        elif kind == _JOB_DISPATCH:
            task_id, worker_id = payload  # type: ignore[misc]
            self._start_execution(task_id, worker_id, now)
        elif kind == _JOB_FINISH:
            assert isinstance(payload, int)
            self._process_finish(payload, now)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown master job {kind!r}")
        self._kick_master(now)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _build_result(self, aborted_at: Optional[int] = None) -> SimulationResult:
        aborted = self._finished_tasks != self.program.num_tasks
        if aborted and aborted_at is None:
            raise RuntimeError(
                f"simulation ended with {self._finished_tasks} of "
                f"{self.program.num_tasks} tasks executed (deadlock?)"
            )
        # On an early abort, unfinished timelines keep their partial stamps
        # (finished == 0) and only the tasks done by the horizon count.
        makespan = max(
            (t.finished for t in self._timelines.values() if not aborted or t.finished),
            default=0,
        )
        counters = self.accel.stats.as_dict()
        counters["ready_queue_high_water"] = self.ready.max_occupancy
        counters["events_processed"] = self.queue.processed
        if aborted:
            counters["aborted_at_cycle"] = aborted_at
            counters["finished_tasks"] = self._finished_tasks
        else:
            counters["picos_new_path_busy_until"] = self._picos_new_free_at
            counters["picos_finish_path_busy_until"] = self._picos_finish_free_at
        return SimulationResult(
            simulator=f"picos-{self.mode.value}",
            program_name=self.program.name,
            num_workers=self.num_workers,
            makespan=makespan,
            sequential_cycles=self.program.sequential_cycles,
            num_tasks=self.program.num_tasks,
            timelines=self._timelines,
            counters=counters,
            drain_time=self.queue.now,
        )


# ----------------------------------------------------------------------
# backend registration
# ----------------------------------------------------------------------
class HILBackend:
    """Simulator backend wrapping :class:`HILSimulator` in one HIL mode."""

    #: Request parameters this backend understands (see
    #: :func:`repro.sim.backend.backend_accepted_parameters`).
    accepts = frozenset({"config", "dm_design", "policy"})

    def __init__(self, mode: HILMode) -> None:
        self.mode = mode
        self.name = mode.backend_name
        self.description = (
            f"Picos hardware prototype, HIL {mode.display_name} mode"
        )

    def open_session(self, request):  # type: ignore[no-untyped-def]
        """Streaming session over this HIL mode (see :mod:`repro.sim.session`)."""
        from repro.sim.session import SimulationSession

        return SimulationSession(self, request)

    def simulate(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        config: Optional[PicosConfig] = None,
        dm_design: Optional[DMDesign] = None,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        **kwargs: object,
    ) -> SimulationResult:
        if config is None:
            if dm_design is not None:
                config = PicosConfig.paper_prototype(dm_design)
            else:
                config = PicosConfig()
        return HILSimulator(
            program,
            config=config,
            mode=self.mode,
            num_workers=num_workers,
            policy=policy,
        ).run()


for _mode in HILMode:
    register_backend(HILBackend(_mode), replace=True)
del _mode
