"""Hardware-In-the-Loop (HIL) simulation platform.

This module reproduces the embedded system of Section IV-B (Figure 6): the
Picos accelerator in the programmable logic, the ARM processing system that
creates tasks and exchanges AXI-stream messages with it, and the worker
cores that execute task bodies.  Three operational modes are supported,
matching the rows of Table IV:

``HW_ONLY``
    All tasks are pushed to Picos up front, workers live next to the
    accelerator and there is no communication cost.  This isolates the
    processing capacity of the hardware itself.

``HW_COMM``
    Adds the AXI-stream communication latency (200-300 cycles per message)
    for every new-task, ready-task and finished-task message, all serialised
    through the ARM core, but no Nanos++ software cost.

``FULL_SYSTEM``
    The closed-loop system: the ARM core additionally pays the Nanos++ task
    creation and submission cost for every task before sending it to Picos.

The simulator is a discrete-event model: the Picos pipeline is a serial
resource whose per-operation occupancy and readiness latencies come from the
functional :class:`~repro.core.picos.PicosAccelerator`, the ARM core is a
serial resource handling communication (and Nanos++ work in full-system
mode), and workers execute task bodies for their traced duration.

Cycle-identity contract
-----------------------

This module sits on the measured hot path of every full-system run, and
every optimization to it must be *cycle-identical*: the schedule --
per-task created/submitted/ready/started/finished stamps, the makespan and
the delivered-event count -- must not move by a single cycle.  The
optimized paths therefore keep reference twins that can be selected per
run: ``batch_completions=False`` re-enables event-per-event worker *and
master* completion delivery, and ``batch_ready_events=False`` re-enables one
engine event per ready-task visibility notification (instead of one
``READY_BATCH`` event per cycle-cluster).  Three test nets pin the
contract:

* the golden-digest matrix in ``tests/test_perf_parity.py`` (full results
  recorded from the pre-optimization engine, all five backends);
* the batched-vs-reference parity classes in ``tests/test_perf_parity.py``
  and the master-job edge cases in ``tests/test_hil_master.py``;
* the cross-backend differential fuzz suite in
  ``tests/test_differential.py`` (seed-pinned in CI).

See ``docs/hil.md`` for the design of the master-job state machine and the
cycle-cluster batching invariant.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.config import DMDesign, PicosConfig
from repro.core.picos import PicosAccelerator, SubmitStatus
from repro.core.scheduler import SchedulingPolicy, TaskScheduler
from repro.runtime.task import Task, TaskProgram
from repro.sim.backend import (
    BACKEND_HIL_COMM,
    BACKEND_HIL_FULL,
    BACKEND_HIL_HW,
    register_backend,
)
from repro.sim.engine import EventQueue
from repro.sim.results import SimulationResult, TaskTimeline
from repro.sim.session import EngineStepper
from repro.sim.worker import WorkerPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import ArmedFault, FaultPlan
    from repro.faults.scenario import FaultScenario


class HILMode(enum.Enum):
    """Operational mode of the Hardware-In-the-Loop platform."""

    HW_ONLY = "hw-only"
    HW_COMM = "hw-comm"
    FULL_SYSTEM = "full-system"

    @property
    def uses_master(self) -> bool:
        """Whether the ARM core mediates every message in this mode."""
        return self is not HILMode.HW_ONLY

    @property
    def display_name(self) -> str:
        """Label used in Table IV."""
        return {
            HILMode.HW_ONLY: "HW-only",
            HILMode.HW_COMM: "HW+comm.",
            HILMode.FULL_SYSTEM: "Full-system",
        }[self]

    @property
    def backend_name(self) -> str:
        """Name of this mode in the simulator-backend registry."""
        return {
            HILMode.HW_ONLY: BACKEND_HIL_HW,
            HILMode.HW_COMM: BACKEND_HIL_COMM,
            HILMode.FULL_SYSTEM: BACKEND_HIL_FULL,
        }[self]

    @classmethod
    def from_backend_name(cls, name: str) -> "HILMode":
        """The HIL mode behind one of the ``hil-*`` backend names."""
        for mode in cls:
            if mode.backend_name == name:
                return mode
        raise ValueError(f"{name!r} is not a HIL backend name")


# master job kinds
_JOB_CREATE = "create"
_JOB_DISPATCH = "dispatch"
_JOB_FINISH = "finish"

# event kinds
_EV_TASK_VISIBLE = "task-visible"
_EV_READY_BATCH = "ready-batch"
_EV_WORKER_DONE = "worker-done"
_EV_MASTER_DONE = "master-done"

# lifecycle-log entry orders, matching repro.sim.session._EVENT_ORDER so a
# sorted log partition reproduces the lifecycle_events() stream exactly.
_LOG_SUBMITTED = 0
_LOG_READY = 1
_LOG_RETIRED = 2


class HILSimulator:
    """Discrete-event simulation of the HIL platform running one program."""

    #: Depth of the new-task FIFO between the ARM core and the Gateway; the
    #: master stops creating ahead once this many tasks are waiting.
    NEW_TASK_FIFO_DEPTH = 16

    def __init__(
        self,
        program: TaskProgram,
        config: Optional[PicosConfig] = None,
        mode: HILMode = HILMode.FULL_SYSTEM,
        num_workers: int = 12,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        batch_completions: bool = True,
        batch_ready_events: bool = True,
        faults: Sequence["FaultScenario"] = (),
    ) -> None:
        if num_workers < 1:
            raise ValueError("at least one worker is required")
        self.program = program
        self.config = config if config is not None else PicosConfig()
        self.mode = mode
        self.num_workers = num_workers
        self.policy = policy
        #: Drain runs of same-cycle worker completions -- and, for the
        #: serial ARM master, same-cycle zero-cost job completions -- in
        #: one handler activation.  Cycle-identical to one-at-a-time
        #: delivery (the parity suite pins this); ``False`` selects the
        #: reference event-per-event loops the optimized paths are checked
        #: against.
        self.batch_completions = batch_completions
        #: Coalesce the ready-task visibility notifications one accelerator
        #: operation produces for the same target cycle into a single
        #: ``READY_BATCH`` engine event (one per cycle-cluster), and drain
        #: adjacent same-cycle batches via ``pop_same_kind``.  Cycle-
        #: identical to one event per notification; ``False`` selects the
        #: reference per-notification emission the batched path is parity-
        #: checked against.
        self.batch_ready_events = batch_ready_events
        # Mode flags cached as plain booleans: the enum properties cost a
        # dict lookup and comparison on every event otherwise.
        self._uses_master = mode.uses_master
        self._hw_only = mode is HILMode.HW_ONLY
        self._full_system = mode is HILMode.FULL_SYSTEM

        self.accel = PicosAccelerator(self.config, policy=policy, auto_enqueue=False)
        self.workers = WorkerPool(num_workers)
        self.ready = TaskScheduler(policy)
        self.queue = EventQueue()

        self._timelines: Dict[int, TaskTimeline] = {}
        #: Optional lifecycle log of ``(cycle, order, task_id)`` entries,
        #: appended at the submitted/ready/finished stamp sites.  ``None``
        #: (the default) keeps the hot path free of logging work; sliced
        #: sessions enable it to emit exact per-slice event streams (the
        #: 0-initialised timeline stamps alone cannot distinguish "not yet
        #: happened" from a genuine cycle-0 event in HW-only mode).
        self._lifecycle_log: Optional[List[Tuple[int, int, int]]] = None
        #: ``run``/``step`` gate their one-time setup behind this flag so
        #: repeated calls *resume* dispatching instead of resetting state;
        #: that is what makes ``stop_at_cycle`` horizons stackable.
        self._prepared = False
        self._pending_new: Deque[Task] = deque()
        # The new-task path (GW -> TRS/DCT insertion) and the finished-task
        # path (TRS retire -> DCT release) are separate pipelines in the
        # prototype and overlap almost completely, so each gets its own
        # serial resource.
        self._picos_new_free_at = 0
        self._picos_finish_free_at = 0
        self._master_busy = False
        self._master_finish_jobs: Deque[int] = deque()
        self._master_dispatch_jobs: Deque[Tuple[int, int]] = deque()
        self._next_create_index = 0
        self._finished_tasks = 0
        self._submission_blocked = False
        #: Extra delivered-notification count carried by consumed
        #: ``READY_BATCH`` events (``len(batch) - 1`` each), so the
        #: ``events_processed`` counter keeps per-delivered-event accounting
        #: exactly equal to the reference per-notification loop.
        self._ready_batch_extra = 0
        # The master-job costs are pure functions of the job kind (and, for
        # creates in full-system mode, the dependence count, bounded by the
        # TMX capacity), so _kick_master reduces to deque pops plus one
        # list index instead of a call chain per kick.
        config = self.config
        self._comm_cycles = config.comm_cycles
        self._num_tasks = program.num_tasks
        self._new_fifo_depth = self.NEW_TASK_FIFO_DEPTH
        if self._full_system:
            self._create_cost = [
                config.comm_cycles + config.nanos_submission_cycles(n)
                for n in range(config.max_deps_per_task + 1)
            ]
        else:
            self._create_cost = [config.comm_cycles] * (
                config.max_deps_per_task + 1
            )
        # Flat table-driven master-job dispatch (kind -> completion
        # handler): the state machine is one dict hit per master event.
        self._master_done_handlers = {
            _JOB_CREATE: self._on_master_created,
            _JOB_DISPATCH: self._on_master_dispatched,
            _JOB_FINISH: self._on_master_finished,
        }
        #: Armed fault scenarios, if any (see ``repro.faults``).  The
        #: default run never constructs a plan and dispatches through the
        #: exact same handler tables as before -- the injection layer is
        #: zero-cost when off and golden digests stay bit-identical.
        self._fault_plan: Optional["FaultPlan"] = None
        if faults:
            from repro.faults.plan import FaultPlan

            # Armed runs take the reference event-per-event loops so that
            # every delivery flows through the injection layer (the batched
            # twins drain same-kind runs internally via ``pop_same_kind``,
            # bypassing dispatch-level interception).  The twins are
            # parity-pinned cycle-identical, so this changes nothing but
            # the hook coverage.
            self.batch_completions = False
            self.batch_ready_events = False
            self._fault_plan = FaultPlan(tuple(faults), _HIL_FAULT_ADAPTER, self)

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self, stop_at_cycle: Optional[int] = None) -> SimulationResult:
        """Execute the program and return the result.

        With ``stop_at_cycle`` the event loop pauses once the simulated
        clock would pass that cycle; the result then covers only the work
        performed up to the horizon (``completed_all()`` is ``False`` and
        an ``aborted_at_cycle`` counter records the horizon).  Without it
        the program must run to completion.

        Calling ``run`` again *resumes* from where the previous horizon
        stopped (the engine leaves later events queued), so a sequence of
        calls with growing horizons ending in ``run()`` is cycle-identical
        to a single uninterrupted run.
        """
        self.step(stop_at_cycle)
        return self._build_result(aborted_at=stop_at_cycle)

    def step(self, stop_at_cycle: Optional[int] = None) -> None:
        """Advance the simulation, without building a result.

        The one-time setup runs on the first call only; every later call
        continues dispatching queued events up to the (larger) horizon.
        ``queue.empty`` after a step means the run is complete.
        """
        if not self._prepared:
            self._prepared = True
            for task in self.program:
                self._timelines[task.task_id] = TaskTimeline(task_id=task.task_id)

            if self.mode is HILMode.HW_ONLY:
                # "all the tasks are sent to Picos once" -- every task is
                # queued at the accelerator input at time zero, in creation
                # order.
                for task in self.program:
                    self._pending_new.append(task)
                self._process_submissions(0)
            else:
                # The ARM core pays a one-time platform start-up cost before
                # the first task is created.
                self._kick_master(self.config.hil_startup_cycles)
            if self._fault_plan is not None:
                self._fault_plan.arm(0)

        # Precomputed handler table: one dict hit per event instead of a
        # string-comparison ladder (this loop delivers hundreds of
        # thousands of events on the fine-grained workloads).  Both ready
        # kinds stay registered so a run can mix emission modes safely.
        handlers = {
            _EV_TASK_VISIBLE: self._on_task_visible,
            _EV_READY_BATCH: self._on_ready_batch,
            _EV_WORKER_DONE: (
                self._on_worker_done_batched
                if self.batch_completions
                else self._on_worker_done
            ),
            _EV_MASTER_DONE: (
                self._on_master_done_batched
                if self.batch_completions
                else self._on_master_done
            ),
        }
        if self._fault_plan is not None:
            handlers = self._fault_plan.wrap(handlers)
        self.queue.dispatch(handlers, horizon=stop_at_cycle)

    def enable_lifecycle_log(self) -> List[Tuple[int, int, int]]:
        """Record ``(cycle, order, task_id)`` at every lifecycle stamp site.

        Must be called before the first ``run``/``step``.  The returned
        list is live: entries accumulate as the simulation advances.  Once
        the clock has passed a horizon ``H``, the set of entries with
        ``cycle <= H`` is final -- submissions are the only stamps assigned
        ahead of the clock, and they are stamped at ``max(now, free_at) >=
        now``, so no handler running after the clock passed ``H`` can add
        an entry at or before ``H``.
        """
        if self._prepared:
            raise RuntimeError("enable_lifecycle_log() must precede the first run")
        if self._lifecycle_log is None:
            self._lifecycle_log = []
        return self._lifecycle_log

    # ------------------------------------------------------------------
    # Picos pipeline
    # ------------------------------------------------------------------
    def _process_submissions(self, now: int) -> None:
        """Feed the Gateway with waiting tasks while it makes progress.

        May free space in the new-task FIFO; the enclosing event handler
        re-arms the master afterwards (every call path in a master-mediated
        mode ends in :meth:`_on_master_done`), so no kick happens here.
        """
        pending_new = self._pending_new
        if not pending_new:
            return
        accel = self.accel
        timelines = self._timelines
        log = self._lifecycle_log
        free_at = self._picos_new_free_at
        stalled = SubmitStatus.STALLED
        while pending_new:
            head = pending_new[0]
            start = now if now > free_at else free_at
            if accel.has_pending_submission:
                if not accel.can_resume():
                    self._submission_blocked = True
                    break
                result = accel.resume_submission()
            else:
                result = accel.submit_task(head)
            if result.status is stalled:
                self._submission_blocked = True
                break
            self._submission_blocked = False
            pending_new.popleft()
            timelines[head.task_id].submitted = start
            if log is not None:
                log.append((start, _LOG_SUBMITTED, head.task_id))
            free_at = start + result.occupancy
            if result.ready:
                self._schedule_ready(start, result.ready)
        self._picos_new_free_at = free_at

    def _process_finish(self, task_id: int, now: int) -> None:
        """Run the finished-task path through the accelerator."""
        start = max(now, self._picos_finish_free_at)
        result = self.accel.notify_finish(task_id)
        self._picos_finish_free_at = start + result.occupancy
        if result.ready:
            self._schedule_ready(start, result.ready)
        # Finishes free TM entries, DM ways and VM versions: retry any
        # blocked submission.
        self._process_submissions(now)

    def _schedule_ready(self, start: int, ready_list) -> None:
        """Schedule the visibility notifications of one accelerator op.

        In the batched mode the notifications targeting the same cycle are
        coalesced into one ``READY_BATCH`` engine event carrying the
        task-id cluster; since nothing else can be scheduled between the
        members of one emit loop, the collapsed event occupies exactly the
        calendar-bucket position the first member would have had, so FIFO
        order against every interleaved event is preserved.  The reference
        mode emits one ``task-visible`` event per notification.
        """
        schedule = self.queue.schedule
        if not self.batch_ready_events:
            for ready in ready_list:
                schedule(start + ready.latency, _EV_TASK_VISIBLE, ready.task_id)
            return
        if len(ready_list) == 1:
            # The overwhelmingly common case: a singleton cluster travels
            # as a bare task id, no list allocation on the hot path.
            ready = ready_list[0]
            schedule(start + ready.latency, _EV_READY_BATCH, ready.task_id)
            return
        # Group by target cycle, preserving first-occurrence order (wake-up
        # latencies grow with chain depth, so the groups are typically
        # contiguous runs already).
        clusters: Dict[int, list] = {}
        for ready in ready_list:
            time = start + ready.latency
            cluster = clusters.get(time)
            if cluster is None:
                clusters[time] = [ready.task_id]
            else:
                cluster.append(ready.task_id)
        for time, task_ids in clusters.items():
            if len(task_ids) == 1:
                schedule(time, _EV_READY_BATCH, task_ids[0])
            else:
                schedule(time, _EV_READY_BATCH, task_ids)

    # ------------------------------------------------------------------
    # ready tasks and workers
    # ------------------------------------------------------------------
    def _on_task_visible(self, task_id: int, now: int) -> None:
        """Reference handler: one visibility notification per engine event."""
        self._timelines[task_id].ready = now
        if self._lifecycle_log is not None:
            self._lifecycle_log.append((now, _LOG_READY, task_id))
        self.ready.push(task_id)
        self._try_dispatch(now)
        self._kick_master(now)

    def _on_ready_batch(self, payload, now: int) -> None:
        """Deliver a cycle-cluster of ready-task visibility notifications.

        The payload is the task-id cluster one accelerator operation made
        visible at this cycle; adjacent same-cycle clusters (from other
        operations) are drained through ``pop_same_kind`` in the same
        activation.  Each task still gets its own push + dispatch pass --
        that keeps the schedule cycle-identical to the per-notification
        reference for *every* scheduling policy (a priority scheduler could
        otherwise see two tasks at once and pick the later, better one) and
        keeps the ready-queue high-water counter exact.  Only the master
        re-arm is shared, which is safe because a dispatch pass in a
        master-mediated mode only queues jobs: the first queued dispatch
        job is the one an eager per-task re-arm would have started, at the
        same cycle and cost.
        """
        timelines = self._timelines
        ready = self.ready
        try_dispatch = self._try_dispatch
        pop_same_kind = self.queue.pop_same_kind
        log = self._lifecycle_log
        extra = self._ready_batch_extra
        while True:
            if payload.__class__ is list:
                extra += len(payload) - 1
                for task_id in payload:
                    timelines[task_id].ready = now
                    if log is not None:
                        log.append((now, _LOG_READY, task_id))
                    ready.push(task_id)
                    try_dispatch(now)
            else:
                # Singleton cluster: the payload is the bare task id.
                timelines[payload].ready = now
                if log is not None:
                    log.append((now, _LOG_READY, payload))
                ready.push(payload)
                try_dispatch(now)
            nxt = pop_same_kind(_EV_READY_BATCH, now)
            if nxt is None:
                break
            payload = nxt.payload
        self._ready_batch_extra = extra
        self._kick_master(now)

    def _try_dispatch(self, now: int) -> None:
        """Hand ready tasks to idle workers (directly or via the ARM core).

        Pure draining: re-arming the master is the enclosing event
        handler's job (the batch re-arm points), so this can run once per
        delivered notification without re-scanning the job queues.
        """
        workers = self.workers
        ready = self.ready
        if self._hw_only:
            while workers.has_idle and len(ready):
                task_id = ready.pop()
                worker_id = workers.reserve(task_id)
                self._start_execution(task_id, worker_id, now)
        else:
            dispatch_jobs = self._master_dispatch_jobs
            while workers.has_idle and len(ready):
                task_id = ready.pop()
                dispatch_jobs.append((task_id, workers.reserve(task_id)))

    def _start_execution(self, task_id: int, worker_id: int, now: int) -> None:
        task = self.program.task(task_id)
        end = self.workers.start_execution(worker_id, now, task.duration)
        self._timelines[task_id].started = now
        self.queue.schedule(end, _EV_WORKER_DONE, (worker_id, task_id))

    def _on_worker_done(self, payload: Tuple[int, int], now: int) -> None:
        """Reference handler: one worker completion per engine event."""
        worker_id, task_id = payload
        self._timelines[task_id].finished = now
        if self._lifecycle_log is not None:
            self._lifecycle_log.append((now, _LOG_RETIRED, task_id))
        self.workers.release(worker_id)
        self._finished_tasks += 1
        if self._hw_only:
            self._process_finish(task_id, now)
        else:
            self._master_finish_jobs.append(task_id)
        self._try_dispatch(now)
        self._kick_master(now)

    def _on_worker_done_batched(self, payload: Tuple[int, int], now: int) -> None:
        """Drain the run of worker completions scheduled for this cycle.

        Completions carry no ordering interaction among themselves -- each
        releases its worker and queues its finish work -- so a same-cycle
        run can retire in one activation with a single dispatch pass at the
        end instead of one per completion.  Everything that determines
        timing (finish-job order, ready-pool pop order, master kicks) is
        preserved, so the schedule is cycle-identical to the one-at-a-time
        reference loop; only which physical worker id picks up a given
        ready task may differ, and workers are homogeneous.
        """
        timelines = self._timelines
        release = self.workers.release
        pop_same_kind = self.queue.pop_same_kind
        hw_only = self._hw_only
        finish_jobs = self._master_finish_jobs
        log = self._lifecycle_log
        finished = self._finished_tasks
        while True:
            worker_id, task_id = payload
            timelines[task_id].finished = now
            if log is not None:
                log.append((now, _LOG_RETIRED, task_id))
            release(worker_id)
            finished += 1
            if hw_only:
                self._process_finish(task_id, now)
            else:
                finish_jobs.append(task_id)
            nxt = pop_same_kind(_EV_WORKER_DONE, now)
            if nxt is None:
                break
            payload = nxt.payload
        self._finished_tasks = finished
        self._try_dispatch(now)
        self._kick_master(now)

    # ------------------------------------------------------------------
    # the ARM core (master) in HW+comm and Full-system modes
    # ------------------------------------------------------------------
    def _kick_master(self, now: int) -> Optional[int]:
        """Arm the idle ARM core with its next job (the batch re-arm point).

        The flat master state machine: job selection (finish > dispatch >
        create, matching the AXI-stream arbitration of the prototype), the
        job cost and the timeline stamp happen inline over precomputed
        locals -- this runs once per event-handler activation, the largest
        measured hot spot before the rewrite.  Each top-level event handler
        re-arms exactly once at its end instead of at every inner call
        site; by then the job queues hold everything the activation
        produced, and because picking a job only pops a deque and schedules
        one event, a deferred re-arm selects the same job at the same cycle
        as the eager per-site kicks did.

        Returns the absolute cycle the armed job completes at, or ``None``
        when the master stays idle (busy, unused, or out of work) -- the
        lazy completion drain in :meth:`_on_master_done` uses it to decide
        whether a same-cycle completion cluster can form at all.
        """
        if self._master_busy or not self._uses_master:
            return None
        finish_jobs = self._master_finish_jobs
        dispatch_jobs = self._master_dispatch_jobs
        if finish_jobs:
            job = (_JOB_FINISH, finish_jobs.popleft())
            cost = self._comm_cycles
        elif dispatch_jobs:
            job = (_JOB_DISPATCH, dispatch_jobs.popleft())
            cost = self._comm_cycles
        else:
            index = self._next_create_index
            if (
                index >= self._num_tasks
                or len(self._pending_new) >= self._new_fifo_depth
            ):
                return None
            task = self.program[index]
            self._next_create_index = index + 1
            job = (_JOB_CREATE, task)
            num_deps = task.num_dependences
            costs = self._create_cost
            # Tasks beyond the TMX capacity are rejected later by the
            # Gateway; cost them through the config call so that error
            # surfaces instead of an index error here.
            cost = (
                costs[num_deps]
                if num_deps < len(costs)
                else self._master_create_cost(num_deps)
            )
            self._timelines[task.task_id].created = now
        self._master_busy = True
        done_at = now + cost
        self.queue.schedule(done_at, _EV_MASTER_DONE, job)
        return done_at

    def _master_create_cost(self, num_deps: int) -> int:
        """Creation cost past the precomputed table (oversized tasks)."""
        cost = self.config.comm_cycles
        if self._full_system:
            cost += self.config.nanos_submission_cycles(num_deps)
        return cost

    def _on_master_done(self, job: Tuple[str, object], now: int) -> None:
        """Reference master-completion delivery: one job per activation."""
        self._master_busy = False
        kind, payload = job
        handler = self._master_done_handlers.get(kind)
        if handler is None:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown master job {kind!r}")
        handler(payload, now)
        self._kick_master(now)

    def _on_master_done_batched(self, job: Tuple[str, object], now: int) -> None:
        """Retire a master job, then lazily drain same-cycle successors.

        The master is serial, so a completion cluster can only form when a
        re-arm lands at the current cycle (zero-cost jobs, ``comm_cycles ==
        0``).  Only in that case is ``pop_same_kind`` consulted: if the
        just-armed ``MASTER_DONE`` is the head of the timeline it is
        retired in this same activation, skipping a full queue round-trip
        per job.  ``pop_same_kind`` refuses anything that is not the exact
        FIFO head and counts the delivery like a normal dispatch, so the
        schedule and ``events_processed`` stay bit-exact with the
        one-activation-per-job reference loop (:meth:`_on_master_done`),
        which ``batch_completions=False`` re-selects.
        """
        handlers = self._master_done_handlers
        pop_same_kind = self.queue.pop_same_kind
        while True:
            self._master_busy = False
            kind, payload = job
            handler = handlers.get(kind)
            if handler is None:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown master job {kind!r}")
            handler(payload, now)
            if self._kick_master(now) != now:
                break
            nxt = pop_same_kind(_EV_MASTER_DONE, now)
            if nxt is None:
                break
            job = nxt.payload

    def _on_master_created(self, task: Task, now: int) -> None:
        self._pending_new.append(task)
        self._process_submissions(now)

    def _on_master_dispatched(self, payload: Tuple[int, int], now: int) -> None:
        task_id, worker_id = payload
        self._start_execution(task_id, worker_id, now)

    def _on_master_finished(self, task_id: int, now: int) -> None:
        self._process_finish(task_id, now)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _build_result(self, aborted_at: Optional[int] = None) -> SimulationResult:
        aborted = self._finished_tasks != self.program.num_tasks
        if aborted and aborted_at is None:
            raise RuntimeError(
                f"simulation ended with {self._finished_tasks} of "
                f"{self.program.num_tasks} tasks executed (deadlock?)"
            )
        # On an early abort, unfinished timelines keep their partial stamps
        # (finished == 0) and only the tasks done by the horizon count.
        makespan = max(
            (t.finished for t in self._timelines.values() if not aborted or t.finished),
            default=0,
        )
        counters = self.accel.stats.as_dict()
        counters["ready_queue_high_water"] = self.ready.max_occupancy
        # Per-delivered-event accounting: a consumed READY_BATCH engine
        # event counts once per visibility notification it carried, so the
        # counter equals the reference per-notification loop's exactly
        # (tests/test_perf_parity.py asserts field-for-field equality).
        counters["events_processed"] = self.queue.processed + self._ready_batch_extra
        if aborted:
            counters["aborted_at_cycle"] = aborted_at
            counters["finished_tasks"] = self._finished_tasks
        else:
            counters["picos_new_path_busy_until"] = self._picos_new_free_at
            counters["picos_finish_path_busy_until"] = self._picos_finish_free_at
        plan = self._fault_plan
        if plan is not None:
            counters["faults_injected"] = plan.injected
            counters["faults_recovered"] = plan.recovered
            if not aborted:
                plan.verify()
        return SimulationResult(
            simulator=f"picos-{self.mode.value}",
            program_name=self.program.name,
            num_workers=self.num_workers,
            makespan=makespan,
            sequential_cycles=self.program.sequential_cycles,
            num_tasks=self.program.num_tasks,
            timelines=self._timelines,
            counters=counters,
            drain_time=self.queue.now,
        )


class _HILFaultAdapter:
    """HIL half of the fault-injection adapter protocol.

    See the protocol definition in :mod:`repro.faults.plan`.  This object
    owns every backend-specific decision of a faulted HIL run: which
    engine kinds the backend-independent packet classes map to, how task
    ids hide inside payloads, and how a worker core is killed -- the
    in-flight task is discarded from the dead core and re-enters the
    scheduler, travelling the existing ARM dispatch (gateway retry) path
    to a replacement core.
    """

    family = "hil"
    #: DCT ready notifications / worker completions / ARM master events.
    packet_classes = {
        "ready": _EV_TASK_VISIBLE,
        "complete": _EV_WORKER_DONE,
        "master": _EV_MASTER_DONE,
    }
    default_packet_class = "ready"
    completion_kind = _EV_WORKER_DONE

    @staticmethod
    def task_id_of(kind: str, payload: object) -> int:
        if kind == _EV_TASK_VISIBLE:
            return payload if isinstance(payload, int) else -1
        if kind == _EV_WORKER_DONE:
            return payload[1]  # type: ignore[index]
        if kind == _EV_MASTER_DONE:
            job_kind, job_payload = payload  # type: ignore[misc]
            if job_kind == _JOB_CREATE:
                return job_payload.task_id
            if job_kind == _JOB_DISPATCH:
                return job_payload[0]
            return job_payload  # a finish job carries the bare task id
        return -1

    @staticmethod
    def worker_count(sim: "HILSimulator") -> int:
        return sim.num_workers

    @staticmethod
    def stall_counters(sim: "HILSimulator") -> Dict[str, int]:
        return sim.accel.stats.as_dict()

    @staticmethod
    def timelines_of(sim: "HILSimulator") -> Dict[int, TaskTimeline]:
        return sim._timelines

    @staticmethod
    def _worker_done_pending(
        sim: "HILSimulator", worker_id: int, task_id: int
    ) -> bool:
        """Whether the completion of ``(worker, task)`` is already queued,
        i.e. the worker is genuinely *executing* (not merely reserved with
        its dispatch message still in flight through the ARM core)."""
        target = (worker_id, task_id)
        current, buckets = sim.queue.snapshot_events()
        for event in current:
            if event.kind == _EV_WORKER_DONE and event.payload == target:
                return True
        for _time, events in buckets:
            for event in events:
                if event.kind == _EV_WORKER_DONE and event.payload == target:
                    return True
        return False

    def kill_worker(
        self, sim: "HILSimulator", plan: "FaultPlan", armed: "ArmedFault", now: int
    ) -> None:
        from repro.faults.payloads import TIMER_KILL

        worker_id = armed.scenario.target.worker_id
        assert worker_id is not None
        task_id = sim.workers.state(worker_id).current_task
        if task_id is None:
            # An idle core is swapped for its hot spare on the spot: the
            # fault is injected and recovered in the same cycle.
            plan.record_injected(now, -1, armed)
            plan.record_recovered(now, -1, armed)
            return
        if not self._worker_done_pending(sim, worker_id, task_id):
            # Reserved, but the dispatch message is still in flight
            # through the ARM core; the kill lands once execution has
            # actually started (bounded by the comm latency).
            plan.schedule_timer(armed, now + 1, TIMER_KILL)
            return
        plan.record_injected(now, task_id, armed)
        # The dead core's completion message must never be believed ...
        armed.killed.add((worker_id, task_id))
        # ... and its in-flight task re-enters the scheduler, travelling
        # the existing dispatch (gateway retry) path to a fresh core.
        armed.awaiting.add(task_id)
        sim.workers.release(worker_id)
        sim.ready.push(task_id)
        sim._try_dispatch(now)
        sim._kick_master(now)

    @staticmethod
    def rejoin_worker(
        sim: "HILSimulator",
        plan: "FaultPlan",
        armed: "ArmedFault",
        worker: Optional[int],
        now: int,
    ) -> None:  # pragma: no cover - the HIL kill path swaps cores instantly
        raise RuntimeError("the HIL kill path never schedules a rejoin")

    @staticmethod
    def intercept_completion(
        sim: "HILSimulator",
        plan: "FaultPlan",
        armed: "ArmedFault",
        payload: Tuple[int, int],
        now: int,
    ) -> bool:
        pair = (payload[0], payload[1])
        if pair in armed.killed:
            armed.killed.discard(pair)
            return True  # stale completion of the dead core
        task_id = payload[1]
        if task_id in armed.awaiting:
            armed.awaiting.discard(task_id)
            plan.record_recovered(now, task_id, armed)
        return False

    @staticmethod
    def completion_delivered(
        sim: "HILSimulator",
        plan: "FaultPlan",
        armed: "ArmedFault",
        payload: Tuple[int, int],
        now: int,
    ) -> None:
        return None


_HIL_FAULT_ADAPTER = _HILFaultAdapter()


class HILStepper(EngineStepper):
    """Cooperative-slicing adapter over a resumable :class:`HILSimulator`.

    The shared :class:`~repro.sim.session.EngineStepper` logic applied to
    the HIL platform; the name survives as the type
    :meth:`HILBackend.make_stepper` hands to sliced sessions (and to the
    snapshot codec, which reaches through it for the simulator state).
    """

    def __init__(self, simulator: HILSimulator) -> None:
        super().__init__(simulator)


# ----------------------------------------------------------------------
# backend registration
# ----------------------------------------------------------------------
class HILBackend:
    """Simulator backend wrapping :class:`HILSimulator` in one HIL mode."""

    #: Request parameters this backend understands (see
    #: :func:`repro.sim.backend.backend_accepted_parameters`).
    accepts = frozenset({"config", "dm_design", "policy", "faults"})

    def __init__(self, mode: HILMode) -> None:
        self.mode = mode
        self.name = mode.backend_name
        self.description = (
            f"Picos hardware prototype, HIL {mode.display_name} mode"
        )

    def open_session(self, request):  # type: ignore[no-untyped-def]
        """Streaming session over this HIL mode (see :mod:`repro.sim.session`)."""
        from repro.sim.session import SimulationSession

        return SimulationSession(self, request)

    def make_stepper(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        config: Optional[PicosConfig] = None,
        dm_design: Optional[DMDesign] = None,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        faults: Sequence["FaultScenario"] = (),
        **kwargs: object,
    ) -> HILStepper:
        """A resumable sliced run with the same defaults as :meth:`simulate`."""
        if config is None:
            if dm_design is not None:
                config = PicosConfig.paper_prototype(dm_design)
            else:
                config = PicosConfig()
        return HILStepper(
            HILSimulator(
                program,
                config=config,
                mode=self.mode,
                num_workers=num_workers,
                policy=policy,
                faults=faults,
            )
        )

    def simulate(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        config: Optional[PicosConfig] = None,
        dm_design: Optional[DMDesign] = None,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        faults: Sequence["FaultScenario"] = (),
        **kwargs: object,
    ) -> SimulationResult:
        if config is None:
            if dm_design is not None:
                config = PicosConfig.paper_prototype(dm_design)
            else:
                config = PicosConfig()
        return HILSimulator(
            program,
            config=config,
            mode=self.mode,
            num_workers=num_workers,
            policy=policy,
            faults=faults,
        ).run()


for _mode in HILMode:
    register_backend(HILBackend(_mode), replace=True)
del _mode
