"""A small discrete-event simulation engine.

The Hardware-In-the-Loop platform and the Nanos++ software-only model are
both driven by the same minimal engine: a time-ordered event queue with
stable FIFO ordering for simultaneous events.  Events are plain
``(kind, payload)`` pairs; the simulators dispatch on ``kind`` themselves,
which keeps the engine free of any domain knowledge.

The engine sits on the hot path of every simulation -- the finest-grained
workloads deliver hundreds of thousands of events per run -- so both
classes are deliberately plain: :class:`Event` is a ``__slots__`` value
object (a frozen dataclass here costs a measurable fraction of total wall
time in allocation alone) and :class:`EventQueue` keeps its heap entries as
small tuples touched through local references.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Tuple


class Event:
    """One scheduled event.

    A plain ``__slots__`` class rather than a dataclass: millions of these
    are allocated per experiment sweep, and skipping the dataclass
    ``__init__`` indirection and per-instance ``__dict__`` keeps event
    allocation off the profile.  Instances compare by value, like the
    frozen dataclass they replaced.
    """

    __slots__ = ("time", "kind", "payload")

    def __init__(self, time: int, kind: str, payload: Any = None) -> None:
        self.time = time
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return f"Event(time={self.time!r}, kind={self.kind!r}, payload={self.payload!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.time == other.time
            and self.kind == other.kind
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.time, self.kind, self.payload))


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking.

    Events scheduled for the same time are delivered in scheduling order,
    which keeps every simulation in this package fully deterministic (a
    property the test suite relies on).
    """

    __slots__ = ("_heap", "_count", "_now", "_processed")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._count = 0
        self._now = 0
        self._processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event at absolute ``time``.

        Scheduling in the past is a simulation bug; it raises immediately so
        the offending simulator logic is easy to locate.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event {kind!r} at {time} before current time "
                f"{self._now}"
            )
        event = Event(time, kind, payload)
        self._count += 1
        heapq.heappush(self._heap, (time, self._count, event))
        return event

    def schedule_in(self, delay: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` cycles after the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, kind, payload)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time (time of the last event popped)."""
        return self._now

    @property
    def empty(self) -> bool:
        """Whether any event remains to be processed."""
        return not self._heap

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events delivered so far."""
        return self._processed

    @property
    def peek_time(self) -> Optional[int]:
        """Time of the next pending event (``None`` when the queue is empty)."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[Event]:
        """Deliver the next event, advancing the simulation clock."""
        if not self._heap:
            return None
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        return event

    def pop_same_kind(self, kind: str, time: int) -> Optional[Event]:
        """Deliver the next event only if it matches ``kind`` at ``time``.

        This is the batching primitive of the simulators: a run of worker
        completions scheduled for the same cycle can be drained in one
        handler activation without disturbing the delivery order of any
        interleaved event (the head of the heap -- including its FIFO
        tie-break -- decides, exactly as :meth:`pop` would).
        """
        heap = self._heap
        if not heap:
            return None
        head = heap[0]
        if head[0] != time or head[2].kind != kind:
            return None
        heapq.heappop(heap)
        self._now = time
        self._processed += 1
        return head[2]

    def __iter__(self) -> Iterator[Event]:
        """Iterate over events until the queue drains."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            time, _, event = heappop(heap)
            self._now = time
            self._processed += 1
            yield event

    def iter_until(self, horizon: int) -> Iterator[Event]:
        """Iterate events stamped no later than ``horizon`` cycles.

        Later events stay queued, so a simulator can stop at a cycle
        horizon (early abort) and still inspect -- or resume -- the
        remaining schedule.  The clock only advances through delivered
        events and therefore never passes the horizon.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][0] <= horizon:
            time, _, event = heappop(heap)
            self._now = time
            self._processed += 1
            yield event
