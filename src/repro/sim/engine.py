"""A small discrete-event simulation engine.

The Hardware-In-the-Loop platform and the Nanos++ software-only model are
both driven by the same minimal engine: a time-ordered event queue with
stable FIFO ordering for simultaneous events.  Events are plain
``(kind, payload)`` pairs; the simulators dispatch on ``kind`` themselves,
which keeps the engine free of any domain knowledge.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One scheduled event."""

    time: int
    kind: str
    payload: Any = None


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking.

    Events scheduled for the same time are delivered in scheduling order,
    which keeps every simulation in this package fully deterministic (a
    property the test suite relies on).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0
        self._processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event at absolute ``time``.

        Scheduling in the past is a simulation bug; it raises immediately so
        the offending simulator logic is easy to locate.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event {kind!r} at {time} before current time "
                f"{self._now}"
            )
        event = Event(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, next(self._counter), event))
        return event

    def schedule_in(self, delay: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` cycles after the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, kind, payload)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time (time of the last event popped)."""
        return self._now

    @property
    def empty(self) -> bool:
        """Whether any event remains to be processed."""
        return not self._heap

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events delivered so far."""
        return self._processed

    @property
    def peek_time(self) -> Optional[int]:
        """Time of the next pending event (``None`` when the queue is empty)."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[Event]:
        """Deliver the next event, advancing the simulation clock."""
        if not self._heap:
            return None
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        return event

    def __iter__(self) -> Iterator[Event]:
        """Iterate over events until the queue drains."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event

    def iter_until(self, horizon: int) -> Iterator[Event]:
        """Iterate events stamped no later than ``horizon`` cycles.

        Later events stay queued, so a simulator can stop at a cycle
        horizon (early abort) and still inspect -- or resume -- the
        remaining schedule.  The clock only advances through delivered
        events and therefore never passes the horizon.
        """
        while self._heap and self._heap[0][0] <= horizon:
            event = self.pop()
            assert event is not None
            yield event
