"""A small discrete-event simulation engine.

The Hardware-In-the-Loop platform and the Nanos++ software-only model are
both driven by the same minimal engine: a time-ordered event queue with
stable FIFO ordering for simultaneous events.  Events are plain
``(kind, payload)`` pairs; the simulators dispatch on ``kind`` themselves,
which keeps the engine free of any domain knowledge.

The engine sits on the hot path of every simulation -- the finest-grained
workloads deliver hundreds of thousands of events per run -- so both
classes are deliberately plain: :class:`Event` is a ``__slots__`` value
object (a frozen dataclass here costs a measurable fraction of total wall
time in allocation alone) and :class:`EventQueue` is a *calendar queue*: a
bucketed timeline keyed by cycle stamp with a small heap of distinct bucket
times.  The event streams HIL and Nanos++ generate are heavily clustered --
runs of worker completions and master jobs land on the same cycle -- so
nearly every operation is an O(1) dict hit plus a list append/index instead
of an O(log n) binary-heap sift per event; the heap only moves once per
*distinct* timestamp.  The previous binary-heap implementation is kept as
:class:`HeapEventQueue`, the reference the differential suite checks the
calendar queue against (see ``docs/engine.md``).

Cycle-identity contract
-----------------------

Every engine optimization must be *cycle-identical*: delivery order is by
time, then by scheduling order within a time, exactly as the heap
reference defines it, and no observable quantity (makespan, per-task
timelines, delivered-event counts) may move.  Three test nets pin the
contract:

* ``tests/test_differential.py`` fuzzes random schedule / pop / peek /
  ``pop_same_kind`` / ``iter_until`` interleavings through both queue
  implementations and asserts event-for-event identity (seed-pinned in
  CI with ``--hypothesis-seed=0``);
* ``tests/test_perf_parity.py`` digests full simulation results against
  golden values recorded from the pre-optimization engine;
* ``tests/test_sim_engine_worker_results.py`` pins the O(1)
  ``pop_same_kind`` miss path (a miss inspects only the head and mutates
  nothing -- see ``docs/engine.md``).
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)


class Event:
    """One scheduled event.

    A plain ``__slots__`` class rather than a dataclass: millions of these
    are allocated per experiment sweep, and skipping the dataclass
    ``__init__`` indirection and per-instance ``__dict__`` keeps event
    allocation off the profile.  Instances compare by value, like the
    frozen dataclass they replaced.
    """

    __slots__ = ("time", "kind", "payload")

    def __init__(self, time: int, kind: str, payload: Any = None) -> None:
        self.time = time
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return f"Event(time={self.time!r}, kind={self.kind!r}, payload={self.payload!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.time == other.time
            and self.kind == other.kind
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.time, self.kind, self.payload))


class EventQueue:
    """Calendar-queue event timeline with deterministic tie-breaking.

    Events scheduled for the same time are delivered in scheduling order,
    which keeps every simulation in this package fully deterministic (a
    property the test suite relies on).  The delivery order -- by time,
    then by scheduling order within a time -- is exactly the order of the
    binary-heap reference (:class:`HeapEventQueue`); only the cost model
    differs.

    Internally, events live in per-timestamp *buckets* (plain lists in
    arrival order) and a min-heap tracks the distinct bucket times.  A
    bucket is detached from the calendar when delivery reaches its time and
    is then drained by index; an event scheduled for the *current* time
    while its bucket drains opens a fresh bucket, which the time heap
    orders immediately after the draining one -- preserving global FIFO
    order among simultaneous events.  ``pop_same_kind`` -- the batching
    primitive the simulators use to retire same-cycle completion runs in
    one handler activation -- is an O(1) head test in every case, including
    the many-kinds-interleaved-at-one-cycle schedules where a scan-and-
    re-push implementation would degrade to O(n) per event.
    """

    __slots__ = (
        "_buckets",
        "_times",
        "_current",
        "_current_pos",
        "_now",
        "_pending",
        "_processed",
    )

    def __init__(self) -> None:
        #: time -> events scheduled for that time, in scheduling order
        #: (buckets not yet reached by delivery).
        self._buckets: Dict[int, List[Event]] = {}
        #: Min-heap of the distinct times present in ``_buckets``.
        self._times: List[int] = []
        #: Bucket currently being drained, and the drain position.
        self._current: List[Event] = []
        self._current_pos = 0
        self._now = 0
        self._pending = 0
        self._processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event at absolute ``time``.

        Scheduling in the past is a simulation bug; it raises immediately so
        the offending simulator logic is easy to locate.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event {kind!r} at {time} before current time "
                f"{self._now}"
            )
        event = Event(time, kind, payload)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._pending += 1
        return event

    def schedule_in(self, delay: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` cycles after the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, kind, payload)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time (time of the last event popped)."""
        return self._now

    @property
    def empty(self) -> bool:
        """Whether any event remains to be processed."""
        return self._pending == 0

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return self._pending

    @property
    def processed(self) -> int:
        """Number of events delivered so far."""
        return self._processed

    def _head(self) -> Optional[Event]:
        """The next event to deliver, without consuming it.

        Purely a peek: a calendar bucket is only detached at consumption
        time (:meth:`_consume_head`).  Detaching on a peek would be wrong:
        until an event of a bucket is actually delivered the clock has not
        reached its time, so a handler may still schedule events at
        *earlier* times, which must overtake the peeked bucket.
        """
        if self._current_pos < len(self._current):
            return self._current[self._current_pos]
        if not self._times:
            return None
        return self._buckets[self._times[0]][0]

    def _consume_head(self) -> Event:
        """Deliver the head event (the caller checked one exists).

        Once the first event of a bucket is delivered the clock equals the
        bucket's time, scheduling anything earlier raises, and same-time
        arrivals open a fresh bucket ordered behind this one -- so the
        detached bucket is guaranteed to stay at the front until drained.
        """
        if self._current_pos >= len(self._current):
            time = heapq.heappop(self._times)
            self._current = self._buckets.pop(time)
            self._current_pos = 0
        event = self._current[self._current_pos]
        self._current_pos += 1
        self._pending -= 1
        self._now = event.time
        self._processed += 1
        return event

    @property
    def peek_time(self) -> Optional[int]:
        """Time of the next pending event (``None`` when the queue is empty)."""
        head = self._head()
        return None if head is None else head.time

    def pop(self) -> Optional[Event]:
        """Deliver the next event, advancing the simulation clock."""
        if self._head() is None:
            return None
        return self._consume_head()

    def pop_same_kind(self, kind: str, time: int) -> Optional[Event]:
        """Deliver the next event only if it matches ``kind`` at ``time``.

        This is the batching primitive of the simulators: a run of worker
        completions scheduled for the same cycle can be drained in one
        handler activation without disturbing the delivery order of any
        interleaved event (the head of the timeline -- including its FIFO
        tie-break -- decides, exactly as :meth:`pop` would).  The head test
        is O(1) regardless of how many same-time events of *other* kinds
        are interleaved behind it.
        """
        event = self._head()
        if event is None or event.time != time or event.kind != kind:
            return None
        return self._consume_head()

    def dispatch(
        self,
        handlers: Mapping[str, Callable[[Any, int], None]],
        horizon: Optional[int] = None,
    ) -> None:
        """Drain the queue through a handler table (the fused hot loop).

        One loop delivers events and dispatches on their kind -- the inner
        loop shared by the HIL and Nanos++ simulators.  Fusing delivery and
        dispatch avoids a generator suspend/resume per event, which is a
        measurable fraction of wall time at hundreds of thousands of
        events per run; delivery order, clock movement and the processed
        count are exactly those of iterating and dispatching by hand
        (:func:`dispatch_events` over ``iter(queue)``), which the
        differential suite checks against the heap reference.  With
        ``horizon`` the loop stops -- events still queued -- once the next
        event is stamped past it, like :meth:`iter_until`.  Handlers run
        as ``handler(payload, time)``; an unknown kind raises.
        """
        get = handlers.get
        if horizon is not None:
            while True:
                event = self._head()
                if event is None or event.time > horizon:
                    return
                self._consume_head()
                handler = get(event.kind)
                if handler is None:  # pragma: no cover - defensive
                    raise RuntimeError(f"unknown event kind {event.kind!r}")
                handler(event.payload, event.time)
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        while True:
            # Re-read the draining bucket every iteration: a handler may
            # have consumed from it (pop_same_kind) or opened a fresh one.
            current = self._current
            pos = self._current_pos
            if pos < len(current):
                event = current[pos]
                self._current_pos = pos + 1
            else:
                if not times:
                    return
                time = heappop(times)
                current = buckets.pop(time)
                self._current = current
                self._current_pos = 1
                event = current[0]
            self._pending -= 1
            self._now = event.time
            self._processed += 1
            handler = get(event.kind)
            if handler is None:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {event.kind!r}")
            handler(event.payload, event.time)

    def __iter__(self) -> Iterator[Event]:
        """Iterate over events until the queue drains."""
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        while True:
            current = self._current
            pos = self._current_pos
            if pos < len(current):
                event = current[pos]
                self._current_pos = pos + 1
            else:
                if not times:
                    return
                time = heappop(times)
                current = buckets.pop(time)
                self._current = current
                self._current_pos = 1
                event = current[0]
            self._pending -= 1
            self._now = event.time
            self._processed += 1
            yield event

    def iter_until(self, horizon: int) -> Iterator[Event]:
        """Iterate events stamped no later than ``horizon`` cycles.

        Later events stay queued, so a simulator can stop at a cycle
        horizon (early abort) and still inspect -- or resume -- the
        remaining schedule.  The clock only advances through delivered
        events and therefore never passes the horizon.
        """
        while True:
            event = self._head()
            if event is None or event.time > horizon:
                return
            yield self._consume_head()

    # ------------------------------------------------------------------
    # snapshot / restore (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def snapshot_events(self) -> Tuple[List[Event], List[Tuple[int, List[Event]]]]:
        """Non-destructive export of the pending schedule, in delivery order.

        Returns ``(current, buckets)``: the undelivered remainder of the
        detached draining bucket, and the calendar buckets as ``(time,
        events)`` pairs sorted by time.  This is purely a read -- unlike
        :meth:`_consume_head` it detaches nothing, so a peeked-but-unstarted
        bucket keeps its calendar slot and post-peek earlier schedules still
        overtake it.  Concatenating ``current`` with the sorted buckets is
        exactly the order :meth:`pop` would deliver (at most one bucket
        exists per distinct time, and every calendar bucket is stamped at or
        after the detached one).
        """
        current = self._current[self._current_pos :]
        buckets = [
            (time, list(self._buckets[time])) for time in sorted(self._buckets)
        ]
        return current, buckets

    def restore_events(
        self,
        now: int,
        processed: int,
        current: List[Event],
        buckets: List[Tuple[int, List[Event]]],
    ) -> None:
        """Rebuild the queue from a :meth:`snapshot_events` export.

        The detached bucket is reinstated normalized to drain position 0
        (delivery order only depends on the undelivered remainder), the
        calendar is rebuilt from the bucket pairs, and the distinct-times
        heap is recreated -- a sorted list is a valid binary min-heap, so no
        ``heapify`` is needed.  Clock and processed-count are restored
        verbatim so a resumed run schedules and counts exactly like the
        original.
        """
        self._now = now
        self._processed = processed
        self._current = list(current)
        self._current_pos = 0
        self._buckets = {time: list(events) for time, events in buckets}
        self._times = sorted(self._buckets)
        self._pending = len(self._current) + sum(
            len(events) for events in self._buckets.values()
        )


class HeapEventQueue:
    """The binary-heap reference implementation of the event queue.

    This is the pre-calendar-queue :class:`EventQueue`, kept verbatim: one
    ``(time, insertion count, event)`` tuple per event on a ``heapq``.  It
    defines the delivery order the calendar queue must reproduce exactly,
    and the differential suite (``tests/test_differential.py``) drives both
    implementations through random schedules and asserts event-for-event
    identity.  Simulators always use :class:`EventQueue`; this class exists
    for testing and as executable documentation of the ordering contract.
    """

    __slots__ = ("_heap", "_count", "_now", "_processed")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._count = 0
        self._now = 0
        self._processed = 0

    def schedule(self, time: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event at absolute ``time`` (raises on the past)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event {kind!r} at {time} before current time "
                f"{self._now}"
            )
        event = Event(time, kind, payload)
        self._count += 1
        heapq.heappush(self._heap, (time, self._count, event))
        return event

    def schedule_in(self, delay: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` cycles after the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, kind, payload)

    @property
    def now(self) -> int:
        return self._now

    @property
    def empty(self) -> bool:
        return not self._heap

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    @property
    def peek_time(self) -> Optional[int]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[Event]:
        if not self._heap:
            return None
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        return event

    def pop_same_kind(self, kind: str, time: int) -> Optional[Event]:
        heap = self._heap
        if not heap:
            return None
        head = heap[0]
        if head[0] != time or head[2].kind != kind:
            return None
        heapq.heappop(heap)
        self._now = time
        self._processed += 1
        return head[2]

    def dispatch(
        self,
        handlers: Mapping[str, Callable[[Any, int], None]],
        horizon: Optional[int] = None,
    ) -> None:
        """Reference dispatch loop (plain iteration + table lookup)."""
        events = self.iter_until(horizon) if horizon is not None else iter(self)
        dispatch_events(events, handlers)

    def __iter__(self) -> Iterator[Event]:
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            time, _, event = heappop(heap)
            self._now = time
            self._processed += 1
            yield event

    def iter_until(self, horizon: int) -> Iterator[Event]:
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][0] <= horizon:
            time, _, event = heappop(heap)
            self._now = time
            self._processed += 1
            yield event


def intercept_handlers(
    handlers: Mapping[str, Callable[[Any, int], None]],
    intercept: Callable[[str, Any, int, Callable[[Any, int], None]], None],
) -> Dict[str, Callable[[Any, int], None]]:
    """Route every delivery of a handler table through ``intercept``.

    The engine-side half of the fault-injection layer (see
    ``repro.faults``): returns a *new* table whose entries call
    ``intercept(kind, payload, time, original_handler)`` instead of the
    handler directly, leaving the interceptor free to withhold, defer or
    duplicate the delivery.  The input table is not mutated and dispatch
    itself is untouched, so a run that never wraps its table -- the
    default -- dispatches through exactly the same handlers as before;
    this is what keeps unfaulted runs cycle-identical (the injection
    layer is zero-cost when off).

    Note for interceptor authors: the *batched* simulator loops drain
    same-kind events internally via :meth:`EventQueue.pop_same_kind`,
    which bypasses dispatch-level interception -- wrap only tables whose
    handlers deliver one event per call (armed fault plans force the
    reference event-per-event loops for exactly this reason).
    """

    def make(
        kind: str, handler: Callable[[Any, int], None]
    ) -> Callable[[Any, int], None]:
        def deliver(payload: Any, time: int) -> None:
            intercept(kind, payload, time, handler)

        return deliver

    return {kind: make(kind, handler) for kind, handler in handlers.items()}


def dispatch_events(
    events: Iterable[Event],
    handlers: Mapping[str, Callable[[Any, int], None]],
) -> None:
    """Drive an event stream through a handler table.

    The shared inner loop of the HIL and Nanos++ simulators: one dict hit
    per event dispatches on its kind (no string-comparison ladder), and an
    unknown kind is a simulation bug that raises immediately.  Handlers
    are called as ``handler(payload, time)``; ``events`` is typically an
    :class:`EventQueue` (drain everything) or the iterator returned by
    :meth:`EventQueue.iter_until` (stop at a cycle horizon).
    """
    get = handlers.get
    for event in events:
        handler = get(event.kind)
        if handler is None:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown event kind {event.kind!r}")
        handler(event.payload, event.time)
