"""Typed simulation requests: the complete description of one run.

A :class:`SimulationRequest` is the validated, hashable value object behind
every simulation in the package: which program (by workload reference or as
an in-memory :class:`~repro.runtime.task.TaskProgram`), which simulator
backend, how many workers, and the backend-specific knobs (Picos
configuration, Dependence Memory design shortcut, scheduling policy,
Nanos++ overhead model, random seed).

The request replaces the historical keyword soup of ``simulate_program``:
instead of every backend silently swallowing the parameters it does not
understand through ``**kwargs``, a request is checked against the
backend's declared parameter set (:func:`repro.sim.backend.
backend_accepted_parameters`) and rejects unknown ones with a clear
:class:`InvalidRequestError`.  Because the request is a frozen dataclass it
is also the natural unit for cache keys (:meth:`SimulationRequest.
cache_key`), sweep templates (:mod:`repro.experiments.runner`) and future
multi-tenant serving queues.

Typical use::

    request = SimulationRequest.for_workload(
        "cholesky", block_size=32, backend="hil-full", num_workers=8
    )
    result = simulate_request(request)          # repro.sim.driver
    session = open_session(request)             # repro.sim.session

Program references
------------------
``request.program`` is either a :class:`WorkloadRef` (a declarative
"build me benchmark X at block size Y" reference, resolved through the
application registry and memoized) or an :class:`InlineProgramRef`
(wrapping an already-built program).  Both expose ``build()`` and
``trace_digest()``, so cache keys can be derived without re-serialising
the trace on every lookup.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import DMDesign, PicosConfig
from repro.core.hashing import fingerprint_mapping, stable_digest
from repro.core.scheduler import SchedulingPolicy
from repro.faults.scenario import FaultScenario
from repro.runtime.overhead import NanosOverheadModel
from repro.runtime.task import TaskProgram


class InvalidRequestError(ValueError):
    """A simulation request carries parameters its backend does not accept.

    Raised by :meth:`SimulationRequest.validate` (and therefore by the
    typed entry points :func:`repro.sim.driver.simulate_request` and
    :func:`repro.sim.session.open_session`).  The legacy
    ``simulate_program`` shim downgrades this to a ``DeprecationWarning``
    and drops the offending parameters instead, preserving the historical
    silent-swallowing behaviour for old call sites.
    """

    def __init__(self, backend: str, parameters: Tuple[str, ...]) -> None:
        self.backend = backend
        self.parameters = parameters
        names = ", ".join(repr(p) for p in parameters)
        super().__init__(
            f"backend {backend!r} does not accept parameter(s) {names}; "
            "remove them from the SimulationRequest (the legacy "
            "simulate_program shim warns and drops them instead)"
        )


# ----------------------------------------------------------------------
# program references
# ----------------------------------------------------------------------
#: Recently built programs; bounded because the finest-grained workloads
#: reach 140k tasks each -- retaining every one for the life of the process
#: would hold hundreds of MB that per-experiment loops released naturally.
_PROGRAM_MEMO: "OrderedDict[Tuple[str, Optional[int], Optional[int]], TaskProgram]" = (
    OrderedDict()
)
_PROGRAM_MEMO_LIMIT = 8
#: Trace digests are tiny strings, so this memo is unbounded.
_TRACE_DIGEST_MEMO: Dict[Tuple[str, Optional[int], Optional[int]], str] = {}


def build_workload(
    workload: str,
    block_size: Optional[int] = None,
    problem_size: Optional[int] = None,
) -> TaskProgram:
    """Build (and memoize) the task program of one workload reference.

    Synthetic cases (``case1`` ... ``case7``) take no block size; everything
    else goes through :func:`repro.apps.registry.build_benchmark`.  A small
    LRU keeps the programs of the sweep currently in flight alive without
    pinning every workload of a long session in memory.
    """
    memo_key = (workload, block_size, problem_size)
    program = _PROGRAM_MEMO.get(memo_key)
    if program is None:
        from repro.traces.synthetic import SYNTHETIC_CASES, synthetic_case

        if workload in SYNTHETIC_CASES:
            program = synthetic_case(workload)
        else:
            from repro.apps.registry import build_benchmark

            if block_size is None:
                raise ValueError(f"workload {workload!r} requires a block size")
            program = build_benchmark(workload, block_size, problem_size=problem_size)
        _PROGRAM_MEMO[memo_key] = program
        while len(_PROGRAM_MEMO) > _PROGRAM_MEMO_LIMIT:
            _PROGRAM_MEMO.popitem(last=False)
    else:
        _PROGRAM_MEMO.move_to_end(memo_key)
    return program


def workload_trace_digest(
    workload: str,
    block_size: Optional[int] = None,
    problem_size: Optional[int] = None,
) -> str:
    """Stable digest of the workload's trace content (memoized).

    The digest covers the full serialised trace (every task, dependence,
    duration and label), so any change to a generator invalidates exactly
    the cache entries it affects.
    """
    memo_key = (workload, block_size, problem_size)
    digest = _TRACE_DIGEST_MEMO.get(memo_key)
    if digest is None:
        digest = _program_digest(build_workload(workload, block_size, problem_size))
        _TRACE_DIGEST_MEMO[memo_key] = digest
    return digest


def _program_digest(program: TaskProgram) -> str:
    from repro.traces.trace import TaskTrace

    return stable_digest(TaskTrace(program).dumps())


@dataclass(frozen=True)
class WorkloadRef:
    """Declarative reference to a buildable workload.

    The reference is tiny, hashable and picklable, so it travels through
    cache keys and across process boundaries; the program itself is rebuilt
    (deterministically) and memoized wherever it is needed.
    """

    #: Benchmark name (``repro.apps.registry``) or synthetic case name.
    workload: str
    #: Block size (or H264dec granularity); ``None`` for synthetic cases.
    block_size: Optional[int] = None
    #: Problem-size override; ``None`` selects the paper's size.
    problem_size: Optional[int] = None

    def build(self) -> TaskProgram:
        """The referenced program (memoized across requests)."""
        return build_workload(self.workload, self.block_size, self.problem_size)

    def trace_digest(self) -> str:
        """Stable digest of the referenced trace (memoized)."""
        return workload_trace_digest(self.workload, self.block_size, self.problem_size)


@dataclass(frozen=True)
class InlineProgramRef:
    """Reference wrapping an already-built in-memory program.

    Used by call sites that construct programs directly (tests, examples,
    streaming sessions).  Identity follows the wrapped program object; the
    trace digest is computed from the serialised trace on first use and
    cached on the reference.
    """

    program: TaskProgram

    def build(self) -> TaskProgram:
        return self.program

    def trace_digest(self) -> str:
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = _program_digest(self.program)
            object.__setattr__(self, "_digest", cached)
        return cached


#: Anything a request can carry as its program reference.
ProgramRef = Union[WorkloadRef, InlineProgramRef]


def config_fields(config: PicosConfig) -> Dict[str, object]:
    """A configuration's fields as JSON-safe scalars (enums -> values).

    Shared by :meth:`SimulationRequest.config_fingerprint` and the
    experiment runner's ``config_extra`` encoding: cache-key stability
    depends on both rendering a configuration identically.
    """
    return {
        f.name: getattr(config, f.name).value
        if isinstance(getattr(config, f.name), DMDesign)
        else getattr(config, f.name)
        for f in dataclasses.fields(config)
    }


# ----------------------------------------------------------------------
# the request itself
# ----------------------------------------------------------------------
#: Field names checked against a backend's accepted-parameter set, in the
#: deterministic order they are reported and forwarded; the program and the
#: worker count are universal and always allowed.  Kept in lockstep with
#: the registry-side declaration vocabulary.
_CHECKED_PARAMETERS: Tuple[str, ...] = (
    "config",
    "dm_design",
    "policy",
    "overhead",
    "seed",
    "faults",
)
from repro.sim.backend import REQUEST_PARAMETERS as _REQUEST_PARAMETERS  # noqa: E402

assert frozenset(_CHECKED_PARAMETERS) == _REQUEST_PARAMETERS, (
    "sim.request._CHECKED_PARAMETERS and sim.backend.REQUEST_PARAMETERS "
    "must declare the same parameter vocabulary"
)


@dataclass(frozen=True)
class StreamOptions:
    """Delivery preferences of a streamed/served simulation.

    These knobs shape *how* a run is delivered -- never *what* it computes
    -- so they are deliberately excluded from :meth:`SimulationRequest.
    cache_key` and from the backend parameter check: two requests differing
    only in stream options describe the same simulation.
    """

    #: Cycle budget per cooperative slice (``None`` = the session default,
    #: :data:`repro.sim.session.DEFAULT_SLICE_CYCLES`).
    slice_cycles: Optional[int] = None
    #: Maximum lifecycle events per streamed protocol frame (``None`` = the
    #: server default).
    event_batch: Optional[int] = None
    #: Whether lifecycle events are streamed at all (``False`` delivers the
    #: final result only).
    events: bool = True

    def __post_init__(self) -> None:
        if self.slice_cycles is not None and self.slice_cycles < 1:
            raise ValueError("slice_cycles must be >= 1")
        if self.event_batch is not None and self.event_batch < 1:
            raise ValueError("event_batch must be >= 1")


#: Tenant name a request carries when none was specified.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class SimulationRequest:
    """The complete, validated, hashable description of one simulation.

    Attributes
    ----------
    program:
        What to simulate: a :class:`WorkloadRef` or :class:`InlineProgramRef`.
    backend:
        Name of the simulator backend in the registry of
        :mod:`repro.sim.backend`.
    num_workers:
        Worker cores (threads, for the software runtime); universal.
    config:
        Full Picos configuration (``hil-*`` backends).
    dm_design:
        Shortcut selecting a paper-prototype configuration by Dependence
        Memory design; folded into ``config`` by :meth:`normalize`.
    policy:
        Ready-queue policy of the Task Scheduler (``hil-*`` backends).
    overhead:
        Nanos++ overhead model override (``nanos`` backend).
    seed:
        Random seed, reserved for stochastic plug-in backends; the five
        built-in simulators are deterministic and do not accept it.
    faults:
        Armed fault scenarios (:class:`repro.faults.FaultScenario`),
        injected deterministically by the engine-driven backends; the
        analytical ``perfect`` backend rejects them.  Part of the cache
        key: a faulted run is a different simulation.
    tenant:
        Accounting identity for the serving layer (admission control and
        quotas, :mod:`repro.service`); has no effect on the simulation and
        is excluded from the cache key, so identical requests from
        different tenants share one cache entry.
    stream:
        Delivery preferences (:class:`StreamOptions`); ``None`` means
        server/session defaults.  Also cache-key-neutral.
    """

    program: ProgramRef
    backend: str = "hil-full"
    num_workers: int = 12
    config: Optional[PicosConfig] = None
    dm_design: Optional[DMDesign] = None
    policy: SchedulingPolicy = SchedulingPolicy.FIFO
    overhead: Optional[NanosOverheadModel] = None
    seed: Optional[int] = None
    faults: Tuple[FaultScenario, ...] = ()
    tenant: str = DEFAULT_TENANT
    stream: Optional[StreamOptions] = None

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            # Accept any sequence of scenarios; canonicalize to a tuple so
            # the request stays hashable and order-stable.
            object.__setattr__(self, "faults", tuple(self.faults))
        for scenario in self.faults:
            if not isinstance(scenario, FaultScenario):
                raise TypeError(
                    "faults must be FaultScenario instances "
                    f"(got {type(scenario).__name__})"
                )
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("a request needs a non-empty backend name")
        if self.num_workers < 1:
            raise ValueError("at least one worker is required")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ValueError("a request needs a non-empty tenant name")
        if not hasattr(self.program, "build") or not hasattr(
            self.program, "trace_digest"
        ):
            raise TypeError(
                "program must be a WorkloadRef or InlineProgramRef "
                "(wrap TaskProgram instances with SimulationRequest.for_program)"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_program(cls, program: TaskProgram, **fields: object) -> "SimulationRequest":
        """Build a request around an in-memory program."""
        return cls(program=InlineProgramRef(program), **fields)  # type: ignore[arg-type]

    @classmethod
    def for_workload(
        cls,
        workload: str,
        block_size: Optional[int] = None,
        problem_size: Optional[int] = None,
        **fields: object,
    ) -> "SimulationRequest":
        """Build a request around a declarative workload reference."""
        ref = WorkloadRef(workload, block_size, problem_size)
        return cls(program=ref, **fields)  # type: ignore[arg-type]

    @classmethod
    def streaming(cls, name: str = "", **fields: object) -> "SimulationRequest":
        """Build a request with an initially empty program.

        Used with :func:`repro.sim.session.open_session` when tasks arrive
        online through :meth:`SimulationSession.submit` instead of being
        known up front.
        """
        return cls.for_program(TaskProgram(name=name), **fields)

    # ------------------------------------------------------------------
    # validation and normalization
    # ------------------------------------------------------------------
    def accepted_parameters(self) -> FrozenSet[str]:
        """The backend's declared parameter set (resolved via the registry)."""
        from repro.sim.backend import backend_accepted_parameters, get_backend

        return backend_accepted_parameters(get_backend(self.backend))

    def rejected_parameters(self) -> Tuple[str, ...]:
        """Names of non-default parameters the backend does not accept.

        Only *non-default* values count: every request carries a ``policy``
        field, but only an explicit non-FIFO policy is a parameter in the
        rejection sense.
        """
        accepts = self.accepted_parameters()
        rejected: List[str] = []
        for name in _CHECKED_PARAMETERS:
            if name in accepts:
                continue
            value = getattr(self, name)
            default = _FIELD_DEFAULTS[name]
            if value != default:
                rejected.append(name)
        return tuple(rejected)

    def validate(self) -> "SimulationRequest":
        """Raise :class:`InvalidRequestError` on unaccepted parameters."""
        rejected = self.rejected_parameters()
        if rejected:
            raise InvalidRequestError(self.backend, rejected)
        return self

    def without(self, names: Iterable[str]) -> "SimulationRequest":
        """A copy with the named parameters reset to their defaults."""
        changes = {name: _FIELD_DEFAULTS[name] for name in names}
        return replace(self, **changes)

    def normalize(self) -> "SimulationRequest":
        """Validate and return the canonical form of the request.

        The ``dm_design`` shortcut is folded into a full paper-prototype
        ``config`` (when the backend takes a configuration and none was
        given explicitly), so two requests describing the same simulation
        normalize to the same value.
        """
        normalized = self.validate()
        if (
            normalized.dm_design is not None
            and "config" in normalized.accepted_parameters()
        ):
            config = normalized.config
            if config is None:
                config = PicosConfig.paper_prototype(normalized.dm_design)
            return replace(normalized, config=config, dm_design=None)
        return normalized

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    def build_program(self) -> TaskProgram:
        """The program to simulate (built/memoized through the reference)."""
        return self.program.build()

    def trace_digest(self) -> str:
        """Stable digest of the request's trace content."""
        return self.program.trace_digest()

    def resolved_config(self) -> Optional[PicosConfig]:
        """The effective Picos configuration (``dm_design`` folded in)."""
        if self.config is not None:
            return self.config
        if self.dm_design is not None:
            return PicosConfig.paper_prototype(self.dm_design)
        return None

    def config_fingerprint(self) -> str:
        """Stable fingerprint of the effective configuration.

        ``None`` fingerprints as the default :class:`PicosConfig`, so
        requests for configuration-blind backends still produce stable,
        comparable keys.
        """
        config = self.resolved_config() or PicosConfig()
        return fingerprint_mapping(config_fields(config))

    def cache_key(
        self,
        *,
        prefix: Sequence[object] = (),
        suffix: Sequence[object] = (),
        trace_digest: Optional[str] = None,
    ) -> str:
        """Stable content-addressed key of this request.

        The key combines the trace digest, the backend name, the effective
        configuration fingerprint, the worker count and the policy -- the
        exact inputs that determine a deterministic simulation's outcome --
        plus the overhead model and seed when set.  ``prefix``/``suffix``
        let callers salt the key with versioning or sweep-specific parts
        (:func:`repro.experiments.runner.point_cache_key` does exactly
        that, byte-compatibly with the keys it minted before requests
        existed); ``trace_digest`` short-circuits digest computation when
        the caller already holds it.
        """
        parts: List[object] = list(prefix)
        parts.append(trace_digest if trace_digest is not None else self.trace_digest())
        parts.extend(
            [
                self.backend,
                self.config_fingerprint(),
                self.num_workers,
                self.policy.value,
            ]
        )
        if self.overhead is not None:
            parts.append(
                ("overhead", tuple(sorted(dataclasses.asdict(self.overhead).items())))
            )
        if self.seed is not None:
            parts.append(("seed", self.seed))
        if self.faults:
            parts.append(
                ("faults", tuple(sc.cache_token() for sc in self.faults))
            )
        parts.extend(suffix)
        return stable_digest(*parts)

    def simulate_kwargs(self) -> Dict[str, object]:
        """The keyword arguments to pass to ``backend.simulate``.

        ``num_workers`` always travels; the checked parameters travel only
        when the backend declares them, so a backend never sees a knob it
        did not ask for.
        """
        accepts = self.accepted_parameters()
        kwargs: Dict[str, object] = {"num_workers": self.num_workers}
        for name in _CHECKED_PARAMETERS:
            if name in accepts:
                kwargs[name] = getattr(self, name)
        return kwargs


#: Default value of every checked parameter (used by rejection/reset
#: logic), derived from the dataclass itself so it can never drift.
_FIELD_DEFAULTS: Dict[str, object] = {
    f.name: f.default
    for f in dataclasses.fields(SimulationRequest)
    if f.name in _CHECKED_PARAMETERS
}
