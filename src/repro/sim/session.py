"""Streaming simulation sessions: incremental submission and typed events.

:func:`open_session` is the incremental counterpart of the one-shot
:func:`repro.sim.driver.simulate_request` API.  A session is opened from a
:class:`~repro.sim.request.SimulationRequest` and supports workloads the
batch call cannot express:

* **online task arrival** -- tasks are :meth:`~SimulationSession.submit`-ted
  one by one (for example as a client produces them) instead of being known
  up front;
* **event-driven analysis** -- the run is consumed as an iterator of typed,
  cycle-stamped lifecycle events (:class:`TaskSubmitted`,
  :class:`TaskReady`, :class:`TaskRetired`) in global cycle order;
* **early abort** -- ``events(until_cycle=N)`` stops delivering at a cycle
  horizon, and :meth:`~SimulationSession.stats` exposes a snapshot of what
  had happened by that point.

The cardinal guarantee is *batch parity*: streaming a program through a
session produces a :class:`~repro.sim.results.SimulationResult` that is
cycle-identical (field for field, timeline for timeline) to running the
same request through the batch path.  The default session achieves this by
construction -- submission assembles exactly the program the batch path
would simulate, the backend's own ``simulate`` produces the result, and
the event stream is derived from the result's per-task timelines -- so any
backend, including third-party plug-ins, gets a correct session for free.

Typical use::

    request = SimulationRequest.streaming("online", backend="hil-hw",
                                          num_workers=4)
    with open_session(request) as session:
        for task in task_source:
            session.submit(task)          # tasks arrive online
        for event in session.events():
            ...                           # cycle-stamped lifecycle stream
        result = session.result()         # identical to the batch path
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator, List, Optional, Tuple

from repro.runtime.task import Task, TaskProgram
from repro.sim.backend import SimulatorBackend, get_backend
from repro.sim.request import SimulationRequest
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.snapshot import SimulationSnapshot


# ----------------------------------------------------------------------
# lifecycle events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionEvent:
    """One cycle-stamped lifecycle event of a simulated task."""

    #: Simulation cycle at which the event happened.
    cycle: int
    #: Identifier of the task the event refers to.
    task_id: int

    #: Event-kind label; also defines the in-cycle delivery order.
    kind: ClassVar[str] = ""


class TaskSubmitted(SessionEvent):
    """The task entered the backend (accelerator input / software pool)."""

    kind: ClassVar[str] = "submitted"


class TaskReady(SessionEvent):
    """All the task's dependences were satisfied; it became schedulable."""

    kind: ClassVar[str] = "ready"


class TaskRetired(SessionEvent):
    """The task's body finished executing."""

    kind: ClassVar[str] = "retired"


class FaultInjected(SessionEvent):
    """An armed fault scenario fired (``task_id`` is ``-1`` when the
    fault targets a worker or bank rather than a specific task)."""

    kind: ClassVar[str] = "fault-injected"


class FaultRecovered(SessionEvent):
    """A previously injected fault completed its recovery action."""

    kind: ClassVar[str] = "fault-recovered"


#: In-cycle delivery order; the numeric values double as the lifecycle-log
#: order codes (``repro.faults.plan`` appends its entries with codes 3/4 --
#: keep ``LOG_FAULT_INJECTED``/``LOG_FAULT_RECOVERED`` there in lockstep).
_EVENT_ORDER = {
    TaskSubmitted.kind: 0,
    TaskReady.kind: 1,
    TaskRetired.kind: 2,
    FaultInjected.kind: 3,
    FaultRecovered.kind: 4,
}

#: Event class per lifecycle-log order value (see stepper contract below).
_EVENT_CLASSES = (TaskSubmitted, TaskReady, TaskRetired, FaultInjected, FaultRecovered)


def lifecycle_events(result: SimulationResult) -> List[SessionEvent]:
    """The typed event stream of a finished simulation, in cycle order.

    Derived from the per-task timelines; simultaneous events are ordered
    submitted < ready < retired, then by task id, so the stream is fully
    deterministic.

    Fault events are *streaming-only*: a faulted run's
    :class:`FaultInjected` / :class:`FaultRecovered` events are observed
    live through the sliced :meth:`SimulationSession.advance` stream (they
    come from the simulator's lifecycle log), but cannot be reconstructed
    from a finished result's timelines -- which is also why the service
    never serves a faulted run from its result cache.
    """
    events: List[SessionEvent] = []
    for timeline in result.timelines.values():
        events.append(TaskSubmitted(timeline.submitted, timeline.task_id))
        events.append(TaskReady(timeline.ready, timeline.task_id))
        events.append(TaskRetired(timeline.finished, timeline.task_id))
    events.sort(key=lambda e: (e.cycle, _EVENT_ORDER[e.kind], e.task_id))
    return events


# ----------------------------------------------------------------------
# session state
# ----------------------------------------------------------------------
#: Session lifecycle states (reported by :meth:`SimulationSession.stats`).
STATE_OPEN = "open"
STATE_SEALED = "sealed"
STATE_FINISHED = "finished"
STATE_CLOSED = "closed"

#: Default cycle budget of one cooperative slice (see
#: :meth:`SimulationSession.advance`).  Coarse enough that slice overhead is
#: negligible against the engine work inside it, fine enough that a handful
#: of slices cover the quick workloads.
DEFAULT_SLICE_CYCLES = 250_000


@dataclass(frozen=True)
class SessionSlice:
    """The outcome of one cooperative :meth:`SimulationSession.advance`."""

    #: ``True`` once the simulation has run to completion.
    finished: bool
    #: Cycle horizon this slice advanced the simulation to.
    horizon: int
    #: Lifecycle events that became final inside this slice, in global
    #: stream order (concatenating every slice's events reproduces
    #: :func:`lifecycle_events` exactly; a faulted run additionally
    #: interleaves its streaming-only fault events).
    events: Tuple[SessionEvent, ...]


@dataclass(frozen=True)
class SessionStats:
    """Snapshot of a session's progress (cheap, taken at any time)."""

    #: ``open`` (accepting tasks), ``sealed``, ``finished`` (simulated) or
    #: ``closed`` (cancelled / released).
    state: str
    #: Tasks submitted to the session so far.
    tasks_submitted: int
    #: Lifecycle events delivered through :meth:`SimulationSession.events`.
    events_delivered: int
    #: Ready / retired counts among the delivered events.
    tasks_ready: int
    tasks_retired: int
    #: Cycle stamp of the last delivered event (0 before any delivery).
    current_cycle: int
    #: Final makespan; ``None`` until the simulation has run.
    makespan: Optional[int]


class SessionError(RuntimeError):
    """A session operation was attempted in the wrong lifecycle state."""


# ----------------------------------------------------------------------
# the generic stepper
# ----------------------------------------------------------------------
class EngineStepper:
    """Cooperative-slicing adapter over a resumable engine-driven simulator.

    Implements the stepper contract consumed by
    :meth:`SimulationSession.advance` for any simulator built on
    :class:`repro.sim.engine.EventQueue` that exposes ``queue``,
    ``step(stop_at_cycle)``, ``enable_lifecycle_log()`` and ``run()`` --
    today the HIL platform (:class:`repro.sim.hil.HILSimulator`) and the
    Nanos++ software model
    (:class:`repro.runtime.nanos.NanosRuntimeSimulator`).  Each
    :meth:`advance` call dispatches one bounded horizon slice and returns
    the lifecycle-log entries that became final inside it.  Because the
    engine consumes events in the same order whether or not dispatching is
    split across horizons, the concatenated slices are cycle-identical to a
    single uninterrupted run, and the sorted per-slice log partitions
    reproduce :func:`lifecycle_events` exactly.
    """

    def __init__(self, simulator) -> None:  # type: ignore[no-untyped-def]
        self._sim = simulator
        self._log: List[Tuple[int, int, int]] = simulator.enable_lifecycle_log()
        self._horizon = 0
        self.finished = False

    def advance(
        self, slice_cycles: int
    ) -> Tuple[bool, int, List[Tuple[int, int, int]]]:
        """Run one slice of at most ``slice_cycles`` beyond the last horizon.

        Returns ``(finished, horizon, entries)`` where ``entries`` is the
        sorted list of ``(cycle, order, task_id)`` lifecycle entries that
        are final as of ``horizon``.  When the next queued event lies past
        the nominal horizon the slice fast-forwards to it, so every slice
        of an unfinished run makes progress.
        """
        if slice_cycles < 1:
            raise ValueError("slice_cycles must be >= 1")
        sim = self._sim
        queue = sim.queue
        if self.finished:
            return True, self._horizon, []
        target = max(queue.now, self._horizon) + slice_cycles
        peek = queue.peek_time
        if peek is not None and peek > target:
            target = peek
        sim.step(target)
        self._horizon = target
        done = queue.empty
        self.finished = done
        log = self._log
        if done:
            entries, keep = list(log), []
        else:
            entries, keep = [], []
            for entry in log:
                (entries if entry[0] <= target else keep).append(entry)
        log[:] = keep
        # Plain tuple order == the lifecycle_events() sort key
        # (cycle, kind order, task id).
        entries.sort()
        return done, target, entries

    def result(self) -> SimulationResult:
        """The complete result; only valid once ``finished`` is ``True``."""
        if not self.finished:
            raise RuntimeError("stepper has not finished; call advance() until done")
        # The queue is drained, so this builds the final result without
        # dispatching anything further.
        return self._sim.run()


# ----------------------------------------------------------------------
# the session
# ----------------------------------------------------------------------
class SimulationSession:
    """Incremental execution surface over one simulator backend.

    This class is both the default adapter (wrapping any backend's batch
    ``simulate``) and the session type the built-in backends return from
    their ``open_session``.  Tasks referenced by the request's program are
    pre-submitted at open time; more may arrive through :meth:`submit`
    until the session is sealed (sealing happens implicitly the first time
    events or the result are demanded).
    """

    def __init__(self, backend: SimulatorBackend, request: SimulationRequest) -> None:
        self._backend = backend
        #: The normalized request (validation happens here, up front).
        self.request = request.normalize()
        self._source_program = self.request.build_program()
        self._streamed: List[Task] = []
        self._sealed = False
        self._closed = False
        #: Submission count frozen at close time (the streamed-task list is
        #: released then, but the progress snapshot must not forget it).
        self._submitted_at_close: Optional[int] = None
        #: Live cooperative-slicing adapter (see :meth:`advance`); ``None``
        #: until the first ``advance`` on a backend that provides one, and
        #: again once the run finished or the session closed.
        self._stepper = None
        self._result: Optional[SimulationResult] = None
        self._events: Optional[List[SessionEvent]] = None
        self._delivered = 0
        self._ready_seen = 0
        self._retired_seen = 0
        self._current_cycle = 0
        #: Horizon of the most recent ``events(until_cycle=...)`` request;
        #: ``stats`` clamps its cycle snapshot to it (``None`` = unlimited).
        self._horizon: Optional[int] = None

    # ------------------------------------------------------------------
    # incremental submission
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Submit one more task to the session (online arrival).

        Submission order is creation order: the simulated master creates
        the streamed tasks after the request's pre-loaded ones, exactly as
        if the full program had been traced up front -- which is what makes
        the streamed run cycle-identical to the batch run.
        """
        if self._closed:
            raise SessionError("cannot submit tasks to a closed session")
        if self._sealed:
            raise SessionError("cannot submit tasks to a sealed session")
        self._streamed.append(task)

    def submit_program(self, tasks: Iterable[Task]) -> int:
        """Submit a batch of tasks in order; returns how many were taken."""
        count = 0
        for task in tasks:
            self.submit(task)
            count += 1
        return count

    def seal(self) -> None:
        """Close the submission window; further ``submit`` calls raise."""
        self._sealed = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _assembled_program(self) -> TaskProgram:
        if not self._streamed:
            return self._source_program
        program = TaskProgram(name=self._source_program.name)
        for task in self._source_program:
            program.add_task(task)
        for task in self._streamed:
            program.add_task(task)
        return program

    def _require_usable(self, operation: str) -> None:
        if self._closed:
            raise SessionError(f"cannot {operation} on a closed session")

    def _ensure_result(self) -> SimulationResult:
        if self._result is None:
            self.seal()
            stepper = self._stepper
            if stepper is not None:
                # A sliced run is in flight: drain it instead of starting a
                # fresh batch simulation (the two are cycle-identical, but a
                # restart would throw away the work already done).  The
                # drained events are not counted as delivered -- delivery
                # accounting belongs to advance()/events() only.
                while not stepper.finished:
                    stepper.advance(DEFAULT_SLICE_CYCLES)
                self._result = stepper.result()
                self._stepper = None
            else:
                program = self._assembled_program()
                self._result = self._backend.simulate(
                    program, **self.request.simulate_kwargs()
                )
        return self._result

    def _ensure_events(self) -> List[SessionEvent]:
        # Derived lazily: result()-only consumers never pay for building and
        # sorting 3 events per task of a 140k-task program.
        if self._events is None:
            self._events = lifecycle_events(self._ensure_result())
        return self._events

    def events(self, *, until_cycle: Optional[int] = None) -> Iterator[SessionEvent]:
        """Iterate the run's lifecycle events in global cycle order.

        The first call seals the session and runs the simulation.  The
        iterator is resumable: delivery picks up where the previous
        iterator stopped, so a consumer can alternate between draining
        events and inspecting :meth:`stats`.  ``until_cycle`` withholds
        events stamped after the horizon (early abort): the remaining
        events stay pending and a later call can keep going.  The horizon
        also caps the cycle snapshot :meth:`stats` reports until a later
        call moves (or lifts) it.
        """
        # Recording the horizon must happen at call time, not at first
        # ``next()``, so a stats() between the call and consumption already
        # sees the requested cap; hence the inner generator.
        self._require_usable("stream events")
        self._horizon = until_cycle
        events = self._ensure_events()
        return self._deliver(events, until_cycle)

    # ------------------------------------------------------------------
    # cooperative slicing
    # ------------------------------------------------------------------
    def advance(self, slice_cycles: Optional[int] = None) -> SessionSlice:
        """Run one bounded slice of the simulation and return its events.

        The push-mode counterpart of :meth:`events`: instead of computing
        the whole run and pulling events from it, ``advance`` executes at
        most ``slice_cycles`` simulated cycles and returns the events that
        became final inside that window, so a scheduler (e.g. the asyncio
        service in :mod:`repro.service`) can interleave many long runs on
        one thread.  Concatenating the slices of a run reproduces the full
        :meth:`events` stream exactly, and the final :meth:`result` is
        cycle-identical to the batch path.

        Backends advertise slicing by providing ``make_stepper(program,
        **simulate_kwargs)``; for every other backend the first ``advance``
        falls back to running the whole simulation as a single slice.  The
        first call seals the session either way.
        """
        self._require_usable("advance")
        if slice_cycles is None:
            stream = self.request.stream
            slice_cycles = (
                stream.slice_cycles
                if stream is not None and stream.slice_cycles is not None
                else DEFAULT_SLICE_CYCLES
            )
        if self._result is None and self._stepper is None:
            self.seal()
            factory = getattr(self._backend, "make_stepper", None)
            if factory is not None:
                self._stepper = factory(
                    self._assembled_program(), **self.request.simulate_kwargs()
                )
        if self._stepper is None:
            # One-shot fallback: the entire run is a single slice.
            result = self._ensure_result()
            events = self._ensure_events()
            remaining = tuple(events[self._delivered :])
            self._count_delivered(remaining)
            return SessionSlice(finished=True, horizon=result.drain_time, events=remaining)
        finished, horizon, entries = self._stepper.advance(slice_cycles)
        classes = _EVENT_CLASSES
        slice_events = tuple(
            classes[order](cycle, task_id) for cycle, order, task_id in entries
        )
        self._count_delivered(slice_events)
        if finished:
            self._result = self._stepper.result()
            self._stepper = None
        return SessionSlice(finished=finished, horizon=horizon, events=slice_events)

    def _count_delivered(self, events: Tuple[SessionEvent, ...]) -> None:
        """Fold a delivered slice into the progress counters.

        Keeps the ``events()`` cursor consistent: sliced delivery follows
        the exact global stream order, so bumping ``_delivered`` by the
        slice length leaves any later ``events()`` call resuming right
        after the last sliced event.
        """
        for event in events:
            self._current_cycle = event.cycle
            if event.kind == TaskReady.kind:
                self._ready_seen += 1
            elif event.kind == TaskRetired.kind:
                self._retired_seen += 1
        self._delivered += len(events)

    def _deliver(
        self, events: List[SessionEvent], until_cycle: Optional[int]
    ) -> Iterator[SessionEvent]:
        while self._delivered < len(events):
            event = events[self._delivered]
            if until_cycle is not None and event.cycle > until_cycle:
                return
            self._delivered += 1
            self._current_cycle = event.cycle
            if event.kind == TaskReady.kind:
                self._ready_seen += 1
            elif event.kind == TaskRetired.kind:
                self._retired_seen += 1
            yield event

    def stats(self) -> SessionStats:
        """A progress snapshot (valid in any state, including mid-stream).

        ``current_cycle`` never exceeds the horizon of the most recent
        ``events(until_cycle=...)`` request: an early-aborting consumer
        asked to see nothing beyond that cycle, so the snapshot must not
        leak a clock position past it (which the raw last-delivered-event
        cycle does when a later request shrinks the horizon).
        """
        if self._closed:
            state = STATE_CLOSED
        elif self._result is not None:
            state = STATE_FINISHED
        elif self._sealed:
            state = STATE_SEALED
        else:
            state = STATE_OPEN
        current_cycle = self._current_cycle
        if self._horizon is not None and current_cycle > self._horizon:
            current_cycle = self._horizon
        return SessionStats(
            state=state,
            tasks_submitted=(
                self._submitted_at_close
                if self._submitted_at_close is not None
                else self._source_program.num_tasks + len(self._streamed)
            ),
            events_delivered=self._delivered,
            tasks_ready=self._ready_seen,
            tasks_retired=self._retired_seen,
            current_cycle=current_cycle,
            makespan=self._result.makespan if self._result is not None else None,
        )

    def result(self) -> SimulationResult:
        """The final result; cycle-identical to the batch path.

        Seals the session and runs the simulation if that has not happened
        yet.  Does not consume the event stream: events remain available
        (and resumable) after the result has been read.
        """
        self._require_usable("read the result")
        return self._ensure_result()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> "SimulationSnapshot":
        """Capture a :class:`~repro.sim.snapshot.SimulationSnapshot`.

        Valid before the first :meth:`advance` (an *initial* snapshot),
        between ``advance`` slices (a *mid-run* snapshot at the current
        cycle boundary) and after the run finished (a *finished* snapshot).
        The snapshot is copy-on-capture: it shares no mutable state with
        the session, so closing -- or further advancing -- the session
        never invalidates a captured snapshot.  See
        :func:`repro.sim.snapshot.capture`.
        """
        from repro.sim.snapshot import capture

        return capture(self)

    # ------------------------------------------------------------------
    # cancellation / release
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Cancel the session and free its engine state; idempotent.

        Safe in any state, including mid-run between :meth:`advance`
        slices: the in-flight simulator (event queue, accelerator state,
        partial timelines) and any computed result/event stream are
        released.  After closing, :meth:`stats` still reports the progress
        counters (under state ``closed``) but ``submit``/``advance``/
        ``events``/``result`` raise :class:`SessionError`.  A cancelled run
        is simply restarted by opening a fresh session from the same
        request -- sessions share no mutable state, so the rerun is
        cycle-identical (pinned by the restart-parity test).
        """
        if self._closed:
            return
        self._submitted_at_close = self._source_program.num_tasks + len(self._streamed)
        self._closed = True
        self._sealed = True
        self._stepper = None
        self._result = None
        self._events = None
        self._streamed.clear()

    # ------------------------------------------------------------------
    # context management
    # ------------------------------------------------------------------
    def __enter__(self) -> "SimulationSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Sealing (not closing) on exit keeps the idiomatic
        # ``with open_session(...) as s: ... s.result()`` pattern working:
        # results and events remain readable after the block.  Callers that
        # want hard release semantics use ``contextlib.closing`` or call
        # :meth:`close` explicitly.
        self.seal()


#: The default adapter is the session itself; the alias documents intent at
#: call sites that wrap legacy batch-only backends explicitly.
BatchSessionAdapter = SimulationSession


def open_session(request: SimulationRequest) -> SimulationSession:
    """Open a session for ``request`` on its backend.

    Backends may provide a native ``open_session(request)``; everything
    else is wrapped in the default :class:`SimulationSession` adapter over
    the batch ``simulate``.  Either way the request is validated first, so
    an unaccepted parameter fails here rather than mid-stream.
    """
    backend = get_backend(request.backend)
    opener = getattr(backend, "open_session", None)
    if opener is not None:
        return opener(request)
    return SimulationSession(backend, request)
