"""Streaming simulation sessions: incremental submission and typed events.

:func:`open_session` is the incremental counterpart of the one-shot
:func:`repro.sim.driver.simulate_request` API.  A session is opened from a
:class:`~repro.sim.request.SimulationRequest` and supports workloads the
batch call cannot express:

* **online task arrival** -- tasks are :meth:`~SimulationSession.submit`-ted
  one by one (for example as a client produces them) instead of being known
  up front;
* **event-driven analysis** -- the run is consumed as an iterator of typed,
  cycle-stamped lifecycle events (:class:`TaskSubmitted`,
  :class:`TaskReady`, :class:`TaskRetired`) in global cycle order;
* **early abort** -- ``events(until_cycle=N)`` stops delivering at a cycle
  horizon, and :meth:`~SimulationSession.stats` exposes a snapshot of what
  had happened by that point.

The cardinal guarantee is *batch parity*: streaming a program through a
session produces a :class:`~repro.sim.results.SimulationResult` that is
cycle-identical (field for field, timeline for timeline) to running the
same request through the batch path.  The default session achieves this by
construction -- submission assembles exactly the program the batch path
would simulate, the backend's own ``simulate`` produces the result, and
the event stream is derived from the result's per-task timelines -- so any
backend, including third-party plug-ins, gets a correct session for free.

Typical use::

    request = SimulationRequest.streaming("online", backend="hil-hw",
                                          num_workers=4)
    with open_session(request) as session:
        for task in task_source:
            session.submit(task)          # tasks arrive online
        for event in session.events():
            ...                           # cycle-stamped lifecycle stream
        result = session.result()         # identical to the batch path
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterable, Iterator, List, Optional

from repro.runtime.task import Task, TaskProgram
from repro.sim.backend import SimulatorBackend, get_backend
from repro.sim.request import SimulationRequest
from repro.sim.results import SimulationResult


# ----------------------------------------------------------------------
# lifecycle events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionEvent:
    """One cycle-stamped lifecycle event of a simulated task."""

    #: Simulation cycle at which the event happened.
    cycle: int
    #: Identifier of the task the event refers to.
    task_id: int

    #: Event-kind label; also defines the in-cycle delivery order.
    kind: ClassVar[str] = ""


class TaskSubmitted(SessionEvent):
    """The task entered the backend (accelerator input / software pool)."""

    kind: ClassVar[str] = "submitted"


class TaskReady(SessionEvent):
    """All the task's dependences were satisfied; it became schedulable."""

    kind: ClassVar[str] = "ready"


class TaskRetired(SessionEvent):
    """The task's body finished executing."""

    kind: ClassVar[str] = "retired"


_EVENT_ORDER = {TaskSubmitted.kind: 0, TaskReady.kind: 1, TaskRetired.kind: 2}


def lifecycle_events(result: SimulationResult) -> List[SessionEvent]:
    """The typed event stream of a finished simulation, in cycle order.

    Derived from the per-task timelines; simultaneous events are ordered
    submitted < ready < retired, then by task id, so the stream is fully
    deterministic.
    """
    events: List[SessionEvent] = []
    for timeline in result.timelines.values():
        events.append(TaskSubmitted(timeline.submitted, timeline.task_id))
        events.append(TaskReady(timeline.ready, timeline.task_id))
        events.append(TaskRetired(timeline.finished, timeline.task_id))
    events.sort(key=lambda e: (e.cycle, _EVENT_ORDER[e.kind], e.task_id))
    return events


# ----------------------------------------------------------------------
# session state
# ----------------------------------------------------------------------
#: Session lifecycle states (reported by :meth:`SimulationSession.stats`).
STATE_OPEN = "open"
STATE_SEALED = "sealed"
STATE_FINISHED = "finished"


@dataclass(frozen=True)
class SessionStats:
    """Snapshot of a session's progress (cheap, taken at any time)."""

    #: ``open`` (accepting tasks), ``sealed`` or ``finished`` (simulated).
    state: str
    #: Tasks submitted to the session so far.
    tasks_submitted: int
    #: Lifecycle events delivered through :meth:`SimulationSession.events`.
    events_delivered: int
    #: Ready / retired counts among the delivered events.
    tasks_ready: int
    tasks_retired: int
    #: Cycle stamp of the last delivered event (0 before any delivery).
    current_cycle: int
    #: Final makespan; ``None`` until the simulation has run.
    makespan: Optional[int]


class SessionError(RuntimeError):
    """A session operation was attempted in the wrong lifecycle state."""


# ----------------------------------------------------------------------
# the session
# ----------------------------------------------------------------------
class SimulationSession:
    """Incremental execution surface over one simulator backend.

    This class is both the default adapter (wrapping any backend's batch
    ``simulate``) and the session type the built-in backends return from
    their ``open_session``.  Tasks referenced by the request's program are
    pre-submitted at open time; more may arrive through :meth:`submit`
    until the session is sealed (sealing happens implicitly the first time
    events or the result are demanded).
    """

    def __init__(self, backend: SimulatorBackend, request: SimulationRequest) -> None:
        self._backend = backend
        #: The normalized request (validation happens here, up front).
        self.request = request.normalize()
        self._source_program = self.request.build_program()
        self._streamed: List[Task] = []
        self._sealed = False
        self._result: Optional[SimulationResult] = None
        self._events: Optional[List[SessionEvent]] = None
        self._delivered = 0
        self._ready_seen = 0
        self._retired_seen = 0
        self._current_cycle = 0
        #: Horizon of the most recent ``events(until_cycle=...)`` request;
        #: ``stats`` clamps its cycle snapshot to it (``None`` = unlimited).
        self._horizon: Optional[int] = None

    # ------------------------------------------------------------------
    # incremental submission
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Submit one more task to the session (online arrival).

        Submission order is creation order: the simulated master creates
        the streamed tasks after the request's pre-loaded ones, exactly as
        if the full program had been traced up front -- which is what makes
        the streamed run cycle-identical to the batch run.
        """
        if self._sealed:
            raise SessionError("cannot submit tasks to a sealed session")
        self._streamed.append(task)

    def submit_program(self, tasks: Iterable[Task]) -> int:
        """Submit a batch of tasks in order; returns how many were taken."""
        count = 0
        for task in tasks:
            self.submit(task)
            count += 1
        return count

    def seal(self) -> None:
        """Close the submission window; further ``submit`` calls raise."""
        self._sealed = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _assembled_program(self) -> TaskProgram:
        if not self._streamed:
            return self._source_program
        program = TaskProgram(name=self._source_program.name)
        for task in self._source_program:
            program.add_task(task)
        for task in self._streamed:
            program.add_task(task)
        return program

    def _ensure_result(self) -> SimulationResult:
        if self._result is None:
            self.seal()
            program = self._assembled_program()
            self._result = self._backend.simulate(
                program, **self.request.simulate_kwargs()
            )
        return self._result

    def _ensure_events(self) -> List[SessionEvent]:
        # Derived lazily: result()-only consumers never pay for building and
        # sorting 3 events per task of a 140k-task program.
        if self._events is None:
            self._events = lifecycle_events(self._ensure_result())
        return self._events

    def events(self, *, until_cycle: Optional[int] = None) -> Iterator[SessionEvent]:
        """Iterate the run's lifecycle events in global cycle order.

        The first call seals the session and runs the simulation.  The
        iterator is resumable: delivery picks up where the previous
        iterator stopped, so a consumer can alternate between draining
        events and inspecting :meth:`stats`.  ``until_cycle`` withholds
        events stamped after the horizon (early abort): the remaining
        events stay pending and a later call can keep going.  The horizon
        also caps the cycle snapshot :meth:`stats` reports until a later
        call moves (or lifts) it.
        """
        # Recording the horizon must happen at call time, not at first
        # ``next()``, so a stats() between the call and consumption already
        # sees the requested cap; hence the inner generator.
        self._horizon = until_cycle
        events = self._ensure_events()
        return self._deliver(events, until_cycle)

    def _deliver(
        self, events: List[SessionEvent], until_cycle: Optional[int]
    ) -> Iterator[SessionEvent]:
        while self._delivered < len(events):
            event = events[self._delivered]
            if until_cycle is not None and event.cycle > until_cycle:
                return
            self._delivered += 1
            self._current_cycle = event.cycle
            if event.kind == TaskReady.kind:
                self._ready_seen += 1
            elif event.kind == TaskRetired.kind:
                self._retired_seen += 1
            yield event

    def stats(self) -> SessionStats:
        """A progress snapshot (valid in any state, including mid-stream).

        ``current_cycle`` never exceeds the horizon of the most recent
        ``events(until_cycle=...)`` request: an early-aborting consumer
        asked to see nothing beyond that cycle, so the snapshot must not
        leak a clock position past it (which the raw last-delivered-event
        cycle does when a later request shrinks the horizon).
        """
        if self._result is not None:
            state = STATE_FINISHED
        elif self._sealed:
            state = STATE_SEALED
        else:
            state = STATE_OPEN
        current_cycle = self._current_cycle
        if self._horizon is not None and current_cycle > self._horizon:
            current_cycle = self._horizon
        return SessionStats(
            state=state,
            tasks_submitted=self._source_program.num_tasks + len(self._streamed),
            events_delivered=self._delivered,
            tasks_ready=self._ready_seen,
            tasks_retired=self._retired_seen,
            current_cycle=current_cycle,
            makespan=self._result.makespan if self._result is not None else None,
        )

    def result(self) -> SimulationResult:
        """The final result; cycle-identical to the batch path.

        Seals the session and runs the simulation if that has not happened
        yet.  Does not consume the event stream: events remain available
        (and resumable) after the result has been read.
        """
        return self._ensure_result()

    # ------------------------------------------------------------------
    # context management
    # ------------------------------------------------------------------
    def __enter__(self) -> "SimulationSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seal()


#: The default adapter is the session itself; the alias documents intent at
#: call sites that wrap legacy batch-only backends explicitly.
BatchSessionAdapter = SimulationSession


def open_session(request: SimulationRequest) -> SimulationSession:
    """Open a session for ``request`` on its backend.

    Backends may provide a native ``open_session(request)``; everything
    else is wrapped in the default :class:`SimulationSession` adapter over
    the batch ``simulate``.  Either way the request is validated first, so
    an unaccepted parameter fails here rather than mid-stream.
    """
    backend = get_backend(request.backend)
    opener = getattr(backend, "open_session", None)
    if opener is not None:
        return opener(request)
    return SimulationSession(backend, request)
