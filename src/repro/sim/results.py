"""Result objects produced by the simulators.

Every simulator in the package (Picos HIL, Nanos++ software-only, Perfect)
returns a :class:`SimulationResult` so the experiment drivers can compare
them uniformly: makespan, speedup against the traced sequential execution,
per-task timelines and the hardware counters collected during the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class TaskTimeline:
    """Per-task timestamps collected during a simulation (all in cycles).

    A plain ``__slots__`` value class: one instance exists per simulated
    task, so the per-instance ``__dict__`` a dataclass would carry is
    measurable overhead on large traces.

    Fields: ``task_id``; ``created`` (when the master thread created /
    submitted the task, 0 in HW-only); ``submitted`` (when the task
    entered the accelerator or the software ready pool); ``ready`` (when
    it became visible as ready to the scheduler); ``started`` / ``finished``
    (worker execution window).
    """

    __slots__ = ("task_id", "created", "submitted", "ready", "started", "finished")

    def __init__(
        self,
        task_id: int,
        created: int = 0,
        submitted: int = 0,
        ready: int = 0,
        started: int = 0,
        finished: int = 0,
    ) -> None:
        self.task_id = task_id
        self.created = created
        self.submitted = submitted
        self.ready = ready
        self.started = started
        self.finished = finished

    def _astuple(self) -> Tuple[int, int, int, int, int, int]:
        return (
            self.task_id,
            self.created,
            self.submitted,
            self.ready,
            self.started,
            self.finished,
        )

    def __repr__(self) -> str:
        return (
            "TaskTimeline(task_id={}, created={}, submitted={}, ready={}, "
            "started={}, finished={})".format(*self._astuple())
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskTimeline):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    @property
    def queue_latency(self) -> int:
        """Cycles spent between readiness and execution start."""
        return self.started - self.ready

    @property
    def management_latency(self) -> int:
        """Cycles spent between submission and readiness."""
        return self.ready - self.submitted


@dataclass
class SimulationResult:
    """Outcome of one simulated execution of a task program."""

    #: Human-readable name of the simulator ("picos-full-system", ...).
    simulator: str
    #: Name of the simulated program (benchmark + block size).
    program_name: str
    num_workers: int
    #: Total elapsed cycles until the last task finished executing.
    makespan: int
    #: Sum of all task durations (the traced sequential execution time).
    sequential_cycles: int
    num_tasks: int
    #: Per-task timelines, keyed by task id.
    timelines: Dict[int, TaskTimeline] = field(default_factory=dict)
    #: Hardware / runtime counters collected during the run.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Cycles until every notification fully drained (>= makespan).
    drain_time: int = 0

    # ------------------------------------------------------------------
    # headline metrics
    # ------------------------------------------------------------------
    @property
    def speedup(self) -> float:
        """Speedup against the sequential execution (the paper's y-axis)."""
        if self.makespan <= 0:
            return 0.0
        return self.sequential_cycles / self.makespan

    @property
    def efficiency(self) -> float:
        """Speedup divided by the number of workers (0.0 - 1.0+)."""
        if self.num_workers <= 0:
            return 0.0
        return self.speedup / self.num_workers

    # ------------------------------------------------------------------
    # latency / throughput metrics (Table IV)
    # ------------------------------------------------------------------
    def first_task_latency(self) -> int:
        """L1st: cycles from time zero until the first task became ready."""
        if not self.timelines:
            return 0
        return min(timeline.ready for timeline in self.timelines.values())

    def task_throughput(self) -> float:
        """thrTask: steady-state cycles the platform needs per task.

        Computed as the span between the first and the last task entering
        the accelerator (their submission times), divided by the number of
        remaining tasks.  This is the quantity the prototype's counters
        report: how fast the design absorbs additional tasks once the
        pipeline is warm, independently of how long the dependence chains
        take to execute.
        """
        if self.num_tasks <= 1 or not self.timelines:
            return float(self.makespan)
        submissions = sorted(t.submitted for t in self.timelines.values())
        span = submissions[-1] - submissions[0]
        if span <= 0:
            return self.completion_throughput()
        return span / (self.num_tasks - 1)

    def completion_throughput(self) -> float:
        """Steady-state cycles between task completions (end-to-end view)."""
        if self.num_tasks <= 1 or not self.timelines:
            return float(self.makespan)
        finishes = sorted(t.finished for t in self.timelines.values())
        span = finishes[-1] - finishes[0]
        return span / (self.num_tasks - 1)

    def dependence_throughput(self, avg_deps: float) -> float:
        """thrDep: cycles consumed per dependence."""
        if avg_deps <= 0:
            return 0.0
        return self.task_throughput() / avg_deps

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def start_order(self) -> List[int]:
        """Task ids ordered by execution start time (ties by task id)."""
        return [
            timeline.task_id
            for timeline in sorted(
                self.timelines.values(), key=lambda t: (t.started, t.task_id)
            )
        ]

    def completed_all(self) -> bool:
        """Whether every task has a recorded finish time."""
        return len(self.timelines) == self.num_tasks and all(
            t.finished >= t.started for t in self.timelines.values()
        )

    def worker_busy_fraction(self) -> float:
        """Fraction of worker-cycles spent executing task bodies."""
        if self.makespan <= 0 or self.num_workers <= 0:
            return 0.0
        busy = sum(t.finished - t.started for t in self.timelines.values())
        return busy / (self.makespan * self.num_workers)

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by reports and EXPERIMENTS.md tables."""
        return {
            "simulator": self.simulator,
            "program": self.program_name,
            "workers": self.num_workers,
            "makespan": self.makespan,
            "speedup": round(self.speedup, 2),
            "efficiency": round(self.efficiency, 3),
            "tasks": self.num_tasks,
        }
