"""Engine-event payloads owned by the fault-injection layer.

The :class:`~repro.faults.plan.FaultPlan` schedules two private event
kinds on the simulator's :class:`~repro.sim.engine.EventQueue`:

``FAULT_TIMER``
    Carries a :class:`FaultTimer` -- a scenario index plus an action tag
    (``"kill"`` arms a worker kill, ``"rejoin"`` returns a replaced
    worker to the pool).

``FAULT_REDELIVER``
    Carries a :class:`FaultRedeliver` -- a scenario index plus the
    original ``(kind, payload)`` of a withheld / retransmitted /
    duplicated event, so redelivery reuses the exact payload objects the
    simulator scheduled.

Both payload classes are plain slotted value types with structural
equality, which keeps them encodable by the snapshot payload codec
(``sim/snapshot.py`` has dedicated tags for them) and therefore lets a
checkpoint taken mid-fault capture in-flight injections.
"""

from __future__ import annotations

from typing import Any, Optional

#: Event kind of plan-armed timers (scheduled by injector ``on_arm``).
FAULT_TIMER = "fault-timer"
#: Event kind of withheld / retransmitted / duplicated deliveries.
FAULT_REDELIVER = "fault-redeliver"

#: Timer action tags.
TIMER_KILL = "kill"
TIMER_REJOIN = "rejoin"


class FaultTimer:
    """Payload of a ``FAULT_TIMER`` event."""

    __slots__ = ("index", "tag", "arg")

    def __init__(self, index: int, tag: str, arg: Optional[int] = None) -> None:
        self.index = index
        self.tag = tag
        self.arg = arg

    def __repr__(self) -> str:
        return f"FaultTimer(index={self.index}, tag={self.tag!r}, arg={self.arg})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultTimer):
            return NotImplemented
        return (
            self.index == other.index
            and self.tag == other.tag
            and self.arg == other.arg
        )

    def __hash__(self) -> int:
        return hash((FaultTimer, self.index, self.tag, self.arg))


class FaultRedeliver:
    """Payload of a ``FAULT_REDELIVER`` event."""

    __slots__ = ("index", "kind", "payload")

    def __init__(self, index: int, kind: str, payload: Any) -> None:
        self.index = index
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return (
            f"FaultRedeliver(index={self.index}, kind={self.kind!r}, "
            f"payload={self.payload!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultRedeliver):
            return NotImplemented
        return (
            self.index == other.index
            and self.kind == other.kind
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((FaultRedeliver, self.index, self.kind))


__all__ = [
    "FAULT_REDELIVER",
    "FAULT_TIMER",
    "FaultRedeliver",
    "FaultTimer",
    "TIMER_KILL",
    "TIMER_REJOIN",
]
