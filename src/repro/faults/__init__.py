"""Deterministic fault injection for the Picos reproduction.

The paper's robustness story (Section V: Picos keeps making progress
under resource exhaustion where Task Superscalar deadlocked) deserves
dynamic chaos, not just static capacity corners.  This package provides
it as data: frozen, seedable :class:`FaultScenario` descriptions that a
:class:`FaultPlan` arms against a concrete simulator run by wrapping its
event-dispatch table.

Design tenets (see ``docs/faults.md`` for the full contract):

* **zero-cost when off** -- unfaulted runs never construct a plan and
  dispatch through the exact same handler tables as before; golden
  digests are bit-identical.
* **deterministic when on** -- the only randomness is each scenario's
  private seeded stream; the same request replays the same faulted
  schedule, straight or through a mid-fault checkpoint.
* **invariant-checked** -- every run must end with no lost tasks, a
  dependence-valid start order, monotone retirement and balanced
  inject/recover accounting, or it raises :class:`FaultInvariantError`.
"""

from repro.faults.injectors import INJECTORS
from repro.faults.invariants import INVARIANT_CHECKERS
from repro.faults.payloads import (
    FAULT_REDELIVER,
    FAULT_TIMER,
    FaultRedeliver,
    FaultTimer,
)
from repro.faults.plan import (
    ArmedFault,
    FaultInvariantError,
    FaultPlan,
    LOG_FAULT_INJECTED,
    LOG_FAULT_RECOVERED,
)
from repro.faults.scenario import (
    EVENT_LEVEL_KINDS,
    FaultConfigurationError,
    FaultKind,
    FaultScenario,
    FaultTarget,
    FaultTrigger,
    RecoveryPolicy,
    faults_from_documents,
    parse_fault_spec,
)

__all__ = [
    "ArmedFault",
    "EVENT_LEVEL_KINDS",
    "FAULT_REDELIVER",
    "FAULT_TIMER",
    "FaultConfigurationError",
    "FaultInvariantError",
    "FaultKind",
    "FaultPlan",
    "FaultRedeliver",
    "FaultScenario",
    "FaultTarget",
    "FaultTimer",
    "FaultTrigger",
    "INJECTORS",
    "INVARIANT_CHECKERS",
    "LOG_FAULT_INJECTED",
    "LOG_FAULT_RECOVERED",
    "RecoveryPolicy",
    "faults_from_documents",
    "parse_fault_spec",
]
