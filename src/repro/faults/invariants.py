"""Invariant checks of faulted runs: the :data:`INVARIANT_CHECKERS` registry.

Every faulted run must end *healthy*: chaos may reshape the schedule but
never the correctness contract.  Two layers enforce that:

* :func:`verify_run` -- run-level invariants shared by all kinds:

  - **no lost tasks**: every task of the program retired (a finish time
    at or after its start);
  - **ready-order validity**: the observed execution start order still
    respects every dependence, checked against the exact software
    oracle in :mod:`repro.runtime.dependence_analysis`;
  - **bounded stall counters**: no accelerator stall counter exploded
    past a generous linear bound of the event count (a livelock guard);
  - the **monotone retirement** invariant is checked *online* by
    :meth:`repro.faults.plan.FaultPlan.deliver` on every completion.

* :data:`INVARIANT_CHECKERS` -- one checker per
  :class:`~repro.faults.scenario.FaultKind` member validating the
  kind's own recovery bookkeeping (repro-lint rule FLT001 checks the
  table stays complete, mirroring the injector registry).

All violations raise :class:`~repro.faults.plan.FaultInvariantError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict

from repro.faults.scenario import FaultKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import ArmedFault, FaultPlan

#: Slack of the bounded-stall-counter invariant: a stall counter may not
#: exceed ``STALL_BOUND_BASE + STALL_BOUND_PER_EVENT * events``.
STALL_BOUND_BASE = 10_000
STALL_BOUND_PER_EVENT = 64


def _fail(message: str) -> "Exception":
    from repro.faults.plan import FaultInvariantError

    return FaultInvariantError(message)


def verify_run(plan: "FaultPlan", sim: Any) -> None:
    """Run-level invariants shared by every fault kind."""
    program = sim.program
    timelines = plan.adapter.timelines_of(sim)
    # No lost tasks: chaos must never eat a task.
    if len(timelines) != program.num_tasks:
        raise _fail(
            f"lost tasks: {program.num_tasks - len(timelines)} of "
            f"{program.num_tasks} never entered the system"
        )
    for timeline in timelines.values():
        if timeline.finished < timeline.started:
            raise _fail(f"task {timeline.task_id} never retired")
    # Ready-order validity against the exact software oracle.
    from repro.runtime.dependence_analysis import ready_order_is_valid

    start_order = [
        timeline.task_id
        for timeline in sorted(
            timelines.values(), key=lambda t: (t.started, t.task_id)
        )
    ]
    if not ready_order_is_valid(program, start_order):
        raise _fail("execution start order violates a task dependence")
    # Bounded stall counters: generous linear bound, livelock guard.
    bound = STALL_BOUND_BASE + STALL_BOUND_PER_EVENT * sim.queue.processed
    for name, value in plan.adapter.stall_counters(sim).items():
        if value < 0:
            raise _fail(f"stall counter {name} went negative: {value}")
        if "stall" in name and value > bound:
            raise _fail(
                f"stall counter {name} = {value} exceeds the livelock "
                f"bound {bound}"
            )


def _check_balanced(plan: "FaultPlan", armed: "ArmedFault", sim: Any) -> None:
    """Every injection of this scenario was recovered."""
    if armed.injected != armed.recovered:
        raise _fail(
            f"scenario #{armed.index} ({armed.scenario.kind.value}) "
            f"injected {armed.injected} faults but recovered "
            f"{armed.recovered}"
        )


def check_delay_event(plan: "FaultPlan", armed: "ArmedFault", sim: Any) -> None:
    _check_balanced(plan, armed, sim)


def check_drop_event(plan: "FaultPlan", armed: "ArmedFault", sim: Any) -> None:
    _check_balanced(plan, armed, sim)


def check_duplicate_event(plan: "FaultPlan", armed: "ArmedFault", sim: Any) -> None:
    _check_balanced(plan, armed, sim)


def check_freeze_bank(plan: "FaultPlan", armed: "ArmedFault", sim: Any) -> None:
    _check_balanced(plan, armed, sim)


def check_kill_worker(plan: "FaultPlan", armed: "ArmedFault", sim: Any) -> None:
    """Kill bookkeeping fully drained: no stale completions still expected,
    no re-dispatched task still in flight, no worker still watched."""
    if armed.killed:
        raise _fail(
            f"scenario #{armed.index}: stale completions never arrived "
            f"for {sorted(armed.killed)}"
        )
    if armed.awaiting:
        raise _fail(
            f"scenario #{armed.index}: re-dispatched tasks "
            f"{sorted(armed.awaiting)} never re-completed"
        )
    if armed.watching is not None:
        raise _fail(
            f"scenario #{armed.index}: worker {armed.watching} was never "
            f"replaced"
        )
    _check_balanced(plan, armed, sim)


#: One checker per FaultKind member -- FLT001 checks completeness.
INVARIANT_CHECKERS: Dict[
    FaultKind, Callable[["FaultPlan", "ArmedFault", Any], None]
] = {
    FaultKind.DELAY_EVENT: check_delay_event,
    FaultKind.DROP_EVENT: check_drop_event,
    FaultKind.DUPLICATE_EVENT: check_duplicate_event,
    FaultKind.FREEZE_BANK: check_freeze_bank,
    FaultKind.KILL_WORKER: check_kill_worker,
}

__all__ = [
    "INVARIANT_CHECKERS",
    "STALL_BOUND_BASE",
    "STALL_BOUND_PER_EVENT",
    "check_delay_event",
    "check_drop_event",
    "check_duplicate_event",
    "check_freeze_bank",
    "check_kill_worker",
    "verify_run",
]
