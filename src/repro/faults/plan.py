"""Runtime state of armed fault scenarios: the :class:`FaultPlan`.

A plan binds a tuple of frozen :class:`~repro.faults.scenario.
FaultScenario` descriptions to one concrete simulator run.  The
simulator constructs the plan only when at least one scenario is armed;
unfaulted runs never touch this module, which is what keeps the
injection layer cycle-neutral and zero-cost when off.

The plan hooks the run in two places:

* ``wrap(handlers)`` -- the simulator's dispatch table is wrapped via
  :func:`repro.sim.engine.intercept_handlers` so every delivery flows
  through :meth:`FaultPlan.deliver`, and the plan registers handlers for
  its two private event kinds (``FAULT_TIMER`` / ``FAULT_REDELIVER``).
* ``arm(now)`` -- called once from the simulator's prepare step; each
  scenario's injector gets an ``on_arm`` callback (kill scenarios
  schedule their timers here).

Backend specifics (packet-class names, payload shapes, how to kill and
replace a worker) live in a small *adapter* object defined next to each
simulator (``sim/hil.py`` / ``runtime/nanos.py``).  The adapter is duck
typed; the protocol is:

``family``
    Short backend family name used in messages (``"hil"`` / ``"nanos"``).
``packet_classes``
    Mapping of backend-independent class name -> engine event kind.
``default_packet_class``
    Class used when a scenario leaves ``target.packet_class`` unset.
``completion_kind``
    The engine kind that retires tasks (drives the online monotone-
    retirement check and the kill-worker bookkeeping).
``task_id_of(kind, payload)``
    Best-effort task id of a payload (``-1`` when unknown).
``worker_count(sim)``
    Number of killable workers (validates ``target.worker_id``).
``kill_worker(sim, plan, armed, now)`` / ``rejoin_worker(...)``
    The backend-specific kill / replacement actions.
``intercept_completion(sim, plan, armed, payload, now)``
    Pre-delivery hook of one kill scenario; returns ``True`` to consume
    the event (HIL discards a stale completion of a killed worker; Nanos
    retires the watched thread's final completion without letting the
    dying thread rejoin the pool).
``completion_delivered(sim, plan, armed, payload, now)``
    Post-delivery hook of one kill scenario (HIL uses it for the
    re-dispatch bookkeeping of the gateway retry path).
``stall_counters(sim)``
    Mapping of stall counters for the bounded-stall invariant.

Determinism contract: the only randomness is each scenario's private
``random.Random(trigger.seed)`` stream, and every plan decision happens
at a deterministic point of the event-dispatch order -- so one seed
tuple pins the entire faulted schedule, and ``snapshot_state()`` /
``restore_state()`` (RNG state included) make mid-fault checkpoints
replay bit-exactly.  See ``docs/faults.md``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.faults.payloads import (
    FAULT_REDELIVER,
    FAULT_TIMER,
    FaultRedeliver,
    FaultTimer,
    TIMER_KILL,
    TIMER_REJOIN,
)
from repro.faults.scenario import (
    FaultConfigurationError,
    FaultKind,
    FaultScenario,
)

#: Lifecycle-log order codes of the fault events.  They extend the
#: task-lifecycle codes 0/1/2 (submitted/ready/retired) used by
#: ``sim/session.py`` -- keep ``_EVENT_ORDER`` there in lockstep.
LOG_FAULT_INJECTED = 3
LOG_FAULT_RECOVERED = 4


class FaultInvariantError(RuntimeError):
    """A faulted run violated one of its declared invariants."""


class ArmedFault:
    """Mutable per-run state of one scenario (the scenario itself is frozen)."""

    __slots__ = (
        "scenario",
        "index",
        "match_kind",
        "freeze_window",
        "fires",
        "injected",
        "recovered",
        "rng",
        "killed",
        "awaiting",
        "watching",
    )

    def __init__(self, scenario: FaultScenario, index: int) -> None:
        self.scenario = scenario
        self.index = index
        #: Engine event kind this scenario matches (event-level + freeze).
        self.match_kind: Optional[str] = None
        #: Resolved [start, end) freeze window (freeze-bank only).
        self.freeze_window: Optional[Tuple[int, int]] = None
        self.fires = 0
        self.injected = 0
        self.recovered = 0
        self.rng = random.Random(scenario.trigger.seed)
        #: Stale ``(worker, task)`` completions to discard (HIL kill).
        self.killed: Set[Tuple[int, int]] = set()
        #: Tasks re-dispatched after a kill, awaiting re-completion (HIL).
        self.awaiting: Set[int] = set()
        #: Worker being watched for its final completion (Nanos kill).
        self.watching: Optional[int] = None


class FaultPlan:
    """All armed scenarios of one simulator run, plus their bookkeeping."""

    def __init__(
        self,
        scenarios: Tuple[FaultScenario, ...],
        adapter: Any,
        sim: Any,
    ) -> None:
        from repro.faults.injectors import INJECTORS
        from repro.faults.invariants import INVARIANT_CHECKERS

        self.adapter = adapter
        self._sim = sim
        self._injectors = INJECTORS
        self._checkers = INVARIANT_CHECKERS
        self.armed = False
        self.injected = 0
        self.recovered = 0
        self._last_completion = -1
        self._base: Dict[str, Callable[[Any, int], None]] = {}
        self.armed_faults: List[ArmedFault] = []
        #: Event-level / freeze scenarios indexed by matched engine kind.
        self._watch: Dict[str, List[ArmedFault]] = {}
        #: Kill scenarios (ordered), consulted on every completion.
        self._kills: List[ArmedFault] = []
        for index, scenario in enumerate(scenarios):
            if scenario.kind not in self._injectors:
                raise FaultConfigurationError(
                    f"no injector registered for {scenario.kind.value}"
                )
            armed = ArmedFault(scenario, index)
            self._resolve(armed)
            self.armed_faults.append(armed)

    # ------------------------------------------------------------------
    # construction-time resolution / validation
    # ------------------------------------------------------------------
    def _resolve(self, armed: ArmedFault) -> None:
        scenario = armed.scenario
        adapter = self.adapter
        if scenario.kind is FaultKind.KILL_WORKER:
            worker_id = scenario.target.worker_id
            count = adapter.worker_count(self._sim)
            assert worker_id is not None  # enforced by the scenario schema
            if worker_id >= count:
                raise FaultConfigurationError(
                    f"kill-worker target worker {worker_id} out of range: "
                    f"the {adapter.family} backend of this run has "
                    f"{count} killable workers"
                )
            self._kills.append(armed)
            return
        packet_class = scenario.target.packet_class or adapter.default_packet_class
        try:
            armed.match_kind = adapter.packet_classes[packet_class]
        except KeyError:
            known = ", ".join(sorted(adapter.packet_classes))
            raise FaultConfigurationError(
                f"unknown packet class {packet_class!r} for the "
                f"{adapter.family} backend (known: {known})"
            ) from None
        if scenario.kind is FaultKind.FREEZE_BANK:
            trigger = scenario.trigger
            if trigger.window is not None:
                armed.freeze_window = trigger.window
            else:
                start = trigger.at_cycle or 0
                length = max(1, scenario.recovery.delay_cycles)
                armed.freeze_window = (start, start + length)
        self._watch.setdefault(armed.match_kind, []).append(armed)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def arm(self, now: int = 0) -> None:
        """Give every scenario its ``on_arm`` callback (idempotent)."""
        if self.armed:
            return
        for armed in self.armed_faults:
            self._injectors[armed.scenario.kind].on_arm(self, armed, now)
        self.armed = True

    def wrap(
        self, handlers: Mapping[str, Callable[[Any, int], None]]
    ) -> Dict[str, Callable[[Any, int], None]]:
        """Return ``handlers`` with every delivery routed through the plan."""
        from repro.sim.engine import intercept_handlers

        self._base = dict(handlers)
        wrapped = intercept_handlers(handlers, self.deliver)
        wrapped[FAULT_TIMER] = self._on_timer
        wrapped[FAULT_REDELIVER] = self._on_redeliver
        return wrapped

    # ------------------------------------------------------------------
    # delivery path
    # ------------------------------------------------------------------
    def deliver(
        self,
        kind: str,
        payload: Any,
        now: int,
        handler: Callable[[Any, int], None],
        redelivery: bool = False,
    ) -> None:
        """Route one event delivery through the armed scenarios."""
        adapter = self.adapter
        is_completion = kind == adapter.completion_kind
        if is_completion:
            for armed in self._kills:
                if adapter.intercept_completion(self._sim, self, armed, payload, now):
                    return  # stale completion of a killed worker
            if now < self._last_completion:
                raise FaultInvariantError(
                    f"retirement went backwards: cycle {now} after "
                    f"{self._last_completion}"
                )
            self._last_completion = now
        if not redelivery:
            for armed in self._watch.get(kind, ()):
                injector = self._injectors[armed.scenario.kind]
                if injector.on_delivery(self, armed, kind, payload, now):
                    return  # delivery swallowed (delayed / dropped / frozen)
        handler(payload, now)
        if is_completion:
            for armed in self._kills:
                adapter.completion_delivered(self._sim, self, armed, payload, now)

    def _on_timer(self, payload: FaultTimer, now: int) -> None:
        armed = self.armed_faults[payload.index]
        if payload.tag == TIMER_KILL:
            self.adapter.kill_worker(self._sim, self, armed, now)
        elif payload.tag == TIMER_REJOIN:
            self.adapter.rejoin_worker(self._sim, self, armed, payload.arg, now)
        else:  # pragma: no cover - the plan only schedules known tags
            raise RuntimeError(f"unknown fault timer tag: {payload.tag!r}")

    def _on_redeliver(self, payload: FaultRedeliver, now: int) -> None:
        armed = self.armed_faults[payload.index]
        kind, original = payload.kind, payload.payload
        self.record_recovered(now, self.adapter.task_id_of(kind, original), armed)
        if armed.scenario.kind is FaultKind.DUPLICATE_EVENT:
            return  # the receiver deduplicates the echo
        handler = self._base[kind]
        # A retransmitted (dropped) packet travels the lossy path again
        # and may be re-dropped while fires remain; delayed and thawed
        # deliveries are final.  Either way the kill bookkeeping still
        # applies (a late completion of a killed worker must be stale).
        re_matchable = armed.scenario.kind is FaultKind.DROP_EVENT
        self.deliver(kind, original, now, handler, redelivery=not re_matchable)

    # ------------------------------------------------------------------
    # injector services
    # ------------------------------------------------------------------
    def trigger_fires(self, armed: ArmedFault, now: int) -> bool:
        """Evaluate the scenario trigger for one matching occasion."""
        trigger = armed.scenario.trigger
        if trigger.max_fires is not None and armed.fires >= trigger.max_fires:
            return False
        if trigger.probability is not None:
            if armed.rng.random() >= trigger.probability:
                return False
        elif trigger.at_cycle is not None:
            if now < trigger.at_cycle:
                return False
        else:
            assert trigger.window is not None
            start, end = trigger.window
            if not start <= now < end:
                return False
        armed.fires += 1
        return True

    def recovery_delay(self, armed: ArmedFault) -> int:
        """Recovery delay of one injection, jitter included."""
        recovery = armed.scenario.recovery
        delay = recovery.delay_cycles
        if recovery.jitter_cycles:
            delay += armed.rng.randrange(recovery.jitter_cycles + 1)
        return delay

    def schedule_timer(
        self, armed: ArmedFault, at: int, tag: str, arg: Optional[int] = None
    ) -> None:
        self._sim.queue.schedule(at, FAULT_TIMER, FaultTimer(armed.index, tag, arg))

    def schedule_redelivery(
        self, armed: ArmedFault, kind: str, payload: Any, at: int
    ) -> None:
        self._sim.queue.schedule(
            at, FAULT_REDELIVER, FaultRedeliver(armed.index, kind, payload)
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def record_injected(self, now: int, task_id: int, armed: ArmedFault) -> None:
        self.injected += 1
        armed.injected += 1
        log = getattr(self._sim, "_lifecycle_log", None)
        if log is not None:
            log.append((now, LOG_FAULT_INJECTED, task_id))

    def record_recovered(self, now: int, task_id: int, armed: ArmedFault) -> None:
        self.recovered += 1
        armed.recovered += 1
        log = getattr(self._sim, "_lifecycle_log", None)
        if log is not None:
            log.append((now, LOG_FAULT_RECOVERED, task_id))

    # ------------------------------------------------------------------
    # end-of-run invariants
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Raise :class:`FaultInvariantError` unless the run is healthy."""
        from repro.faults.invariants import verify_run

        verify_run(self, self._sim)
        for armed in self.armed_faults:
            self._checkers[armed.scenario.kind](self, armed, self._sim)

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-safe armed-fault state (RNG streams included)."""
        scenarios = []
        for armed in self.armed_faults:
            version, internal, gauss = armed.rng.getstate()
            scenarios.append(
                {
                    "fires": armed.fires,
                    "injected": armed.injected,
                    "recovered": armed.recovered,
                    "rng": [version, list(internal), gauss],
                    "killed": sorted(list(pair) for pair in armed.killed),
                    "awaiting": sorted(armed.awaiting),
                    "watching": armed.watching,
                }
            )
        return {
            "armed": self.armed,
            "injected": self.injected,
            "recovered": self.recovered,
            "last_completion": self._last_completion,
            "scenarios": scenarios,
        }

    def restore_state(self, document: Mapping[str, Any]) -> None:
        """Inverse of :meth:`snapshot_state`."""
        scenarios = document["scenarios"]
        if len(scenarios) != len(self.armed_faults):
            raise ValueError(
                f"snapshot carries {len(scenarios)} armed faults, "
                f"the request arms {len(self.armed_faults)}"
            )
        self.armed = bool(document["armed"])
        self.injected = int(document["injected"])
        self.recovered = int(document["recovered"])
        self._last_completion = int(document["last_completion"])
        for armed, state in zip(self.armed_faults, scenarios):
            armed.fires = int(state["fires"])
            armed.injected = int(state["injected"])
            armed.recovered = int(state["recovered"])
            version, internal, gauss = state["rng"]
            armed.rng.setstate((version, tuple(internal), gauss))
            armed.killed = {(pair[0], pair[1]) for pair in state["killed"]}
            armed.awaiting = set(state["awaiting"])
            armed.watching = state["watching"]


__all__ = [
    "ArmedFault",
    "FaultInvariantError",
    "FaultPlan",
    "LOG_FAULT_INJECTED",
    "LOG_FAULT_RECOVERED",
]
