"""Per-kind fault injectors: the :data:`INJECTORS` registry.

Each :class:`~repro.faults.scenario.FaultKind` member maps to exactly
one injector object; repro-lint rule FLT001 checks the table stays
complete (the same handler-table-completeness contract the engine
dispatch tables live under).  An injector implements two hooks:

``on_arm(plan, armed, now)``
    Called once when the plan arms against a run.  Timer-driven kinds
    (``KILL_WORKER``) schedule their ``FAULT_TIMER`` events here.

``on_delivery(plan, armed, kind, payload, now) -> bool``
    Called for each delivery of the scenario's matched engine kind.
    Returns ``True`` when the delivery was swallowed (withheld, dropped,
    frozen); ``False`` lets the original handler run.

Injectors never mutate simulator state directly -- they go through the
plan's scheduling/recording services and, for the kill path, the
backend adapter.  See ``docs/faults.md`` for the per-kind semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.faults.payloads import TIMER_KILL
from repro.faults.scenario import FaultKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import ArmedFault, FaultPlan


class _Injector:
    """Base injector: no arming action, never fires on deliveries."""

    def on_arm(self, plan: "FaultPlan", armed: "ArmedFault", now: int) -> None:
        return None

    def on_delivery(
        self,
        plan: "FaultPlan",
        armed: "ArmedFault",
        kind: str,
        payload: Any,
        now: int,
    ) -> bool:
        return False


class _ReinjectingInjector(_Injector):
    """Withhold a matching delivery and re-inject it after the recovery
    delay.  ``DELAY_EVENT`` models the same packet arriving late;
    ``DROP_EVENT`` models packet loss healed by retransmission (and the
    retransmitted copy travels the lossy path again, so it can be
    re-dropped while trigger fires remain)."""

    def on_delivery(
        self,
        plan: "FaultPlan",
        armed: "ArmedFault",
        kind: str,
        payload: Any,
        now: int,
    ) -> bool:
        if not plan.trigger_fires(armed, now):
            return False
        plan.record_injected(now, plan.adapter.task_id_of(kind, payload), armed)
        plan.schedule_redelivery(armed, kind, payload, now + plan.recovery_delay(armed))
        return True


class DelayEventInjector(_ReinjectingInjector):
    pass


class DropEventInjector(_ReinjectingInjector):
    pass


class DuplicateEventInjector(_Injector):
    """Deliver the original event normally and schedule a duplicate echo;
    the plan's redelivery handler discards the echo on arrival (receiver-
    side deduplication), which keeps the schedule cycle-identical while
    still exercising the dedup path end to end."""

    def on_delivery(
        self,
        plan: "FaultPlan",
        armed: "ArmedFault",
        kind: str,
        payload: Any,
        now: int,
    ) -> bool:
        if plan.trigger_fires(armed, now):
            plan.record_injected(now, plan.adapter.task_id_of(kind, payload), armed)
            plan.schedule_redelivery(
                armed, kind, payload, now + plan.recovery_delay(armed)
            )
        return False  # the original delivery proceeds either way


class FreezeBankInjector(_Injector):
    """Stall a DCT bank: every matching delivery inside the freeze window
    is deferred to the thaw cycle (the window end), in arrival order."""

    def on_delivery(
        self,
        plan: "FaultPlan",
        armed: "ArmedFault",
        kind: str,
        payload: Any,
        now: int,
    ) -> bool:
        assert armed.freeze_window is not None
        start, end = armed.freeze_window
        if not start <= now < end:
            return False
        armed.fires += 1
        plan.record_injected(now, plan.adapter.task_id_of(kind, payload), armed)
        plan.schedule_redelivery(armed, kind, payload, end)
        return True


class KillWorkerInjector(_Injector):
    """Arm a ``FAULT_TIMER`` at the trigger cycle; the backend adapter
    performs the kill (discard the stale completion, re-dispatch the
    in-flight task through the gateway retry path / replace the thread)."""

    def on_arm(self, plan: "FaultPlan", armed: "ArmedFault", now: int) -> None:
        at_cycle = armed.scenario.trigger.at_cycle
        assert at_cycle is not None  # enforced by the scenario schema
        plan.schedule_timer(armed, max(now, at_cycle), TIMER_KILL)


#: One injector per FaultKind member -- FLT001 checks completeness.
INJECTORS: Dict[FaultKind, _Injector] = {
    FaultKind.DELAY_EVENT: DelayEventInjector(),
    FaultKind.DROP_EVENT: DropEventInjector(),
    FaultKind.DUPLICATE_EVENT: DuplicateEventInjector(),
    FaultKind.FREEZE_BANK: FreezeBankInjector(),
    FaultKind.KILL_WORKER: KillWorkerInjector(),
}

__all__ = [
    "DelayEventInjector",
    "DropEventInjector",
    "DuplicateEventInjector",
    "FreezeBankInjector",
    "INJECTORS",
    "KillWorkerInjector",
]
