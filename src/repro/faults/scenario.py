"""Typed, seedable fault scenarios.

A :class:`FaultScenario` describes one chaos action as data: *what* goes
wrong (:class:`FaultKind`), *when* it happens (:class:`FaultTrigger` --
a fixed cycle, a cycle window, or a seeded per-event probability),
*where* it hits (:class:`FaultTarget` -- a packet class, a worker id, a
DCT bank), and *how the system heals* (:class:`RecoveryPolicy`).  All
four pieces are frozen dataclasses, so a scenario is hashable and can
ride inside a :class:`~repro.sim.request.SimulationRequest` unchanged.

Scenarios carry no runtime state; arming them against a simulator is the
job of :class:`~repro.faults.plan.FaultPlan`.  The same scenario tuple
plus the same trigger seeds therefore always replays the same faulted
schedule -- determinism is part of the schema, not an afterthought.

Three equivalent surfaces construct scenarios:

* Python: ``FaultScenario(FaultKind.KILL_WORKER, FaultTrigger(at_cycle=
  2000), FaultTarget(worker_id=1))``
* wire documents (the service ``faults`` request field):
  ``{"kind": "kill-worker", "trigger": {"at_cycle": 2000},
  "target": {"worker": 1}}``
* CLI spec strings (``picos-experiment simulate --fault ...``):
  ``kill-worker@cycle=2000:worker=1``

See ``docs/faults.md`` for the full grammar and per-kind semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple


class FaultConfigurationError(ValueError):
    """An invalid scenario document, spec string or field combination."""


class FaultKind(enum.Enum):
    """The chaos actions the injection layer knows how to perform.

    Every member must have a registered injector in
    :data:`repro.faults.injectors.INJECTORS` and an invariant checker in
    :data:`repro.faults.invariants.INVARIANT_CHECKERS` -- repro-lint rule
    FLT001 enforces the completeness of both tables.
    """

    #: Withhold a matching scheduled event and redeliver it late.
    DELAY_EVENT = "delay-event"
    #: Lose a matching event; the recovery layer retransmits a copy.
    DROP_EVENT = "drop-event"
    #: Deliver a matching event twice; the receiver discards the echo.
    DUPLICATE_EVENT = "duplicate-event"
    #: Stall a DCT bank: defer its packets until the window thaws.
    FREEZE_BANK = "freeze-bank"
    #: Kill a worker core and re-dispatch its in-flight task.
    KILL_WORKER = "kill-worker"


#: Event-level kinds fire on individual packet deliveries (as opposed to
#: the timer-armed ``KILL_WORKER`` and the windowed ``FREEZE_BANK``).
EVENT_LEVEL_KINDS = frozenset(
    {FaultKind.DELAY_EVENT, FaultKind.DROP_EVENT, FaultKind.DUPLICATE_EVENT}
)


@dataclass(frozen=True)
class FaultTrigger:
    """When a scenario fires.  Exactly one trigger mode must be set.

    ``at_cycle``
        Fire on the first matching occasion at or after the given cycle.
    ``window``
        Fire on matching occasions inside ``[start, end)``.
    ``probability``
        Fire on each matching occasion with the given probability, drawn
        from a private ``random.Random(seed)`` stream -- the only source
        of randomness in a faulted run, so a seed pins the schedule.
    ``max_fires``
        Upper bound on the number of fires (``None`` = unbounded; the
        default of 1 keeps scenarios single-shot unless asked otherwise).
    """

    at_cycle: Optional[int] = None
    window: Optional[Tuple[int, int]] = None
    probability: Optional[float] = None
    seed: int = 0
    max_fires: Optional[int] = 1

    def __post_init__(self) -> None:
        modes = (self.at_cycle, self.window, self.probability)
        if sum(value is not None for value in modes) != 1:
            raise FaultConfigurationError(
                "exactly one of at_cycle / window / probability must be set"
            )
        if self.at_cycle is not None and self.at_cycle < 0:
            raise FaultConfigurationError("at_cycle must be >= 0")
        if self.window is not None:
            window = tuple(self.window)
            if len(window) != 2:
                raise FaultConfigurationError("window must be [start, end)")
            start, end = window
            if start < 0 or end <= start:
                raise FaultConfigurationError(
                    "window must satisfy 0 <= start < end"
                )
            object.__setattr__(self, "window", window)
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise FaultConfigurationError("probability must be in (0, 1]")
        if self.probability == 1.0 and self.max_fires is None:
            raise FaultConfigurationError(
                "probability 1.0 with unbounded max_fires never terminates"
            )
        if self.seed < 0:
            raise FaultConfigurationError("seed must be >= 0")
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultConfigurationError("max_fires must be >= 1 or None")


@dataclass(frozen=True)
class FaultTarget:
    """Where a scenario hits.

    ``packet_class``
        Backend-independent packet family the event-level kinds match:
        ``ready`` (DCT ready notifications), ``complete`` (worker
        completion messages), ``master`` (ARM-side master events) or
        ``submit`` (Nanos submission stream).  ``None`` selects the
        backend's default class; unknown classes are rejected when the
        plan is armed against a concrete backend.
    ``worker_id``
        The victim core of ``KILL_WORKER``.
    ``bank``
        Reported DCT bank id of ``FREEZE_BANK`` (informational label on
        the injected events; the frozen stream is the packet class).
    """

    packet_class: Optional[str] = None
    worker_id: Optional[int] = None
    bank: Optional[int] = None

    def __post_init__(self) -> None:
        if self.worker_id is not None and self.worker_id < 0:
            raise FaultConfigurationError("worker_id must be >= 0")
        if self.bank is not None and self.bank < 0:
            raise FaultConfigurationError("bank must be >= 0")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the system heals after an injection.

    ``delay_cycles``
        Redelivery / retransmission / replacement delay.  For
        ``FREEZE_BANK`` armed via ``at_cycle`` it doubles as the freeze
        duration.
    ``jitter_cycles``
        Extra uniform delay in ``[0, jitter_cycles]`` drawn from the
        scenario's seeded stream -- chaotic but replayable.
    """

    delay_cycles: int = 200
    jitter_cycles: int = 0

    def __post_init__(self) -> None:
        if self.delay_cycles < 0:
            raise FaultConfigurationError("delay_cycles must be >= 0")
        if self.jitter_cycles < 0:
            raise FaultConfigurationError("jitter_cycles must be >= 0")


@dataclass(frozen=True)
class FaultScenario:
    """One typed, seedable fault: kind + trigger + target + recovery."""

    kind: FaultKind
    trigger: FaultTrigger
    target: FaultTarget = FaultTarget()
    recovery: RecoveryPolicy = RecoveryPolicy()

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise FaultConfigurationError(f"unknown fault kind: {self.kind!r}")
        if self.kind is FaultKind.KILL_WORKER:
            if self.trigger.at_cycle is None:
                raise FaultConfigurationError(
                    "kill-worker requires an at_cycle trigger"
                )
            if self.target.worker_id is None:
                raise FaultConfigurationError(
                    "kill-worker requires target.worker_id"
                )
            if self.target.packet_class is not None or self.target.bank is not None:
                raise FaultConfigurationError(
                    "kill-worker targets a worker, not a packet class or bank"
                )
        elif self.kind is FaultKind.FREEZE_BANK:
            if self.trigger.probability is not None:
                raise FaultConfigurationError(
                    "freeze-bank needs a cycle or window trigger"
                )
            if self.target.worker_id is not None:
                raise FaultConfigurationError("freeze-bank targets a bank")
        else:  # event-level kinds
            if self.target.worker_id is not None or self.target.bank is not None:
                raise FaultConfigurationError(
                    f"{self.kind.value} targets a packet class only"
                )

    # ------------------------------------------------------------------
    # canonical encodings
    # ------------------------------------------------------------------
    def cache_token(self) -> Tuple[Any, ...]:
        """Flat hashable tuple folded into the request cache key."""
        trigger, target, recovery = self.trigger, self.target, self.recovery
        return (
            self.kind.value,
            trigger.at_cycle,
            trigger.window,
            trigger.probability,
            trigger.seed,
            trigger.max_fires,
            target.packet_class,
            target.worker_id,
            target.bank,
            recovery.delay_cycles,
            recovery.jitter_cycles,
        )

    def to_document(self) -> Dict[str, Any]:
        """JSON-safe document; defaulted sections are omitted."""
        trigger: Dict[str, Any] = {}
        if self.trigger.at_cycle is not None:
            trigger["at_cycle"] = self.trigger.at_cycle
        if self.trigger.window is not None:
            trigger["window"] = list(self.trigger.window)
        if self.trigger.probability is not None:
            trigger["probability"] = self.trigger.probability
        if self.trigger.seed != 0:
            trigger["seed"] = self.trigger.seed
        if self.trigger.max_fires != 1:
            trigger["max_fires"] = self.trigger.max_fires
        document: Dict[str, Any] = {"kind": self.kind.value, "trigger": trigger}
        target: Dict[str, Any] = {}
        if self.target.packet_class is not None:
            target["class"] = self.target.packet_class
        if self.target.worker_id is not None:
            target["worker"] = self.target.worker_id
        if self.target.bank is not None:
            target["bank"] = self.target.bank
        if target:
            document["target"] = target
        recovery: Dict[str, Any] = {}
        if self.recovery.delay_cycles != RecoveryPolicy().delay_cycles:
            recovery["delay"] = self.recovery.delay_cycles
        if self.recovery.jitter_cycles:
            recovery["jitter"] = self.recovery.jitter_cycles
        if recovery:
            document["recovery"] = recovery
        return document

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "FaultScenario":
        """Strict inverse of :meth:`to_document` (unknown keys rejected)."""
        if not isinstance(document, Mapping):
            raise FaultConfigurationError("fault scenario must be an object")
        unknown = set(document) - {"kind", "trigger", "target", "recovery"}
        if unknown:
            raise FaultConfigurationError(
                f"unknown fault scenario fields: {sorted(unknown)}"
            )
        try:
            kind = FaultKind(document.get("kind"))
        except ValueError:
            raise FaultConfigurationError(
                f"unknown fault kind: {document.get('kind')!r}"
            ) from None
        trigger = _trigger_from_document(document.get("trigger", {}))
        target = _target_from_document(document.get("target", {}))
        recovery = _recovery_from_document(document.get("recovery", {}))
        return cls(kind=kind, trigger=trigger, target=target, recovery=recovery)


def _require_int(value: Any, label: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise FaultConfigurationError(f"{label} must be an integer")
    return value


def _trigger_from_document(document: Any) -> FaultTrigger:
    if not isinstance(document, Mapping):
        raise FaultConfigurationError("trigger must be an object")
    allowed = {"at_cycle", "window", "probability", "seed", "max_fires"}
    unknown = set(document) - allowed
    if unknown:
        raise FaultConfigurationError(
            f"unknown trigger fields: {sorted(unknown)}"
        )
    kwargs: Dict[str, Any] = {}
    if "at_cycle" in document:
        kwargs["at_cycle"] = _require_int(document["at_cycle"], "at_cycle")
    if "window" in document:
        window = document["window"]
        if not isinstance(window, (list, tuple)) or len(window) != 2:
            raise FaultConfigurationError("window must be [start, end)")
        kwargs["window"] = (
            _require_int(window[0], "window start"),
            _require_int(window[1], "window end"),
        )
    if "probability" in document:
        probability = document["probability"]
        if not isinstance(probability, (int, float)) or isinstance(probability, bool):
            raise FaultConfigurationError("probability must be a number")
        kwargs["probability"] = float(probability)
    if "seed" in document:
        kwargs["seed"] = _require_int(document["seed"], "seed")
    if "max_fires" in document:
        max_fires = document["max_fires"]
        kwargs["max_fires"] = (
            None if max_fires is None else _require_int(max_fires, "max_fires")
        )
    return FaultTrigger(**kwargs)


def _target_from_document(document: Any) -> FaultTarget:
    if not isinstance(document, Mapping):
        raise FaultConfigurationError("target must be an object")
    unknown = set(document) - {"class", "worker", "bank"}
    if unknown:
        raise FaultConfigurationError(f"unknown target fields: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    if "class" in document:
        packet_class = document["class"]
        if not isinstance(packet_class, str):
            raise FaultConfigurationError("target class must be a string")
        kwargs["packet_class"] = packet_class
    if "worker" in document:
        kwargs["worker_id"] = _require_int(document["worker"], "worker")
    if "bank" in document:
        kwargs["bank"] = _require_int(document["bank"], "bank")
    return FaultTarget(**kwargs)


def _recovery_from_document(document: Any) -> RecoveryPolicy:
    if not isinstance(document, Mapping):
        raise FaultConfigurationError("recovery must be an object")
    unknown = set(document) - {"delay", "jitter"}
    if unknown:
        raise FaultConfigurationError(
            f"unknown recovery fields: {sorted(unknown)}"
        )
    kwargs: Dict[str, Any] = {}
    if "delay" in document:
        kwargs["delay_cycles"] = _require_int(document["delay"], "delay")
    if "jitter" in document:
        kwargs["jitter_cycles"] = _require_int(document["jitter"], "jitter")
    return RecoveryPolicy(**kwargs)


# ----------------------------------------------------------------------
# CLI spec strings
# ----------------------------------------------------------------------
#: Grammar (see docs/faults.md):
#:   SPEC    := KIND '@' TRIGGER (':' OPT)*
#:   TRIGGER := 'cycle=' INT | 'window=' INT '..' INT | 'p=' FLOAT
#:   OPT     := 'class=' NAME | 'worker=' INT | 'bank=' INT
#:            | 'seed=' INT | 'fires=' (INT | 'all')
#:            | 'delay=' INT | 'jitter=' INT
_SPEC_EXAMPLE = "kill-worker@cycle=2000:worker=1"


def parse_fault_spec(spec: str) -> FaultScenario:
    """Parse one ``--fault`` spec string into a :class:`FaultScenario`."""

    def bad(reason: str) -> FaultConfigurationError:
        return FaultConfigurationError(
            f"bad fault spec {spec!r}: {reason} (example: {_SPEC_EXAMPLE})"
        )

    head, _, tail = spec.partition("@")
    if not tail:
        raise bad("missing '@trigger'")
    try:
        kind = FaultKind(head)
    except ValueError:
        known = ", ".join(sorted(member.value for member in FaultKind))
        raise bad(f"unknown kind {head!r} (known: {known})") from None

    parts = tail.split(":")
    trigger_kwargs: Dict[str, Any] = {}
    target_kwargs: Dict[str, Any] = {}
    recovery_kwargs: Dict[str, Any] = {}

    def parse_int(value: str, label: str) -> int:
        try:
            return int(value)
        except ValueError:
            raise bad(f"{label} must be an integer, got {value!r}") from None

    trigger_part = parts[0]
    key, _, value = trigger_part.partition("=")
    if not value:
        raise bad("trigger must be cycle=N, window=A..B or p=P")
    if key == "cycle":
        trigger_kwargs["at_cycle"] = parse_int(value, "cycle")
    elif key == "window":
        start, sep, end = value.partition("..")
        if not sep:
            raise bad("window must be window=START..END")
        trigger_kwargs["window"] = (
            parse_int(start, "window start"),
            parse_int(end, "window end"),
        )
    elif key == "p":
        try:
            trigger_kwargs["probability"] = float(value)
        except ValueError:
            raise bad(f"p must be a float, got {value!r}") from None
    else:
        raise bad(f"unknown trigger {key!r} (cycle / window / p)")

    for part in parts[1:]:
        key, _, value = part.partition("=")
        if not value:
            raise bad(f"option {part!r} must be key=value")
        if key == "class":
            target_kwargs["packet_class"] = value
        elif key == "worker":
            target_kwargs["worker_id"] = parse_int(value, "worker")
        elif key == "bank":
            target_kwargs["bank"] = parse_int(value, "bank")
        elif key == "seed":
            trigger_kwargs["seed"] = parse_int(value, "seed")
        elif key == "fires":
            trigger_kwargs["max_fires"] = (
                None if value == "all" else parse_int(value, "fires")
            )
        elif key == "delay":
            recovery_kwargs["delay_cycles"] = parse_int(value, "delay")
        elif key == "jitter":
            recovery_kwargs["jitter_cycles"] = parse_int(value, "jitter")
        else:
            raise bad(f"unknown option {key!r}")

    return FaultScenario(
        kind=kind,
        trigger=FaultTrigger(**trigger_kwargs),
        target=FaultTarget(**target_kwargs),
        recovery=RecoveryPolicy(**recovery_kwargs),
    )


def faults_from_documents(documents: Any) -> Tuple[FaultScenario, ...]:
    """Decode a list of scenario documents (the wire ``faults`` field)."""
    if not isinstance(documents, (list, tuple)):
        raise FaultConfigurationError("faults must be a list of scenarios")
    return tuple(FaultScenario.from_document(document) for document in documents)


__all__ = [
    "EVENT_LEVEL_KINDS",
    "FaultConfigurationError",
    "FaultKind",
    "FaultScenario",
    "FaultTarget",
    "FaultTrigger",
    "RecoveryPolicy",
    "faults_from_documents",
    "parse_fault_spec",
]
