"""FPGA resource-cost model of the Picos prototype.

:mod:`repro.hardware.resources` estimates the LUT, flip-flop and BRAM usage
of every memory and module of the prototype on the Zynq XC7Z020 device,
reproducing Table III of the paper and allowing what-if exploration of
larger geometries (e.g. the 32-way DM the paper decides not to build).
"""

from repro.hardware.resources import (
    DeviceBudget,
    ResourceEstimate,
    XC7Z020,
    estimate_design,
    table3_rows,
)

__all__ = [
    "DeviceBudget",
    "ResourceEstimate",
    "XC7Z020",
    "estimate_design",
    "table3_rows",
]
