"""Structural FPGA resource-cost model (Table III).

The prototype is implemented on a Zynq XC7Z020 (53,200 LUTs, 106,400
flip-flops, 140 36-Kbit BRAMs).  Table III reports the fraction of the
device used by each memory and module.  This module derives those costs
structurally from the configured geometry:

* memories are mapped to BRAM36 primitives, constrained both by capacity
  (36 Kbit per primitive) and by port width (72 bits per primitive);
* the DM match logic costs one wide comparator plus way-selection muxing
  per way, with a priority encoder that grows with associativity;
* the Pearson hash of the P+8way design adds four 256x8 permutation tables
  (mapped to distributed LUT RAM) and the XOR fold;
* module-level control logic (TRS, DCT, GW+ARB+TS) is a calibrated constant
  taken from the prototype's synthesis results.

The model is calibrated so the paper's geometries land close to the Table
III percentages while remaining parametric, which allows the what-if
exploration the paper mentions (e.g. a 32-way DM doubling the memory cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import DMDesign, PicosConfig

#: Bits of one BRAM36 primitive.
_BRAM_BITS = 36 * 1024
#: Maximum data width of one BRAM36 port.
_BRAM_MAX_WIDTH = 72


@dataclass(frozen=True)
class DeviceBudget:
    """Resource budget of an FPGA device."""

    name: str
    luts: int
    flip_flops: int
    bram36: int


#: The device of the Zedboard used by the paper.
XC7Z020 = DeviceBudget(name="XC7Z020", luts=53_200, flip_flops=106_400, bram36=140)


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resource usage of one component."""

    component: str
    luts: int
    flip_flops: int
    bram36: int

    def as_percentages(self, device: DeviceBudget = XC7Z020) -> Dict[str, float]:
        """Express the estimate as percentages of ``device`` (Table III form)."""
        return {
            "LUTs": 100.0 * self.luts / device.luts,
            "FFs": 100.0 * self.flip_flops / device.flip_flops,
            "BRAM": 100.0 * self.bram36 / device.bram36,
        }

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            component=f"{self.component}+{other.component}",
            luts=self.luts + other.luts,
            flip_flops=self.flip_flops + other.flip_flops,
            bram36=self.bram36 + other.bram36,
        )


def _bram_for(entries: int, width_bits: int) -> int:
    """BRAM36 primitives needed for an ``entries x width`` memory."""
    if entries <= 0 or width_bits <= 0:
        return 0
    by_width = math.ceil(width_bits / _BRAM_MAX_WIDTH)
    by_capacity = math.ceil(entries * width_bits / _BRAM_BITS)
    return max(by_width, by_capacity)


# ----------------------------------------------------------------------
# memories
# ----------------------------------------------------------------------
def estimate_task_memory(config: PicosConfig) -> ResourceEstimate:
    """TM0 + TMX cost of one TRS instance."""
    # TM0: task id, dependence counters and status flags.
    tm0_width = 48
    brams = _bram_for(config.tm_entries, tm0_width)
    # TMX banks: 3 dependences per entry, each holding a VM pointer, a
    # chain reference and status bits.
    tmx_banks = math.ceil(config.max_deps_per_task / 3)
    dep_record_bits = 26
    tmx_width = 3 * dep_record_bits
    brams += tmx_banks * _bram_for(config.tm_entries, tmx_width)
    return ResourceEstimate("TM", luts=210, flip_flops=12, bram36=brams)


def estimate_version_memory(config: PicosConfig) -> ResourceEstimate:
    """VM cost of one DCT instance (doubled entries for the 16-way DM)."""
    entries = config.effective_vm_entries
    # consumer / producer slots, counters, chain pointers.
    width = 72
    brams = _bram_for(entries, width)
    name = "VM for 16way" if config.dm_design is DMDesign.WAY16 else "VM for 8way/P+8way"
    return ResourceEstimate(name, luts=210, flip_flops=12, bram36=brams)


def estimate_dependence_memory(config: PicosConfig) -> ResourceEstimate:
    """DM cost for the configured design."""
    ways = config.dm_ways
    # Per way: a tag bank and a data bank, accessed in parallel.
    tag_width = 64
    data_width = 32
    brams_per_way = _bram_for(config.dm_sets, tag_width) + _bram_for(
        config.dm_sets, data_width
    )
    # Small set memories are still one primitive per bank because every way
    # is matched in parallel; keep at least one per bank.
    brams = ways * max(1, brams_per_way) * 3 // 4
    # Match logic: one 64-bit comparator and way muxing per way, plus a
    # priority encoder that grows with the square of the associativity.
    luts = ways * 70 + 2 * ways * ways
    flip_flops = 90 + ways
    if config.dm_design.uses_pearson:
        # Four 256x8 Pearson tables in LUT RAM plus the XOR fold.
        luts += 4 * 64 + 16
        flip_flops += 14
        brams += 1
    return ResourceEstimate(
        config.dm_design.display_name, luts=luts, flip_flops=flip_flops, bram36=brams
    )


# ----------------------------------------------------------------------
# modules
# ----------------------------------------------------------------------
def estimate_trs(config: PicosConfig) -> ResourceEstimate:
    """One TRS instance: its Task Memory plus readiness control logic."""
    memory = estimate_task_memory(config)
    return ResourceEstimate(
        "TRS",
        luts=memory.luts + 640,
        flip_flops=memory.flip_flops + 620,
        bram36=memory.bram36,
    )


def estimate_dct(config: PicosConfig) -> ResourceEstimate:
    """One DCT instance: DM + VM plus chain-tracking control logic."""
    dm = estimate_dependence_memory(config)
    vm = estimate_version_memory(config)
    return ResourceEstimate(
        f"DCT ({config.dm_design.display_name})",
        luts=dm.luts + vm.luts + 420,
        flip_flops=dm.flip_flops + vm.flip_flops + 280,
        bram36=dm.bram36 + vm.bram36,
    )


def estimate_frontend(config: PicosConfig) -> ResourceEstimate:
    """GW + ARB + TS (simple control, FIFOs in distributed RAM)."""
    scale = max(config.num_trs, config.num_dct)
    return ResourceEstimate(
        "GW+ARB+TS",
        luts=690 + 60 * (scale - 1),
        flip_flops=420 + 40 * (scale - 1),
        bram36=0,
    )


def estimate_design(config: PicosConfig) -> ResourceEstimate:
    """Full Picos design for ``config`` (the Table III bottom row)."""
    total = estimate_frontend(config)
    for _ in range(config.num_trs):
        total = total + estimate_trs(config)
    for _ in range(config.num_dct):
        total = total + estimate_dct(config)
    return ResourceEstimate(
        f"Full Picos ({config.dm_design.display_name})",
        luts=total.luts,
        flip_flops=total.flip_flops,
        bram36=total.bram36,
    )


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
#: Table III of the paper, in percent of the XC7Z020 (LUTs, FFs, BRAM).
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "TM": {"LUTs": 0.4, "FFs": 0.01, "BRAM": 6.0},
    "VM for 8way/P+8way": {"LUTs": 0.4, "FFs": 0.01, "BRAM": 1.0},
    "VM for 16way": {"LUTs": 0.4, "FFs": 0.01, "BRAM": 2.0},
    "DM 8way": {"LUTs": 1.1, "FFs": 0.1, "BRAM": 9.0},
    "DM 16way": {"LUTs": 3.1, "FFs": 0.1, "BRAM": 17.0},
    "DM P+8way": {"LUTs": 1.7, "FFs": 0.1, "BRAM": 10.0},
    "TRS": {"LUTs": 1.6, "FFs": 0.6, "BRAM": 6.0},
    "DCT (DM P+8way)": {"LUTs": 2.9, "FFs": 0.3, "BRAM": 11.0},
    "GW+ARB+TS": {"LUTs": 1.3, "FFs": 0.4, "BRAM": 0.0},
    "Full Picos (DM P+8way)": {"LUTs": 5.8, "FFs": 1.2, "BRAM": 17.0},
}


def table3_rows(device: DeviceBudget = XC7Z020) -> List[Dict[str, object]]:
    """Model estimates for every row of Table III, with the paper values.

    Each row carries the component name, the modelled percentages and the
    percentages the paper reports, so the Table III experiment driver and
    bench can print them side by side.
    """
    base8 = PicosConfig.paper_prototype(DMDesign.WAY8)
    base16 = PicosConfig.paper_prototype(DMDesign.WAY16)
    basep8 = PicosConfig.paper_prototype(DMDesign.PEARSON8)

    estimates = [
        estimate_task_memory(basep8),
        estimate_version_memory(basep8),
        estimate_version_memory(base16),
        estimate_dependence_memory(base8),
        estimate_dependence_memory(base16),
        estimate_dependence_memory(basep8),
        estimate_trs(basep8),
        estimate_dct(basep8),
        estimate_frontend(basep8),
        estimate_design(basep8),
    ]
    rows: List[Dict[str, object]] = []
    for estimate in estimates:
        percentages = estimate.as_percentages(device)
        paper = PAPER_TABLE3.get(estimate.component, {})
        rows.append(
            {
                "component": estimate.component,
                "model": percentages,
                "paper": paper,
                "absolute": {
                    "LUTs": estimate.luts,
                    "FFs": estimate.flip_flops,
                    "BRAM": estimate.bram36,
                },
            }
        )
    return rows
