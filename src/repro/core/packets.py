"""Inter-module packets of the Picos hardware.

Every arrow of Figure 3b is a small fixed-format packet travelling through a
FIFO.  The classes in this module name those packets after the
operational-flow steps of Section III-B:

new-task path (N1-N6)
    :class:`NewTaskPacket` (GW -> TRS), :class:`DependencePacket`
    (GW -> DCT), :class:`ReadyPacket` and :class:`DependentPacket`
    (DCT -> TRS, via the Arbiter), :class:`ExecuteTaskPacket` (TRS -> TS).

finished-task path (F1-F4)
    :class:`FinishedTaskPacket` (GW -> TRS), :class:`FinishPacket`
    (TRS -> DCT), and again :class:`ReadyPacket` for wake-ups.

Several packets are allocated per dependence of every task, which puts
their construction on the hottest path of a simulation; they are therefore
hand-written ``__slots__`` value classes (compare-by-value, hashable)
rather than frozen dataclasses, whose ``object.__setattr__``-based
``__init__`` costs several times as much per instance.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.task import Direction


class TaskSlotRef:
    """Reference to one dependence slot of one in-flight task.

    A task lives in TM entry ``tm_index`` of TRS instance ``trs_id``; its
    ``dep_index``-th dependence occupies one TMX slot.  The DCT identifies
    consumers/producers by this triple (the "TRS slot" of the paper).
    """

    __slots__ = ("trs_id", "tm_index", "dep_index")

    def __init__(self, trs_id: int, tm_index: int, dep_index: int) -> None:
        self.trs_id = trs_id
        self.tm_index = tm_index
        self.dep_index = dep_index

    def task_ref(self) -> "TaskSlotRef":
        """The same slot with the dependence index cleared (task identity)."""
        return TaskSlotRef(self.trs_id, self.tm_index, 0)

    def __repr__(self) -> str:
        return (
            f"TaskSlotRef(trs_id={self.trs_id}, tm_index={self.tm_index}, "
            f"dep_index={self.dep_index})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSlotRef):
            return NotImplemented
        return (
            self.trs_id == other.trs_id
            and self.tm_index == other.tm_index
            and self.dep_index == other.dep_index
        )

    def __hash__(self) -> int:
        return hash((self.trs_id, self.tm_index, self.dep_index))


class NewTaskPacket:
    """GW -> TRS: a new task has been assigned TM entry ``tm_index`` (N3)."""

    __slots__ = ("task_id", "trs_id", "tm_index", "num_deps")

    def __init__(self, task_id: int, trs_id: int, tm_index: int, num_deps: int) -> None:
        self.task_id = task_id
        self.trs_id = trs_id
        self.tm_index = tm_index
        self.num_deps = num_deps

    def __repr__(self) -> str:
        return (
            f"NewTaskPacket(task_id={self.task_id}, trs_id={self.trs_id}, "
            f"tm_index={self.tm_index}, num_deps={self.num_deps})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NewTaskPacket):
            return NotImplemented
        return (
            self.task_id == other.task_id
            and self.trs_id == other.trs_id
            and self.tm_index == other.tm_index
            and self.num_deps == other.num_deps
        )

    def __hash__(self) -> int:
        return hash((self.task_id, self.trs_id, self.tm_index, self.num_deps))


class DependencePacket:
    """GW -> DCT: one dependence of a newly created task (N4)."""

    __slots__ = ("slot", "address", "direction")

    def __init__(self, slot: TaskSlotRef, address: int, direction: Direction) -> None:
        self.slot = slot
        self.address = address
        self.direction = direction

    def __repr__(self) -> str:
        return (
            f"DependencePacket(slot={self.slot!r}, address={self.address}, "
            f"direction={self.direction!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencePacket):
            return NotImplemented
        return (
            self.slot == other.slot
            and self.address == other.address
            and self.direction == other.direction
        )

    def __hash__(self) -> int:
        return hash((self.slot, self.address, self.direction))


class ReadyPacket:
    """DCT -> TRS (via ARB): the referenced dependence slot is ready (N5/F4)."""

    __slots__ = ("slot", "vm_index")

    def __init__(self, slot: TaskSlotRef, vm_index: int) -> None:
        self.slot = slot
        self.vm_index = vm_index

    def __repr__(self) -> str:
        return f"ReadyPacket(slot={self.slot!r}, vm_index={self.vm_index})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadyPacket):
            return NotImplemented
        return self.slot == other.slot and self.vm_index == other.vm_index

    def __hash__(self) -> int:
        return hash((self.slot, self.vm_index))


class DependentPacket:
    """DCT -> TRS: the slot depends on earlier accesses and must wait (N5).

    ``predecessor`` carries the consumer-chain link of Section III-D: the
    previous consumer of the same version, which the TRS must wake after
    this slot itself is woken (links 2 and 3 of Figure 5).  ``None`` when the
    slot is the first consumer of its version or a producer.
    """

    __slots__ = ("slot", "vm_index", "predecessor")

    def __init__(
        self,
        slot: TaskSlotRef,
        vm_index: int,
        predecessor: Optional[TaskSlotRef] = None,
    ) -> None:
        self.slot = slot
        self.vm_index = vm_index
        self.predecessor = predecessor

    def __repr__(self) -> str:
        return (
            f"DependentPacket(slot={self.slot!r}, vm_index={self.vm_index}, "
            f"predecessor={self.predecessor!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependentPacket):
            return NotImplemented
        return (
            self.slot == other.slot
            and self.vm_index == other.vm_index
            and self.predecessor == other.predecessor
        )

    def __hash__(self) -> int:
        return hash((self.slot, self.vm_index, self.predecessor))


class FinishPacket:
    """TRS -> DCT: one dependence of a finished task is being released (F3).

    The dependence address is carried along so the Arbiter can route the
    packet to the DCT instance that tracks the address (relevant only for
    multi-DCT configurations).
    """

    __slots__ = ("slot", "vm_index", "address")

    def __init__(self, slot: TaskSlotRef, vm_index: int, address: int = 0) -> None:
        self.slot = slot
        self.vm_index = vm_index
        self.address = address

    def __repr__(self) -> str:
        return (
            f"FinishPacket(slot={self.slot!r}, vm_index={self.vm_index}, "
            f"address={self.address})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FinishPacket):
            return NotImplemented
        return (
            self.slot == other.slot
            and self.vm_index == other.vm_index
            and self.address == other.address
        )

    def __hash__(self) -> int:
        return hash((self.slot, self.vm_index, self.address))


class ExecuteTaskPacket:
    """TRS -> TS: the task in ``tm_index`` has all dependences ready (N6)."""

    __slots__ = ("task_id", "trs_id", "tm_index")

    def __init__(self, task_id: int, trs_id: int, tm_index: int) -> None:
        self.task_id = task_id
        self.trs_id = trs_id
        self.tm_index = tm_index

    def __repr__(self) -> str:
        return (
            f"ExecuteTaskPacket(task_id={self.task_id}, trs_id={self.trs_id}, "
            f"tm_index={self.tm_index})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecuteTaskPacket):
            return NotImplemented
        return (
            self.task_id == other.task_id
            and self.trs_id == other.trs_id
            and self.tm_index == other.tm_index
        )

    def __hash__(self) -> int:
        return hash((self.task_id, self.trs_id, self.tm_index))


class FinishedTaskPacket:
    """GW -> TRS: the worker running ``task_id`` reported completion (F2)."""

    __slots__ = ("task_id", "trs_id", "tm_index")

    def __init__(self, task_id: int, trs_id: int, tm_index: int) -> None:
        self.task_id = task_id
        self.trs_id = trs_id
        self.tm_index = tm_index

    def __repr__(self) -> str:
        return (
            f"FinishedTaskPacket(task_id={self.task_id}, trs_id={self.trs_id}, "
            f"tm_index={self.tm_index})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FinishedTaskPacket):
            return NotImplemented
        return (
            self.task_id == other.task_id
            and self.trs_id == other.trs_id
            and self.tm_index == other.tm_index
        )

    def __hash__(self) -> int:
        return hash((self.task_id, self.trs_id, self.tm_index))
