"""Inter-module packets of the Picos hardware.

Every arrow of Figure 3b is a small fixed-format packet travelling through a
FIFO.  The dataclasses in this module name those packets after the
operational-flow steps of Section III-B:

new-task path (N1-N6)
    :class:`NewTaskPacket` (GW -> TRS), :class:`DependencePacket`
    (GW -> DCT), :class:`ReadyPacket` and :class:`DependentPacket`
    (DCT -> TRS, via the Arbiter), :class:`ExecuteTaskPacket` (TRS -> TS).

finished-task path (F1-F4)
    :class:`FinishedTaskPacket` (GW -> TRS), :class:`FinishPacket`
    (TRS -> DCT), and again :class:`ReadyPacket` for wake-ups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.task import Direction


@dataclass(frozen=True)
class TaskSlotRef:
    """Reference to one dependence slot of one in-flight task.

    A task lives in TM entry ``tm_index`` of TRS instance ``trs_id``; its
    ``dep_index``-th dependence occupies one TMX slot.  The DCT identifies
    consumers/producers by this triple (the "TRS slot" of the paper).
    """

    trs_id: int
    tm_index: int
    dep_index: int

    def task_ref(self) -> "TaskSlotRef":
        """The same slot with the dependence index cleared (task identity)."""
        return TaskSlotRef(self.trs_id, self.tm_index, 0)


@dataclass(frozen=True)
class NewTaskPacket:
    """GW -> TRS: a new task has been assigned TM entry ``tm_index`` (N3)."""

    task_id: int
    trs_id: int
    tm_index: int
    num_deps: int


@dataclass(frozen=True)
class DependencePacket:
    """GW -> DCT: one dependence of a newly created task (N4)."""

    slot: TaskSlotRef
    address: int
    direction: Direction


@dataclass(frozen=True)
class ReadyPacket:
    """DCT -> TRS (via ARB): the referenced dependence slot is ready (N5/F4)."""

    slot: TaskSlotRef
    vm_index: int


@dataclass(frozen=True)
class DependentPacket:
    """DCT -> TRS: the slot depends on earlier accesses and must wait (N5).

    ``predecessor`` carries the consumer-chain link of Section III-D: the
    previous consumer of the same version, which the TRS must wake after
    this slot itself is woken (links 2 and 3 of Figure 5).  ``None`` when the
    slot is the first consumer of its version or a producer.
    """

    slot: TaskSlotRef
    vm_index: int
    predecessor: Optional[TaskSlotRef] = None


@dataclass(frozen=True)
class FinishPacket:
    """TRS -> DCT: one dependence of a finished task is being released (F3).

    The dependence address is carried along so the Arbiter can route the
    packet to the DCT instance that tracks the address (relevant only for
    multi-DCT configurations).
    """

    slot: TaskSlotRef
    vm_index: int
    address: int = 0


@dataclass(frozen=True)
class ExecuteTaskPacket:
    """TRS -> TS: the task in ``tm_index`` has all dependences ready (N6)."""

    task_id: int
    trs_id: int
    tm_index: int


@dataclass(frozen=True)
class FinishedTaskPacket:
    """GW -> TRS: the worker running ``task_id`` reported completion (F2)."""

    task_id: int
    trs_id: int
    tm_index: int
