"""Hash functions: DM set indexing plus stable content fingerprints.

Two index functions are used by the DM designs of Section III-C:

* the *direct* hash of the 8-way and 16-way designs, which simply takes the
  least-significant 6 bits of the dependence address as the set index.
  Because dependence addresses of blocked applications are block-aligned
  (and therefore cluster on a handful of low-bit patterns), this indexing
  concentrates most addresses on very few sets and produces the large
  conflict counts of Table II;
* the *Pearson* hash of the P+8way design (Figure 4): the Pearson byte
  permutation is applied to each of the four bytes of the LSB 32 bits of the
  address, the four hashed bytes are XOR-folded together, and the LSB 6 bits
  of the fold select the set.  This decorrelates the index from the address
  alignment and removes essentially all conflicts.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

#: Number of index bits used by the 64-set DM (2**6 == 64).
DM_INDEX_BITS = 6


def _build_pearson_table() -> List[int]:
    """Build the 256-entry Pearson permutation table.

    Pearson hashing only requires *some* fixed permutation of 0..255; the
    original CACM paper uses a table built by hand.  We derive a
    deterministic permutation with a small linear-congruential shuffle so the
    hash is reproducible across runs and platforms without depending on the
    exact table the hardware prototype used (which the paper does not give).
    """
    table = list(range(256))
    state = 0x2545_F491
    for i in range(255, 0, -1):
        # xorshift-style mixing; deterministic and platform independent.
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        j = state % (i + 1)
        table[i], table[j] = table[j], table[i]
    return table


#: The fixed Pearson permutation table used by :func:`pearson_hash_byte`.
PEARSON_TABLE: Sequence[int] = tuple(_build_pearson_table())


def pearson_hash_byte(value: int) -> int:
    """Hash a single byte through the Pearson permutation table."""
    return PEARSON_TABLE[value & 0xFF]


def pearson_fold(address: int) -> int:
    """XOR-fold the Pearson-hashed bytes of the LSB 32 bits of ``address``.

    This reproduces the access diagram of Figure 4: each of the four bytes
    of the low 32 address bits is independently permuted, and the results
    are combined with XOR.
    """
    folded = 0
    low = address & 0xFFFF_FFFF
    for shift in (0, 8, 16, 24):
        folded ^= pearson_hash_byte((low >> shift) & 0xFF)
    return folded


def direct_index(address: int, num_sets: int = 64) -> int:
    """Set index used by the DM 8-way / 16-way designs (LSB bits of address)."""
    if num_sets <= 0:
        raise ValueError("num_sets must be positive")
    return address % num_sets


def pearson_index(address: int, num_sets: int = 64) -> int:
    """Set index used by the DM P+8way design (Pearson-hashed fold)."""
    if num_sets <= 0:
        raise ValueError("num_sets must be positive")
    return pearson_fold(address) % num_sets


def index_for(address: int, use_pearson: bool, num_sets: int = 64) -> int:
    """Dispatch to the direct or Pearson index function."""
    if use_pearson:
        return pearson_index(address, num_sets)
    return direct_index(address, num_sets)


def make_index_function(use_pearson: bool, num_sets: int = 64):
    """A memoizing per-address set-index function for one DM configuration.

    Every DM compare, allocate and release starts with a set-index
    computation, and blocked applications touch the same few thousand
    block-aligned addresses hundreds of thousands of times per run -- the
    byte-wise Pearson fold dominated simulation profiles before this memo.
    The returned callable computes :func:`index_for` on first sight of an
    address and replays a dict hit afterwards; the cache is private to the
    returned function (one per :class:`~repro.core.dependence_memory.
    DependenceMemory` instance), so differently-configured memories never
    share entries.
    """
    if num_sets <= 0:
        raise ValueError("num_sets must be positive")
    cache: dict = {}
    if use_pearson:
        table = PEARSON_TABLE

        def index(address: int) -> int:
            folded = cache.get(address)
            if folded is None:
                low = address & 0xFFFF_FFFF
                folded = cache[address] = (
                    table[low & 0xFF]
                    ^ table[(low >> 8) & 0xFF]
                    ^ table[(low >> 16) & 0xFF]
                    ^ table[(low >> 24) & 0xFF]
                ) % num_sets
            return folded

    else:

        def index(address: int) -> int:
            idx = cache.get(address)
            if idx is None:
                idx = cache[address] = address % num_sets
            return idx

    return index


# ----------------------------------------------------------------------
# stable content fingerprints (experiment-result cache keys)
# ----------------------------------------------------------------------
def stable_digest(*parts: object, length: int = 24) -> str:
    """Deterministic hexadecimal digest of an ordered sequence of parts.

    Unlike Python's built-in ``hash`` (salted per process), the digest is
    stable across runs, platforms and Python versions, which is what makes
    it usable as an on-disk cache key.  Each part is rendered to text
    (bytes are hashed as-is) and length-prefixed before hashing, so
    ``("ab", "c")`` and ``("a", "bc")`` never collide.
    """
    if length < 8 or length > 64:
        raise ValueError("digest length must be between 8 and 64 hex digits")
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            blob = part
        else:
            blob = repr(part).encode("utf-8") if not isinstance(part, str) else part.encode("utf-8")
        digest.update(str(len(blob)).encode("ascii"))
        digest.update(b":")
        digest.update(blob)
        digest.update(b";")
    return digest.hexdigest()[:length]


def fingerprint_mapping(mapping: "dict") -> str:
    """Stable digest of a flat mapping (key order does not matter)."""
    return stable_digest(*(f"{key}={mapping[key]!r}" for key in sorted(mapping)))
