"""Gateway (GW): first interface between the processing cores and Picos.

The GW fetches new tasks and finished-task notifications and dispatches them
to the TRS and DCT instances (steps N1-N4 and F1-F2 of Section III-B).  Two
behaviours of the prototype are modelled precisely because they shape the
performance results:

* when no TRS slot is free, the GW *does not process* the new task: the
  submission interface stalls until a task retires;
* when the DCT cannot store a dependence (DM conflict or full VM), the
  submission pipeline stalls mid-task; the GW keeps the partially-dispatched
  task and resumes from the blocked dependence once resources free up.

Cycle-identity contract
-----------------------

The Gateway's dependence traffic is batched (maximal consecutive runs per
DCT bank, see ``docs/engine.md``) but must stay *cycle-identical* to the
per-dependence reference flow, with exact per-delivered-event accounting:
every stored dependence still counts one Arbiter TRS message, every
routed-but-stalled dependence one DCT message, and the stall points,
stats and resume indices are those of the single-packet path.  The
contract is pinned by the golden-digest matrix and batched-vs-reference
loops in ``tests/test_perf_parity.py``, the Gateway unit suite in
``tests/test_core_gateway.py``, and the seed-pinned cross-backend fuzz in
``tests/test_differential.py``.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.arbiter import Arbiter
from repro.core.config import PicosConfig
from repro.core.dct import DependenceChainTracker, StallReason
from repro.core.packets import ExecuteTaskPacket
from repro.core.stats import PicosStats
from repro.core.trs import TaskReservationStation
from repro.runtime.task import Task


class GatewayStatus(enum.Enum):
    """Outcome of a submission attempt at the Gateway."""

    ACCEPTED = "accepted"
    STALLED = "stalled"


class PendingSubmission:
    """A task whose dispatch stalled partway through its dependences.

    A ``__slots__`` value class (like the packets it replaced a dataclass
    for): one is allocated per stall, and saturated runs stall often.
    """

    __slots__ = ("task", "trs_id", "tm_index", "next_dep_index", "reason", "retries")

    def __init__(
        self,
        task: Task,
        trs_id: int,
        tm_index: int,
        next_dep_index: int,
        reason: StallReason,
        retries: int = 0,
    ) -> None:
        self.task = task
        self.trs_id = trs_id
        self.tm_index = tm_index
        self.next_dep_index = next_dep_index
        self.reason = reason
        self.retries = retries

    def __repr__(self) -> str:
        return (
            f"PendingSubmission(task={self.task!r}, trs_id={self.trs_id}, "
            f"tm_index={self.tm_index}, next_dep_index={self.next_dep_index}, "
            f"reason={self.reason!r}, retries={self.retries})"
        )


class GatewayResult:
    """What happened when the Gateway processed a new task.

    A ``__slots__`` value class: one is allocated per submission *attempt*,
    and on a run with a saturated Task Memory most attempts are stalls
    retried after every create and finish.
    """

    __slots__ = (
        "status",
        "task",
        "execute",
        "stall_reason",
        "dependences_dispatched",
        "retries",
    )

    def __init__(
        self,
        status: GatewayStatus,
        task: Task,
        execute: Optional[List[ExecuteTaskPacket]] = None,
        stall_reason: Optional[StallReason] = None,
        dependences_dispatched: int = 0,
        retries: int = 0,
    ) -> None:
        self.status = status
        self.task = task
        #: Execute packets produced during the dispatch (task became ready).
        self.execute: List[ExecuteTaskPacket] = (
            execute if execute is not None else []
        )
        #: Stall reason when ``status`` is ``STALLED``.
        self.stall_reason = stall_reason
        #: Number of dependences dispatched during this attempt.
        self.dependences_dispatched = dependences_dispatched
        #: Number of retry attempts consumed so far (for stall-cycle accounting).
        self.retries = retries

    def __repr__(self) -> str:
        return (
            f"GatewayResult(status={self.status!r}, task={self.task!r}, "
            f"execute={self.execute!r}, stall_reason={self.stall_reason!r}, "
            f"dependences_dispatched={self.dependences_dispatched}, "
            f"retries={self.retries})"
        )


class Gateway:
    """Dispatch engine connecting the cores to the TRS and DCT instances."""

    def __init__(
        self,
        config: PicosConfig,
        trs_instances: Sequence[TaskReservationStation],
        dct_instances: Sequence[DependenceChainTracker],
        arbiter: Arbiter,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self.config = config
        self.trs_instances = list(trs_instances)
        self.dct_instances = list(dct_instances)
        self.arbiter = arbiter
        self.stats = stats if stats is not None else PicosStats()
        self._next_trs = 0
        # With the prototype's single TRS the round-robin selection loop
        # collapses to one free-slot test; submissions retry after every
        # create/finish, so most calls on a saturated run are stalled
        # attempts and this is their hot path.
        self._single_trs = trs_instances[0] if len(self.trs_instances) == 1 else None
        self._max_deps = config.max_deps_per_task
        self._pending: Optional[PendingSubmission] = None
        #: task_id -> (trs_id, tm_index) for in-flight tasks, so finished
        #: notifications can be routed without a search.
        self._slot_of_task: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def has_pending_submission(self) -> bool:
        """Whether a new task is stalled partway through its dispatch."""
        return self._pending is not None

    @property
    def pending_submission(self) -> Optional[PendingSubmission]:
        """The stalled submission, if any."""
        return self._pending

    def in_flight_tasks(self) -> int:
        """Number of tasks currently tracked across every TRS."""
        return sum(trs.in_flight for trs in self.trs_instances)

    # ------------------------------------------------------------------
    # new-task path
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> GatewayResult:
        """Process a new task (N1-N6).

        Only one submission can be in flight at a time (the GW is in-order);
        a stalled submission must be resumed before the next task enters.
        """
        if self._pending is not None:
            raise RuntimeError(
                "the Gateway has a stalled submission; call resume() first"
            )
        if task.num_dependences > self._max_deps:
            raise ValueError(
                f"task {task.task_id} carries {task.num_dependences} dependences; "
                f"the TMX supports at most {self._max_deps}"
            )
        if self._single_trs is not None:
            trs_id: Optional[int] = 0 if self._single_trs.has_free_slot else None
        else:
            trs_id = self._select_trs()
        if trs_id is None:
            self.stats.tm_full_stalls += 1
            return GatewayResult(
                status=GatewayStatus.STALLED,
                task=task,
                stall_reason=StallReason.TM_FULL,
            )
        trs = self.trs_instances[trs_id]
        tm_index, ready = trs.accept_task(task.task_id, task.num_dependences)
        self._slot_of_task[task.task_id] = (trs_id, tm_index)
        result = GatewayResult(status=GatewayStatus.ACCEPTED, task=task)
        if ready:
            result.execute.append(
                ExecuteTaskPacket(
                    task_id=task.task_id, trs_id=trs_id, tm_index=tm_index
                )
            )
            return result
        return self._dispatch_dependences(task, trs_id, tm_index, 0, result)

    def resume(self) -> GatewayResult:
        """Retry a stalled submission from the blocked dependence."""
        if self._pending is None:
            raise RuntimeError("no stalled submission to resume")
        pending = self._pending
        self._pending = None
        result = GatewayResult(
            status=GatewayStatus.ACCEPTED,
            task=pending.task,
            retries=pending.retries + 1,
        )
        return self._dispatch_dependences(
            pending.task,
            pending.trs_id,
            pending.tm_index,
            pending.next_dep_index,
            result,
            retries=pending.retries + 1,
        )

    def can_resume(self) -> bool:
        """Whether the blocked dependence of the stalled submission fits now."""
        if self._pending is None:
            return False
        pending = self._pending
        dep = pending.task.dependences[pending.next_dep_index]
        dct = self.dct_instances[self._dct_index_for(dep.address)]
        return dct.can_accept(dep.address, dep.direction)

    def _dispatch_dependences(
        self,
        task: Task,
        trs_id: int,
        tm_index: int,
        start_index: int,
        result: GatewayResult,
        retries: int = 0,
    ) -> GatewayResult:
        """Forward dependences ``start_index``.. to their DCTs (N4/N5).

        Batched: dependences travel to the DCT in maximal consecutive runs
        that route to the same DCT bank (with the prototype's single DCT,
        the whole task is one run).  Each run is one
        :meth:`~repro.core.trs.TaskReservationStation.record_dependences`,
        one :meth:`~repro.core.dct.DependenceChainTracker.process_batch`
        and one :meth:`~repro.core.trs.TaskReservationStation.
        apply_submission_outcomes` call instead of a packet round-trip per
        dependence.  The stored state, stats, stall points and resume
        indices are exactly those of the per-dependence reference flow,
        which the parity suite pins cycle-for-cycle.
        """
        trs = self.trs_instances[trs_id]
        dependences = task.dependences
        total = len(dependences)
        dct_instances = self.dct_instances
        single_dct = len(dct_instances) == 1
        arbiter = self.arbiter
        # Pure routing decisions group the runs; the GW->DCT traffic is
        # accounted below, only for the dependences that actually reach
        # the DCT this attempt (a stalled run's undelivered tail stays
        # uncounted, exactly like the per-dependence reference flow).
        if single_dct:
            runs = ((0, start_index, total),)
        else:
            runs = arbiter.iter_dct_runs(dependences, start_index, total)
        for route, run_start, run_end in runs:
            dct = dct_instances[route]
            slots = trs.record_dependences(tm_index, dependences, run_start, run_end)
            outcomes, stall_reason = dct.process_batch(
                slots, dependences, run_start, run_end
            )
            stored = len(outcomes)
            if not single_dct:
                # The stalled dependence (if any) was routed to the DCT
                # and counts as a message even though it was not stored.
                attempted = stored + (1 if stall_reason is not None else 0)
                if attempted:
                    arbiter.count_dct_messages(route, attempted)
            if stored:
                result.dependences_dispatched += stored
                # The grouped response returns to the owning TRS through
                # the Arbiter, which still counts one message per
                # dependence.
                arbiter.count_trs_messages(stored)
                if trs.apply_submission_outcomes(tm_index, run_start, outcomes):
                    result.execute.append(
                        ExecuteTaskPacket(
                            task_id=task.task_id, trs_id=trs_id, tm_index=tm_index
                        )
                    )
            if stall_reason is not None:
                # Drop the TMX slots recorded past the last stored
                # dependence so the retry records them again cleanly.
                trs.drop_dependence_slots(tm_index, run_end - run_start - stored)
                self._pending = PendingSubmission(
                    task=task,
                    trs_id=trs_id,
                    tm_index=tm_index,
                    next_dep_index=run_start + stored,
                    reason=stall_reason,
                    retries=retries,
                )
                result.status = GatewayStatus.STALLED
                result.stall_reason = stall_reason
                return result
        return result

    # ------------------------------------------------------------------
    # finished-task path
    # ------------------------------------------------------------------
    def notify_finished(
        self, task_id: int
    ) -> Tuple[Sequence[int], List[int], List[int]]:
        """Process a finished-task notification (F1-F3).

        Returns the finish run the owning TRS emitted towards the DCTs --
        ``(slots, vm_indices, addresses)`` parallel sequences, one element
        per dependence of the task; the caller (the accelerator facade)
        routes the run and collects the wake-ups.
        """
        if task_id not in self._slot_of_task:
            raise KeyError(f"task {task_id} is not in flight")
        trs_id, tm_index = self._slot_of_task.pop(task_id)
        return self.trs_instances[trs_id].handle_finished(task_id, tm_index)

    def slot_of(self, task_id: int) -> Tuple[int, int]:
        """(TRS id, TM index) of an in-flight task."""
        return self._slot_of_task[task_id]

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------
    def _select_trs(self) -> Optional[int]:
        """Pick the TRS for a new task (round-robin over free instances)."""
        for offset in range(len(self.trs_instances)):
            candidate = (self._next_trs + offset) % len(self.trs_instances)
            if self.trs_instances[candidate].has_free_slot:
                self._next_trs = (candidate + 1) % len(self.trs_instances)
                return candidate
        return None

    def _dct_index_for(self, address: int) -> int:
        """DCT instance tracking ``address`` (stable address hash)."""
        if len(self.dct_instances) == 1:
            return 0
        return self.arbiter.dct_for_address(address)
