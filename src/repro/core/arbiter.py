"""Arbiter (ARB): routing of TRS <-> DCT traffic.

With a single TRS and a single DCT (the prototype of Figure 3b) the Arbiter
degenerates into a pass-through, but the future architecture of Figure 3a
scales by instantiating N TRSs and N DCTs; the Arbiter then decides which
DCT tracks which dependence address and which TRS receives each
notification.  The policy implemented here matches the natural hardware
choice: dependences are distributed over DCT instances by address hash (so
one address is always tracked by the same DCT), and notifications are routed
to the TRS instance encoded in the target slot reference.
"""

from __future__ import annotations

from typing import Dict

from repro.core.hashing import pearson_fold
from repro.core.packets import TaskSlotRef


class Arbiter:
    """Routes packets between TRS and DCT instances and counts traffic."""

    def __init__(self, num_trs: int, num_dct: int) -> None:
        if num_trs < 1 or num_dct < 1:
            raise ValueError("the Arbiter needs at least one TRS and one DCT")
        self.num_trs = num_trs
        self.num_dct = num_dct
        self.messages_to_trs = 0
        self.messages_to_dct = 0
        self._per_dct_load: Dict[int, int] = {i: 0 for i in range(num_dct)}

    # ------------------------------------------------------------------
    # routing decisions
    # ------------------------------------------------------------------
    def dct_index_for(self, address: int) -> int:
        """Pure routing decision: which DCT tracks ``address``.

        The mapping must be a pure function of the address so every access
        to the same data is matched by the same DCT; a Pearson fold keeps
        the distribution balanced even for block-aligned address streams.
        No traffic is accounted -- the batched Gateway uses this to group
        a task's dependences into same-bank runs and accounts the messages
        only for the dependences actually delivered to the DCT
        (:meth:`count_dct_messages`).
        """
        if self.num_dct == 1:
            return 0
        return pearson_fold(address) % self.num_dct

    def dct_for_address(self, address: int) -> int:
        """DCT instance for ``address``, counted as one routed message."""
        index = self.dct_index_for(address)
        self._per_dct_load[index] += 1
        self.messages_to_dct += 1
        return index

    def iter_dct_runs(self, packets, start: int, end: int):
        """Yield ``(dct_index, run_start, run_end)`` over same-route runs.

        Groups ``packets[start:end]`` (anything with an ``.address``) into
        maximal consecutive runs tracked by one DCT, hashing every address
        exactly once.  Routing only -- callers account the traffic
        (:meth:`count_dct_messages`) for the packets actually delivered,
        which differs between the dispatch path (a stalled run's tail is
        never delivered) and the finish path (every packet is).
        """
        index_for = self.dct_index_for
        run_start = start
        if run_start >= end:
            return
        route = index_for(packets[run_start].address)
        while run_start < end:
            run_end = run_start + 1
            next_route = route
            while run_end < end:
                next_route = index_for(packets[run_end].address)
                if next_route != route:
                    break
                run_end += 1
            yield route, run_start, run_end
            run_start = run_end
            route = next_route

    def iter_dct_address_runs(self, addresses, start: int, end: int):
        """Yield ``(dct_index, run_start, run_end)`` over same-route runs.

        The flat-datapath twin of :meth:`iter_dct_runs`: ``addresses`` is a
        plain sequence of dependence addresses (the finish path of the
        integer-handle datapath carries parallel lists instead of packet
        objects).  Routing only -- callers account the traffic.
        """
        index_for = self.dct_index_for
        run_start = start
        if run_start >= end:
            return
        route = index_for(addresses[run_start])
        while run_start < end:
            run_end = run_start + 1
            next_route = route
            while run_end < end:
                next_route = index_for(addresses[run_end])
                if next_route != route:
                    break
                run_end += 1
            yield route, run_start, run_end
            run_start = run_end
            route = next_route

    def count_dct_messages(self, index: int, count: int) -> None:
        """Record ``count`` dependence packets routed to DCT ``index``.

        The batched Gateway routes a run of dependences with one decision;
        the traffic stays accounted per dependence *delivered* (on a
        mid-run stall the undelivered tail is not counted, exactly like
        the per-dependence reference flow that only routed a dependence
        when it reached the DCT).
        """
        self._per_dct_load[index] += count
        self.messages_to_dct += count

    def trs_for_slot(self, slot: TaskSlotRef) -> int:
        """TRS instance that owns the task referenced by ``slot``."""
        if not 0 <= slot.trs_id < self.num_trs:
            raise ValueError(f"slot references unknown TRS instance {slot.trs_id}")
        self.messages_to_trs += 1
        return slot.trs_id

    def trs_for_slot_index(self, trs_index: int) -> int:
        """TRS instance ``trs_index`` (decoded from a packed slot handle).

        The flat-datapath twin of :meth:`trs_for_slot`: the caller decodes
        the TRS id from the integer slot handle; the Arbiter validates the
        route and counts the notification exactly like the packet form.
        """
        if not 0 <= trs_index < self.num_trs:
            raise ValueError(f"slot references unknown TRS instance {trs_index}")
        self.messages_to_trs += 1
        return trs_index

    def count_trs_messages(self, count: int) -> None:
        """Record ``count`` DCT->TRS notifications routed as one batch.

        The batched Gateway dispatch answers a whole run of dependences
        with one grouped response instead of one packet each; the message
        count stays per-dependence, matching what ``trs_for_slot`` would
        have accumulated packet by packet.
        """
        self.messages_to_trs += count

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def dct_load(self) -> Dict[int, int]:
        """Number of dependence packets routed to each DCT instance."""
        return dict(self._per_dct_load)
