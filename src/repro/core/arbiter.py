"""Arbiter (ARB): routing of TRS <-> DCT traffic.

With a single TRS and a single DCT (the prototype of Figure 3b) the Arbiter
degenerates into a pass-through, but the future architecture of Figure 3a
scales by instantiating N TRSs and N DCTs; the Arbiter then decides which
DCT tracks which dependence address and which TRS receives each
notification.  The policy implemented here matches the natural hardware
choice: dependences are distributed over DCT instances by address hash (so
one address is always tracked by the same DCT), and notifications are routed
to the TRS instance encoded in the target slot reference.
"""

from __future__ import annotations

from typing import Dict

from repro.core.hashing import pearson_fold
from repro.core.packets import TaskSlotRef


class Arbiter:
    """Routes packets between TRS and DCT instances and counts traffic."""

    def __init__(self, num_trs: int, num_dct: int) -> None:
        if num_trs < 1 or num_dct < 1:
            raise ValueError("the Arbiter needs at least one TRS and one DCT")
        self.num_trs = num_trs
        self.num_dct = num_dct
        self.messages_to_trs = 0
        self.messages_to_dct = 0
        self._per_dct_load: Dict[int, int] = {i: 0 for i in range(num_dct)}

    # ------------------------------------------------------------------
    # routing decisions
    # ------------------------------------------------------------------
    def dct_for_address(self, address: int) -> int:
        """DCT instance responsible for tracking ``address``.

        The mapping must be a pure function of the address so every access
        to the same data is matched by the same DCT; a Pearson fold keeps
        the distribution balanced even for block-aligned address streams.
        """
        if self.num_dct == 1:
            index = 0
        else:
            index = pearson_fold(address) % self.num_dct
        self._per_dct_load[index] += 1
        self.messages_to_dct += 1
        return index

    def trs_for_slot(self, slot: TaskSlotRef) -> int:
        """TRS instance that owns the task referenced by ``slot``."""
        if not 0 <= slot.trs_id < self.num_trs:
            raise ValueError(f"slot references unknown TRS instance {slot.trs_id}")
        self.messages_to_trs += 1
        return slot.trs_id

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def dct_load(self) -> Dict[int, int]:
        """Number of dependence packets routed to each DCT instance."""
        return dict(self._per_dct_load)
