"""Task Reservation Station (TRS).

The TRS is the major task-management unit of Picos (Section III-A): it
stores in-flight tasks in its Task Memory, tracks the readiness of new tasks
by counting the ready notifications arriving from the DCT, walks consumer
chains backwards when a wake-up arrives (links 2-3 of Figure 5), and manages
the deletion of finished tasks, emitting one finish notification per
dependence towards the DCT.

Integer-handle surface
----------------------

The hot datapath identifies a dependence slot by the packed integer handle

    ``slot = trs_id * (tm_entries * max_deps) + tm_index * max_deps + dep_index``

with ``-1`` meaning *none* -- no object is allocated per notification (the
reference model's :class:`~repro.core.packets.TaskSlotRef` objects survive
only in :mod:`repro.core.reference`).  The handle arithmetic is exactly the
TMX SRAM address computation of the prototype; ``docs/datapath.md``
documents the encoding and the cycle-identity contract against the
reference implementation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import PicosConfig
from repro.core.stats import PicosStats
from repro.core.task_memory import TaskMemory


class TaskReservationStation:
    """One TRS instance: TM0/TMX storage plus the readiness control logic."""

    def __init__(
        self,
        trs_id: int,
        config: PicosConfig,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self.trs_id = trs_id
        self.config = config
        self.stats = stats if stats is not None else PicosStats()
        self.task_memory = TaskMemory(
            entries=config.tm_entries, max_deps_per_task=config.max_deps_per_task
        )
        #: Slot-handle geometry (shared by every TRS/DCT of one accelerator).
        self.slot_stride = config.max_deps_per_task
        self.slots_per_trs = config.tm_entries * self.slot_stride
        self.slot_base = trs_id * self.slots_per_trs

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    @property
    def has_free_slot(self) -> bool:
        """Whether a New Entry Request would succeed."""
        return not self.task_memory.full

    @property
    def in_flight(self) -> int:
        """Number of tasks currently stored in this TRS."""
        return self.task_memory.occupied

    # ------------------------------------------------------------------
    # new-task path (N3, N5, N6)
    # ------------------------------------------------------------------
    def accept_task(self, task_id: int, num_deps: int) -> Tuple[int, bool]:
        """Store a new task in a free TM entry.

        Returns ``(tm_index, ready)``; ``ready`` is ``True`` when the task
        has no dependences and goes straight to the Task Scheduler (N6).
        """
        tm = self.task_memory
        tm_index = tm.allocate(task_id, num_deps)
        stats = self.stats
        stats.tasks_accepted += 1
        occupied = tm.occupied
        if occupied > stats.tm_high_water:
            stats.tm_high_water = occupied
        if num_deps == 0:
            stats.tasks_without_deps += 1
            return tm_index, True
        return tm_index, False

    def record_dependences(
        self, tm_index: int, dependences: Sequence, start: int, end: int
    ) -> range:
        """Reserve TMX slots for a run of dependences of an in-flight task.

        One TM entry read records ``dependences[start:end]`` (each needs
        ``.address`` and ``.direction``) and the returned ``range`` holds
        their packed slot handles in order -- no per-dependence reference
        object travels to the DCT.
        """
        self.task_memory.add_dependence_slots(tm_index, dependences, start, end)
        base = self.slot_base + tm_index * self.slot_stride
        return range(base + start, base + end)

    def drop_dependence_slots(self, tm_index: int, count: int) -> None:
        """Drop the last ``count`` recorded TMX slots (stalled dispatch)."""
        if count:
            self.task_memory.drop_dependence_slots(tm_index, count)

    def apply_submission_outcomes(
        self,
        tm_index: int,
        start: int,
        outcomes: Sequence[Tuple[bool, int, int]],
    ) -> bool:
        """Store a run of DCT outcomes for dependences ``start``.. of a task.

        Each outcome is a ``(ready, vm_index, predecessor)`` triple with an
        integer predecessor handle (``-1`` for none): a *ready* outcome
        marks its slot ready (a freshly inserted dependence has no
        predecessor, so no chained wake-up can occur), a *dependent*
        outcome stores the version and consumer-chain link.  Returns
        whether the task became fully ready (only the last dependence of
        the task can complete readiness).
        """
        tm = self.task_memory
        base = tm_index * self.slot_stride
        s_vm_index = tm._slot_vm_index
        s_ready = tm._slot_ready
        s_predecessor = tm._slot_predecessor
        ready_added = 0
        offset = base + start
        for ready, vm_index, predecessor in outcomes:
            s_vm_index[offset] = vm_index
            if ready:
                s_ready[offset] = True
                ready_added += 1
            else:
                s_predecessor[offset] = predecessor
            offset += 1
        ready_deps = tm._ready_deps[tm_index] + ready_added
        tm._ready_deps[tm_index] = ready_deps
        return ready_deps >= tm._num_deps[tm_index]

    def handle_ready_slot(self, slot: int, vm_index: int) -> Tuple[Optional[int], int]:
        """Mark one dependence slot ready and propagate the chained wake-up.

        Returns ``(task_id, chained)``: ``task_id`` is the task that became
        fully ready (``None`` otherwise) and ``chained`` the slot handle of
        the earlier consumer of the same version to wake next (``-1`` for
        none; the chained wake-up carries the same VM index).
        """
        tm = self.task_memory
        local = slot - self.slot_base
        tm_index = local // self.slot_stride
        tm.check_occupied(tm_index)
        dep_index = local - tm_index * self.slot_stride
        if dep_index >= tm._dep_count[tm_index]:
            raise KeyError(
                f"task at TM entry {tm_index} has no dependence "
                f"slot {dep_index}"
            )
        if tm._slot_ready[local]:
            # Idempotence guard: the hardware never sends two ready
            # notifications for the same slot, but being robust here keeps
            # the model safe under exploratory drivers.
            return None, -1
        tm._slot_ready[local] = True
        if tm._slot_vm_index[local] < 0:
            tm._slot_vm_index[local] = vm_index
        ready_deps = tm._ready_deps[tm_index] + 1
        tm._ready_deps[tm_index] = ready_deps
        chained = tm._slot_predecessor[local]
        if chained >= 0:
            # Walk the consumer chain backwards: the earlier consumer of the
            # same version is woken next (links 2-3 of Figure 5).
            self.stats.chain_hops += 1
        if ready_deps >= tm._num_deps[tm_index]:
            return tm._task_id[tm_index], chained
        return None, chained

    # ------------------------------------------------------------------
    # finished-task path (F2, F3)
    # ------------------------------------------------------------------
    def handle_finished(
        self, task_id: int, tm_index: int
    ) -> Tuple[range, List[int], List[int]]:
        """Retire a finished task: release its entry and emit the finish run.

        Returns ``(slots, vm_indices, addresses)`` -- three parallel
        sequences, one element per dependence of the task in pragma order,
        forming the batched F3 traffic towards the DCTs.
        """
        tm = self.task_memory
        tm.check_occupied(tm_index)
        if tm._task_id[tm_index] != task_id:
            raise ValueError(
                f"finished task {task_id} does not match TM entry "
                f"{tm_index} (holds task {tm._task_id[tm_index]})"
            )
        if tm._ready_deps[tm_index] < tm._num_deps[tm_index]:
            raise RuntimeError(
                f"task {task_id} reported finished before all its "
                "dependences were ready"
            )
        base = tm_index * self.slot_stride
        count = tm._dep_count[tm_index]
        vm_indices = tm._slot_vm_index[base : base + count]
        for dep_index, vm_index in enumerate(vm_indices):
            if vm_index < 0:
                raise RuntimeError(
                    f"dependence {dep_index} of task {task_id} has "
                    "no version assigned"
                )
        addresses = tm._slot_address[base : base + count]
        first = self.slot_base + base
        tm.release(tm_index)
        self.stats.tasks_retired += 1
        return range(first, first + count), vm_indices, addresses

    # ------------------------------------------------------------------
    # lookup helpers used by the Gateway
    # ------------------------------------------------------------------
    def tm_index_of(self, task_id: int) -> int:
        """TM entry currently holding ``task_id``."""
        return self.task_memory.tm_index_for_task(task_id)

    def holds_task(self, task_id: int) -> bool:
        """Whether ``task_id`` is in flight in this TRS."""
        return self.task_memory.has_task(task_id)
