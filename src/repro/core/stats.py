"""Hardware counters of the Picos accelerator.

The prototype exposes a handful of counters through its status registers;
the simulator extends that set with every quantity the paper reports:
DM conflicts (Table II), stall causes, packet counts, pipeline occupancy and
the latency / throughput figures of Table IV.

Per-delivered-event accounting is exact by contract: the batched hot paths
(Gateway->DCT dependence runs, same-cycle completion draining, ready-event
cycle-clusters) must leave every counter byte-identical to the
per-event reference flows -- a batch of *n* still accounts *n* packets,
*n* delivered notifications and the same stall/watermark updates.  The
batched-vs-reference parity classes in ``tests/test_perf_parity.py``
compare full counter dictionaries across both modes on every CI run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PicosStats:
    """Aggregated hardware counters of one Picos instance."""

    # new-task path
    tasks_accepted: int = 0
    dependences_processed: int = 0
    tasks_without_deps: int = 0

    # finished-task path
    tasks_retired: int = 0
    finish_packets: int = 0

    # dependence tracking outcomes
    ready_packets: int = 0
    dependent_packets: int = 0
    wakeup_packets: int = 0
    chain_hops: int = 0

    # structural hazards
    dm_conflicts: int = 0
    dm_conflict_stall_cycles: int = 0
    tm_full_stalls: int = 0
    vm_full_stalls: int = 0

    # occupancy
    busy_cycles: int = 0
    dm_allocations: int = 0
    vm_allocations: int = 0
    dm_high_water: int = 0
    vm_high_water: int = 0
    tm_high_water: int = 0

    # per-category extra counters (keyed by free-form name)
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a free-form named counter."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def as_dict(self) -> Dict[str, int]:
        """Flatten every counter into a plain dictionary (for reports)."""
        result: Dict[str, int] = {
            "tasks_accepted": self.tasks_accepted,
            "dependences_processed": self.dependences_processed,
            "tasks_without_deps": self.tasks_without_deps,
            "tasks_retired": self.tasks_retired,
            "finish_packets": self.finish_packets,
            "ready_packets": self.ready_packets,
            "dependent_packets": self.dependent_packets,
            "wakeup_packets": self.wakeup_packets,
            "chain_hops": self.chain_hops,
            "dm_conflicts": self.dm_conflicts,
            "dm_conflict_stall_cycles": self.dm_conflict_stall_cycles,
            "tm_full_stalls": self.tm_full_stalls,
            "vm_full_stalls": self.vm_full_stalls,
            "busy_cycles": self.busy_cycles,
            "dm_allocations": self.dm_allocations,
            "vm_allocations": self.vm_allocations,
            "dm_high_water": self.dm_high_water,
            "vm_high_water": self.vm_high_water,
            "tm_high_water": self.tm_high_water,
        }
        result.update(self.extra)
        return result


@dataclass
class LatencySamples:
    """Collection of per-task latency samples used by the Table IV analysis."""

    samples: List[int] = field(default_factory=list)

    def add(self, value: int) -> None:
        """Record one latency sample (in cycles)."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self.samples)

    @property
    def first(self) -> int:
        """The first sample (the L1st metric of Table IV)."""
        if not self.samples:
            raise ValueError("no latency samples recorded")
        return self.samples[0]

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def steady_state_mean(self, skip: int = 1) -> float:
        """Mean of the samples after discarding the first ``skip`` warm-up ones."""
        tail = self.samples[skip:]
        if not tail:
            return 0.0
        return sum(tail) / len(tail)
