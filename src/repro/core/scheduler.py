"""Task Scheduler (TS): the ready-task queue of the Picos accelerator.

The TS is the second interface between Picos and the processing cores: it
stores ready tasks and hands them to idle workers.  The prototype uses a
FIFO queue by default; Section V-A (Figure 9, right) also evaluates a LIFO
queue as a way of changing the wake-up order of ready tasks, so both
policies are provided.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional


class SchedulingPolicy(enum.Enum):
    """Ready-queue ordering policy of the Task Scheduler."""

    FIFO = "fifo"
    LIFO = "lifo"


class TaskScheduler:
    """Ready-task queue with a configurable ordering policy."""

    def __init__(self, policy: SchedulingPolicy = SchedulingPolicy.FIFO) -> None:
        self.policy = policy
        self._queue: Deque[int] = deque()
        self._total_scheduled = 0
        self._max_occupancy = 0

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """``True`` when no ready task is waiting."""
        return not self._queue

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def total_scheduled(self) -> int:
        """Number of tasks that have ever been queued as ready."""
        return self._total_scheduled

    @property
    def max_occupancy(self) -> int:
        """High-water mark of the ready queue."""
        return self._max_occupancy

    # ------------------------------------------------------------------
    # queue operations
    # ------------------------------------------------------------------
    def push(self, task_id: int) -> None:
        """Add a ready task to the queue."""
        queue = self._queue
        queue.append(task_id)
        self._total_scheduled += 1
        if len(queue) > self._max_occupancy:
            self._max_occupancy = len(queue)

    def pop(self) -> int:
        """Return the next task to execute according to the policy."""
        if not self._queue:
            raise IndexError("the Task Scheduler has no ready task")
        if self.policy is SchedulingPolicy.FIFO:
            return self._queue.popleft()
        return self._queue.pop()

    def try_pop(self) -> Optional[int]:
        """Return the next ready task, or ``None`` if the queue is empty."""
        if not self._queue:
            return None
        return self.pop()

    def peek_all(self) -> List[int]:
        """The ready tasks currently queued, in insertion order."""
        return list(self._queue)

    def clear(self) -> None:
        """Drop every queued task (used when resetting the accelerator)."""
        self._queue.clear()
