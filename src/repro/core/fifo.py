"""Bounded FIFO queues used for all inter-module communication.

Each control unit of Figure 3b "only relies on the status (empty or full)
and packets of those FIFOs to ensure asynchronous communications with other
modules".  The :class:`BoundedFifo` class models exactly that interface:
push, pop, empty/full status, plus occupancy statistics that the hardware
counters report.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class FifoFullError(RuntimeError):
    """Raised when pushing into a full FIFO."""


class FifoEmptyError(RuntimeError):
    """Raised when popping from an empty FIFO."""


class BoundedFifo(Generic[T]):
    """A bounded first-in first-out queue with occupancy accounting.

    Parameters
    ----------
    capacity:
        Maximum number of in-flight packets; ``None`` means unbounded (used
        by the behavioural model when the exact FIFO depth is irrelevant).
    name:
        Human-readable name used in statistics and error messages.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "fifo") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("FIFO capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._total_pushed = 0
        self._max_occupancy = 0

    # ------------------------------------------------------------------
    # status signals
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """``True`` when the FIFO holds no packets."""
        return not self._items

    @property
    def full(self) -> bool:
        """``True`` when the FIFO cannot accept another packet."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`FifoFullError` when full."""
        if self.full:
            raise FifoFullError(f"FIFO {self.name!r} is full (capacity={self.capacity})")
        self._items.append(item)
        self._total_pushed += 1
        if len(self._items) > self._max_occupancy:
            self._max_occupancy = len(self._items)

    def try_push(self, item: T) -> bool:
        """Append ``item`` if there is room; return whether it was accepted."""
        if self.full:
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        """Remove and return the oldest packet; raises when empty."""
        if not self._items:
            raise FifoEmptyError(f"FIFO {self.name!r} is empty")
        return self._items.popleft()

    def peek(self) -> T:
        """Return the oldest packet without removing it."""
        if not self._items:
            raise FifoEmptyError(f"FIFO {self.name!r} is empty")
        return self._items[0]

    def drain(self) -> List[T]:
        """Remove and return every packet, oldest first."""
        items = list(self._items)
        self._items.clear()
        return items

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def total_pushed(self) -> int:
        """Number of packets that have ever entered this FIFO."""
        return self._total_pushed

    @property
    def max_occupancy(self) -> int:
        """High-water mark of the FIFO occupancy."""
        return self._max_occupancy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BoundedFifo(name={self.name!r}, size={len(self._items)}, "
            f"capacity={self.capacity})"
        )
