"""The Picos accelerator facade.

:class:`PicosAccelerator` assembles the Gateway, TRS, DCT, Arbiter and Task
Scheduler instances described in Section III and exposes the co-processor
interface the paper describes from the software's point of view:

1. it *receives task dependence information* (task id and its dependences)
   at task-creation time -- :meth:`PicosAccelerator.submit_task`;
2. it *sends ready-to-execute task information* to the worker threads --
   :meth:`PicosAccelerator.pop_ready` (or the ready lists attached to each
   result, for timing-aware drivers);
3. it receives finished-task notifications and releases the dependences --
   :meth:`PicosAccelerator.notify_finish`.

Every operation returns both its functional effect (which tasks became
ready) and its timing effect (pipeline occupancy and readiness latency in
cycles), calibrated against the HW-only measurements of Table IV.  The
Hardware-In-the-Loop driver (:mod:`repro.sim.hil`) turns those costs into a
schedule; purely functional users may ignore them.
"""

from __future__ import annotations

import enum
import os
from collections import deque
from typing import Dict, List, Optional

from repro.core.arbiter import Arbiter
from repro.core.config import PicosConfig
from repro.core.dct import DependenceChainTracker, StallReason
from repro.core.gateway import Gateway, GatewayStatus
from repro.core.scheduler import SchedulingPolicy, TaskScheduler
from repro.core.stats import PicosStats
from repro.core.trs import TaskReservationStation
from repro.runtime.task import Task

#: Environment override forcing the object-based reference datapath
#: (:mod:`repro.core.reference`) regardless of the configuration; used by
#: the CI differential leg.  Any value except ``""`` and ``"0"`` counts.
REFERENCE_DATAPATH_ENV = "REPRO_REFERENCE_DATAPATH"


def _use_reference_datapath(config: PicosConfig) -> bool:
    if config.reference_datapath:
        return True
    return os.environ.get(REFERENCE_DATAPATH_ENV, "0") not in ("", "0")


class SubmitStatus(enum.Enum):
    """Outcome of a task submission."""

    ACCEPTED = "accepted"
    STALLED = "stalled"


class ReadyTask:
    """A task that became ready, with its readiness latency.

    ``latency`` counts cycles from the start of the operation that made the
    task ready (a submission or a finish notification) until the task is
    visible in the Task Scheduler.  A ``__slots__`` value class: one is
    allocated per readiness event of every task.
    """

    __slots__ = ("task_id", "latency")

    def __init__(self, task_id: int, latency: int) -> None:
        self.task_id = task_id
        self.latency = latency

    def __repr__(self) -> str:
        return f"ReadyTask(task_id={self.task_id}, latency={self.latency})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadyTask):
            return NotImplemented
        return self.task_id == other.task_id and self.latency == other.latency

    def __hash__(self) -> int:
        return hash((self.task_id, self.latency))


class SubmitResult:
    """Result of :meth:`PicosAccelerator.submit_task` (or a resume)."""

    __slots__ = ("status", "task_id", "occupancy", "ready", "stall_reason")

    def __init__(
        self,
        status: SubmitStatus,
        task_id: int,
        occupancy: int = 0,
        ready: Optional[List[ReadyTask]] = None,
        stall_reason: Optional[StallReason] = None,
    ) -> None:
        self.status = status
        self.task_id = task_id
        #: Cycles the Picos pipeline is occupied by this submission.
        self.occupancy = occupancy
        #: Tasks (at most the submitted one) that became ready.
        self.ready: List[ReadyTask] = ready if ready is not None else []
        #: Why the submission stalled, when ``status`` is ``STALLED``.
        self.stall_reason = stall_reason

    def __repr__(self) -> str:
        return (
            f"SubmitResult(status={self.status!r}, task_id={self.task_id}, "
            f"occupancy={self.occupancy}, ready={self.ready!r}, "
            f"stall_reason={self.stall_reason!r})"
        )

    @property
    def accepted(self) -> bool:
        """``True`` when the task fully entered the accelerator."""
        return self.status is SubmitStatus.ACCEPTED


class FinishResult:
    """Result of :meth:`PicosAccelerator.notify_finish`."""

    __slots__ = ("task_id", "occupancy", "ready")

    def __init__(
        self,
        task_id: int,
        occupancy: int = 0,
        ready: Optional[List[ReadyTask]] = None,
    ) -> None:
        self.task_id = task_id
        #: Cycles the Picos pipeline is occupied by this finish notification.
        self.occupancy = occupancy
        #: Tasks woken by this finish, in wake-up order (consumer chains wake
        #: from the last consumer backwards -- Section III-D).
        self.ready: List[ReadyTask] = ready if ready is not None else []

    def __repr__(self) -> str:
        return (
            f"FinishResult(task_id={self.task_id}, occupancy={self.occupancy}, "
            f"ready={self.ready!r})"
        )


class PicosAccelerator:
    """Functional + timing model of the full Picos hardware."""

    def __init__(
        self,
        config: Optional[PicosConfig] = None,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        auto_enqueue: bool = True,
    ) -> None:
        self.config = config if config is not None else PicosConfig()
        self.stats = PicosStats()
        self.arbiter = Arbiter(self.config.num_trs, self.config.num_dct)
        if _use_reference_datapath(self.config):
            # The object-based oracle, behind the same integer-handle
            # surface (cycle-identical by contract -- docs/datapath.md).
            from repro.core.reference.adapter import (
                ReferenceDependenceChainTracker,
                ReferenceTaskReservationStation,
            )

            trs_class = ReferenceTaskReservationStation
            dct_class = ReferenceDependenceChainTracker
        else:
            trs_class = TaskReservationStation
            dct_class = DependenceChainTracker
        self.trs_instances = [
            trs_class(i, self.config, self.stats)
            for i in range(self.config.num_trs)
        ]
        self.dct_instances = [
            dct_class(i, self.config, self.stats)
            for i in range(self.config.num_dct)
        ]
        #: Slot handles pack ``trs_id * slots_per_trs + tm_index * max_deps
        #: + dep_index``; the wake-walk decodes the owning TRS with one
        #: integer division.
        self._slots_per_trs = self.config.tm_entries * self.config.max_deps_per_task
        self.gateway = Gateway(
            self.config, self.trs_instances, self.dct_instances, self.arbiter, self.stats
        )
        self.scheduler = TaskScheduler(policy)
        self.auto_enqueue = auto_enqueue
        # The pipeline costs are pure functions of the dependence count and
        # the count is bounded by the TMX capacity, so the per-task cost
        # lookups collapse to one list index each.
        max_deps = self.config.max_deps_per_task
        self._new_task_occupancy = [
            self.config.new_task_occupancy(n) for n in range(max_deps + 1)
        ]
        self._new_task_ready_latency = [
            self.config.new_task_ready_latency(n) for n in range(max_deps + 1)
        ]
        self._finish_occupancy = [
            self.config.finish_occupancy(n) for n in range(max_deps + 1)
        ]
        #: task_id -> number of dependences, needed for finish-cost accounting.
        self._deps_of_task: Dict[int, int] = {}
        self._submitted = 0
        self._finished = 0

    # ------------------------------------------------------------------
    # co-processor interface: new tasks
    # ------------------------------------------------------------------
    def submit_task(self, task: Task) -> SubmitResult:
        """Submit a new task with its dependences (packets N1-N6).

        When the accelerator has no room (no free TM entry, a DM conflict or
        a full VM), the result is ``STALLED``; the caller must wait until a
        task finishes and then call :meth:`resume_submission`.
        """
        gateway_result = self.gateway.submit(task)
        return self._submit_result_from(task, gateway_result)

    def resume_submission(self) -> SubmitResult:
        """Retry the stalled submission from the blocked dependence."""
        pending = self.gateway.pending_submission
        if pending is None:
            raise RuntimeError("no stalled submission to resume")
        task = pending.task
        gateway_result = self.gateway.resume()
        return self._submit_result_from(task, gateway_result)

    def _submit_result_from(self, task: Task, gateway_result) -> SubmitResult:
        if gateway_result.status is GatewayStatus.STALLED:
            return SubmitResult(
                status=SubmitStatus.STALLED,
                task_id=task.task_id,
                occupancy=0,
                stall_reason=gateway_result.stall_reason,
            )
        num_deps = task.num_dependences
        self._deps_of_task[task.task_id] = num_deps
        self._submitted += 1
        occupancy = self._new_task_occupancy[num_deps]
        if gateway_result.retries:
            occupancy += (
                gateway_result.retries * self.config.dm_conflict_stall_cycles
            )
        self.stats.busy_cycles += occupancy
        result = SubmitResult(
            status=SubmitStatus.ACCEPTED, task_id=task.task_id, occupancy=occupancy
        )
        latency = self._new_task_ready_latency[num_deps]
        for execute in gateway_result.execute:
            ready = ReadyTask(task_id=execute.task_id, latency=latency)
            result.ready.append(ready)
            if self.auto_enqueue:
                self.scheduler.push(ready.task_id)
        return result

    @property
    def has_pending_submission(self) -> bool:
        """Whether a submission is stalled inside the Gateway."""
        return self.gateway.has_pending_submission

    def can_resume(self) -> bool:
        """Whether the stalled submission would make progress if resumed."""
        return self.gateway.can_resume()

    @property
    def pending_stall_reason(self) -> Optional[StallReason]:
        """Reason of the current stall, or ``None``."""
        pending = self.gateway.pending_submission
        return None if pending is None else pending.reason

    # ------------------------------------------------------------------
    # co-processor interface: finished tasks
    # ------------------------------------------------------------------
    def notify_finish(self, task_id: int) -> FinishResult:
        """Notify that a worker finished ``task_id`` (packets F1-F4)."""
        slots, vm_indices, addresses = self.gateway.notify_finished(task_id)
        num_deps = self._deps_of_task.pop(task_id, len(slots))
        occupancy = self._finish_occupancy[num_deps]
        self.stats.busy_cycles += occupancy
        result = FinishResult(task_id=task_id, occupancy=occupancy)

        # Route the finish run to its DCTs in consecutive same-bank runs
        # (one batch per finishing task with the prototype's single DCT)
        # and collect the wake-ups, then walk consumer chains through the
        # owning TRS instances.  Unlike the dispatch path, every finish
        # notification is delivered (releases cannot stall), so each run's
        # full length is accounted.
        pending_wakeups: deque = deque()
        extend_wakeups = pending_wakeups.extend
        dct_instances = self.dct_instances
        total = len(slots)
        if len(dct_instances) == 1:
            extend_wakeups(
                (wake_slot, wake_vm, 0)
                for wake_slot, wake_vm in dct_instances[0].process_finish_run(
                    slots, vm_indices, 0, total
                )
            )
        else:
            arbiter = self.arbiter
            for route, run_start, run_end in arbiter.iter_dct_address_runs(
                addresses, 0, total
            ):
                arbiter.count_dct_messages(route, run_end - run_start)
                extend_wakeups(
                    (wake_slot, wake_vm, 0)
                    for wake_slot, wake_vm in dct_instances[
                        route
                    ].process_finish_run(slots, vm_indices, run_start, run_end)
                )

        arbiter = self.arbiter
        trs_instances = self.trs_instances
        slots_per_trs = self._slots_per_trs
        wake_latency = self.config.wake_latency
        chain_hop_cycles = self.config.chain_hop_cycles
        auto_enqueue = self.auto_enqueue
        scheduler_push = self.scheduler.push
        ready_append = result.ready.append
        popleft = pending_wakeups.popleft
        while pending_wakeups:
            wake_slot, wake_vm, depth = popleft()
            trs = trs_instances[
                arbiter.trs_for_slot_index(wake_slot // slots_per_trs)
            ]
            ready_task_id, chained = trs.handle_ready_slot(wake_slot, wake_vm)
            if ready_task_id is not None:
                latency = occupancy + wake_latency + depth * chain_hop_cycles
                ready_append(ReadyTask(task_id=ready_task_id, latency=latency))
                if auto_enqueue:
                    scheduler_push(ready_task_id)
            if chained >= 0:
                # The chained wake-up carries the same VM index (the
                # earlier consumer belongs to the same version).
                pending_wakeups.append((chained, wake_vm, depth + 1))

        self._finished += 1
        return result

    # ------------------------------------------------------------------
    # co-processor interface: ready tasks
    # ------------------------------------------------------------------
    def pop_ready(self) -> Optional[int]:
        """Fetch the next ready task from the Task Scheduler, if any."""
        return self.scheduler.try_pop()

    @property
    def ready_count(self) -> int:
        """Number of ready tasks waiting in the Task Scheduler."""
        return len(self.scheduler)

    # ------------------------------------------------------------------
    # aggregate status
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of tasks currently stored in the accelerator."""
        return self.gateway.in_flight_tasks()

    @property
    def tasks_submitted(self) -> int:
        """Number of tasks fully accepted so far."""
        return self._submitted

    @property
    def tasks_finished(self) -> int:
        """Number of finished-task notifications processed so far."""
        return self._finished

    @property
    def dm_conflicts(self) -> int:
        """Total DM conflicts detected (the Table II metric)."""
        return self.stats.dm_conflicts

    def is_drained(self) -> bool:
        """``True`` when no task and no dependence state remain in flight."""
        if self.gateway.has_pending_submission:
            return False
        if self.in_flight:
            return False
        return all(dct.is_idle() for dct in self.dct_instances)

    def describe(self) -> Dict[str, object]:
        """A summary dictionary used by reports and debugging helpers."""
        return {
            "design": self.config.dm_design.display_name,
            "num_trs": self.config.num_trs,
            "num_dct": self.config.num_dct,
            "tasks_submitted": self._submitted,
            "tasks_finished": self._finished,
            "in_flight": self.in_flight,
            "dm_conflicts": self.dm_conflicts,
            "stats": self.stats.as_dict(),
        }
