"""Task Memory (TM0 and TMX) of the Task Reservation Station.

Figure 3b: TM0 has 256 entries, one per in-flight task, storing the task
identification, the number of dependences and the number of ready
dependences.  TMX entries hold the per-dependence consumer-section
information notified by the DCT -- in this model, the VM index of the
version each dependence belongs to plus the consumer-chain link that makes
the backwards wake-up of Figure 5 possible.

The memories support the four actions described in the paper: read, write,
*New Entry Request* (allocate a free entry) and *Finished Entry Request*
(recycle an entry).

Flat layout
-----------

TM0 fields are parallel lists indexed by the TM entry; TMX fields are
parallel lists indexed by the local slot offset ``tm_index *
max_deps_per_task + dep_index`` (the TMX is a fixed-stride SRAM in the
prototype, so the offset arithmetic is exactly the hardware's address
computation).  Consumer-chain predecessors are packed integer slot handles
with ``-1`` for *none*; see ``docs/datapath.md``.  Recording a dependence
resets every TMX field of its slot, so an entry recycled through a
Finished Entry Request can never leak stale chain state into the next
task -- the property the reference model got for free by allocating fresh
slot objects (:mod:`repro.core.reference.task_memory`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.runtime.task import Direction


class TaskMemoryFullError(RuntimeError):
    """Raised on a New Entry Request when every TM entry is occupied."""


class TaskMemory:
    """The TM0/TMX memory pair of one TRS instance (flat SoA layout)."""

    def __init__(self, entries: int = 256, max_deps_per_task: int = 15) -> None:
        if entries < 1:
            raise ValueError("TM needs at least one entry")
        if max_deps_per_task < 1:
            raise ValueError("TMX must hold at least one dependence per task")
        self.entries = entries
        self.max_deps_per_task = max_deps_per_task
        # TM0: one entry per in-flight task.
        self._valid: List[bool] = [False] * entries
        self._task_id: List[int] = [-1] * entries
        self._num_deps: List[int] = [0] * entries
        self._ready_deps: List[int] = [0] * entries
        #: Number of TMX slots currently recorded for the entry (trails
        #: ``num_deps`` while a stalled dispatch waits to resume).
        self._dep_count: List[int] = [0] * entries
        # TMX: fixed stride of ``max_deps_per_task`` slots per entry.
        total = entries * max_deps_per_task
        self._slot_address: List[int] = [0] * total
        self._slot_vm_index: List[int] = [-1] * total
        self._slot_ready: List[bool] = [False] * total
        self._slot_predecessor: List[int] = [-1] * total
        self._slot_is_producer: List[bool] = [False] * total
        self._free: List[int] = list(range(entries - 1, -1, -1))
        self._by_task_id: Dict[int, int] = {}
        self._high_water = 0

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def occupied(self) -> int:
        """Number of in-flight tasks currently stored."""
        return self.entries - len(self._free)

    @property
    def full(self) -> bool:
        """``True`` when a New Entry Request would fail."""
        return not self._free

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy observed."""
        return self._high_water

    def has_task(self, task_id: int) -> bool:
        """Whether ``task_id`` is currently in flight in this TM."""
        return task_id in self._by_task_id

    # ------------------------------------------------------------------
    # New Entry Request / Finished Entry Request
    # ------------------------------------------------------------------
    def allocate(self, task_id: int, num_deps: int) -> int:
        """Allocate a TM entry for a new task (New Entry Request).

        Returns the TM index.  Raises
        :class:`TaskMemoryFullError` when no free entry exists (the GW must
        hold the new task) and :class:`ValueError` when the task declares
        more dependences than the TMX can hold.
        """
        if num_deps > self.max_deps_per_task:
            raise ValueError(
                f"task {task_id} has {num_deps} dependences; the TMX holds at "
                f"most {self.max_deps_per_task}"
            )
        if task_id in self._by_task_id:
            raise ValueError(f"task {task_id} is already in flight")
        if not self._free:
            raise TaskMemoryFullError("no free TM entry")
        tm_index = self._free.pop()
        self._valid[tm_index] = True
        self._task_id[tm_index] = task_id
        self._num_deps[tm_index] = num_deps
        self._ready_deps[tm_index] = 0
        self._dep_count[tm_index] = 0
        self._by_task_id[task_id] = tm_index
        occupied = self.entries - len(self._free)
        if occupied > self._high_water:
            self._high_water = occupied
        return tm_index

    def release(self, tm_index: int) -> None:
        """Recycle a TM entry after its task retired (Finished Entry Request)."""
        if not self._valid[tm_index]:
            raise KeyError(f"TM entry {tm_index} is not occupied")
        del self._by_task_id[self._task_id[tm_index]]
        self._valid[tm_index] = False
        self._free.append(tm_index)

    # ------------------------------------------------------------------
    # reads / writes
    # ------------------------------------------------------------------
    def check_occupied(self, tm_index: int) -> None:
        """Raise the canonical diagnostic when ``tm_index`` is free."""
        if not self._valid[tm_index]:
            raise KeyError(f"TM entry {tm_index} is not occupied")

    def tm_index_for_task(self, task_id: int) -> int:
        """TM entry currently holding ``task_id``."""
        if task_id not in self._by_task_id:
            raise KeyError(f"task {task_id} is not in flight")
        return self._by_task_id[task_id]

    def add_dependence_slots(
        self, tm_index: int, dependences: Sequence, start: int, end: int
    ) -> None:
        """Record ``dependences[start:end]`` of the task at ``tm_index``.

        One entry read serves every slot of the run.  Each dependence needs
        ``.address`` and ``.direction`` attributes; slot ``k`` is recorded
        for dependence index ``start + k``, preserving pragma order.  Every
        TMX field of each slot is reset (see the module docstring).
        """
        self.check_occupied(tm_index)
        if end > self.max_deps_per_task:
            raise ValueError("dependence index exceeds TMX capacity")
        base = tm_index * self.max_deps_per_task
        s_address = self._slot_address
        s_vm_index = self._slot_vm_index
        s_ready = self._slot_ready
        s_predecessor = self._slot_predecessor
        s_is_producer = self._slot_is_producer
        # Identity checks against hoisted members instead of the
        # Direction.writes property: one descriptor call per dependence of
        # every task adds up.
        writer = Direction.OUT
        readwriter = Direction.INOUT
        for dep_index in range(start, end):
            dep = dependences[dep_index]
            direction = dep.direction
            offset = base + dep_index
            s_address[offset] = dep.address
            s_vm_index[offset] = -1
            s_ready[offset] = False
            s_predecessor[offset] = -1
            s_is_producer[offset] = direction is writer or direction is readwriter
        self._dep_count[tm_index] = end

    def drop_dependence_slots(self, tm_index: int, count: int) -> None:
        """Remove the ``count`` most recently recorded TMX slots.

        Used by the Gateway when a dispatch run stalls partway: the slots
        recorded past the last stored dependence are dropped so the retry
        records them again cleanly.
        """
        self.check_occupied(tm_index)
        self._dep_count[tm_index] -= count

    def in_flight_task_ids(self) -> List[int]:
        """Identifiers of every task currently stored, in TM-index order."""
        valid = self._valid
        task_id = self._task_id
        return [task_id[i] for i in range(self.entries) if valid[i]]
