"""Dependence Memory (DM): the three cache-like designs of Section III-C.

For each new dependence entering the DCT, the DM performs an address match
against the dependences that arrived earlier.  Each way of a set stores a
``valid`` bit, an ``input`` bit (all accesses so far are reads), the address
``tag`` and a pointer to the Version Memory (the ``data`` of Figure 4) plus
a live-access counter.

Three designs are modelled, matching the paper:

=============  =====  =============================  ==========
design         ways   set index                      VM entries
=============  =====  =============================  ==========
``DM 8way``    8      LSB 6 bits of the address      512
``DM 16way``   16     LSB 6 bits of the address      1024
``DM P+8way``  8      Pearson hash of the address    512
=============  =====  =============================  ==========

When a new address maps to a set whose ways are all valid with different
tags, the dependence cannot be stored: this is a *DM conflict* (Table II)
and the whole new-task pipeline stalls until one of the ways is recycled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import DMDesign
from repro.core.hashing import index_for


class DependenceMemoryConflict(RuntimeError):
    """Raised when a new address cannot be stored because its set is full."""

    def __init__(self, address: int, set_index: int) -> None:
        super().__init__(
            f"DM conflict: address {address:#x} maps to full set {set_index}"
        )
        self.address = address
        self.set_index = set_index


@dataclass
class DMWay:
    """One way of one DM set."""

    valid: bool = False
    input_only: bool = True
    tag: int = 0
    #: VM index of the most recent live version of this address.
    latest_vm_index: Optional[int] = None
    #: Number of live versions of this address (the entry is recycled when
    #: this drops to zero).
    live_versions: int = 0
    #: Total accesses (producer or consumer) recorded since allocation;
    #: mirrors the "count" field of Figure 4.
    access_count: int = 0


@dataclass
class DMLookupResult:
    """Outcome of a DM compare operation."""

    hit: bool
    set_index: int
    way_index: Optional[int]
    way: Optional[DMWay]


class DependenceMemory:
    """A 64-set, N-way, cache-like dependence memory."""

    def __init__(self, design: DMDesign, num_sets: int = 64) -> None:
        if num_sets < 1:
            raise ValueError("DM needs at least one set")
        self.design = design
        self.num_sets = num_sets
        self.ways_per_set = design.ways
        self._sets: List[List[DMWay]] = [
            [DMWay() for _ in range(self.ways_per_set)] for _ in range(num_sets)
        ]
        self.conflicts = 0
        self.allocations = 0
        self._occupied = 0
        self._high_water = 0

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def set_index(self, address: int) -> int:
        """Set index for ``address`` under the configured design."""
        return index_for(address, self.design.uses_pearson, self.num_sets)

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total number of addresses the DM can hold."""
        return self.num_sets * self.ways_per_set

    @property
    def occupied(self) -> int:
        """Number of valid ways (distinct live addresses)."""
        return self._occupied

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy observed."""
        return self._high_water

    def set_is_full(self, set_index: int) -> bool:
        """Whether every way of ``set_index`` is valid."""
        return all(way.valid for way in self._sets[set_index])

    # ------------------------------------------------------------------
    # compare / allocate / release
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> DMLookupResult:
        """DM compare: search the set of ``address`` for a matching tag.

        Way 0 has the highest priority, way N-1 the lowest, as in the
        priority encoder of Figure 4.
        """
        set_index = self.set_index(address)
        for way_index, way in enumerate(self._sets[set_index]):
            if way.valid and way.tag == address:
                return DMLookupResult(True, set_index, way_index, way)
        return DMLookupResult(False, set_index, None, None)

    def allocate(self, address: int, input_only: bool) -> Tuple[int, DMWay]:
        """Store a new address in its set (the *New DM address* of Figure 4).

        Returns the ``(way_index, way)`` pair used.  Raises
        :class:`DependenceMemoryConflict` -- and counts one conflict -- when
        the set has no free way.
        """
        set_index = self.set_index(address)
        ways = self._sets[set_index]
        for way_index, way in enumerate(ways):
            if not way.valid:
                way.valid = True
                way.tag = address
                way.input_only = input_only
                way.latest_vm_index = None
                way.live_versions = 0
                way.access_count = 0
                self.allocations += 1
                self._occupied += 1
                self._high_water = max(self._high_water, self._occupied)
                return way_index, way
        self.conflicts += 1
        raise DependenceMemoryConflict(address, set_index)

    def release(self, address: int) -> None:
        """Invalidate the way holding ``address`` (all versions finished)."""
        result = self.lookup(address)
        if not result.hit or result.way is None:
            raise KeyError(f"address {address:#x} is not stored in the DM")
        result.way.valid = False
        result.way.latest_vm_index = None
        result.way.live_versions = 0
        self._occupied -= 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def live_addresses(self) -> List[int]:
        """Every address currently stored (order: set, then way priority)."""
        addresses: List[int] = []
        for ways in self._sets:
            for way in ways:
                if way.valid:
                    addresses.append(way.tag)
        return addresses

    def set_occupancy_histogram(self) -> Dict[int, int]:
        """Mapping of set index to the number of valid ways it holds.

        This is the quantity that distinguishes the direct-hash designs from
        the Pearson design for block-aligned address streams: with the direct
        hash nearly every address lands in a handful of sets.
        """
        histogram: Dict[int, int] = {}
        for set_index, ways in enumerate(self._sets):
            valid = sum(1 for way in ways if way.valid)
            if valid:
                histogram[set_index] = valid
        return histogram
