"""Dependence Memory (DM): the three cache-like designs of Section III-C.

For each new dependence entering the DCT, the DM performs an address match
against the dependences that arrived earlier.  Each way of a set stores a
``valid`` bit, an ``input`` bit (all accesses so far are reads), the address
``tag`` and a pointer to the Version Memory (the ``data`` of Figure 4) plus
a live-access counter.

Three designs are modelled, matching the paper:

=============  =====  =============================  ==========
design         ways   set index                      VM entries
=============  =====  =============================  ==========
``DM 8way``    8      LSB 6 bits of the address      512
``DM 16way``   16     LSB 6 bits of the address      1024
``DM P+8way``  8      Pearson hash of the address    512
=============  =====  =============================  ==========

When a new address maps to a set whose ways are all valid with different
tags, the dependence cannot be stored: this is a *DM conflict* (Table II)
and the whole new-task pipeline stalls until one of the ways is recycled.

Flat layout
-----------

The way state lives in parallel flat lists indexed by the integer *way
handle* ``set_index * ways_per_set + way_index`` -- exactly how the
hardware addresses its SRAM banks, and how every structure of the hot
datapath is laid out (see ``docs/datapath.md``).  ``lookup`` returns a
handle (or ``-1`` on a miss) instead of allocating a result object, and
the tag scan runs through ``list.index`` at C speed.  Released ways reset
their tag to ``-1`` so a stale tag can never alias a live address; the
invariant ``valid[h] <=> tag[h] != -1`` is what makes the tag scan
equivalent to the valid-qualified compare of the reference model
(:mod:`repro.core.reference.dependence_memory`), which the differential
suite pins.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import DMDesign
from repro.core.hashing import make_index_function


class DependenceMemoryConflict(RuntimeError):
    """Raised when a new address cannot be stored because its set is full."""

    def __init__(self, address: int, set_index: int) -> None:
        super().__init__(
            f"DM conflict: address {address:#x} maps to full set {set_index}"
        )
        self.address = address
        self.set_index = set_index


class DependenceMemory:
    """A 64-set, N-way, cache-like dependence memory (flat SoA layout)."""

    def __init__(self, design: DMDesign, num_sets: int = 64) -> None:
        if num_sets < 1:
            raise ValueError("DM needs at least one set")
        self.design = design
        self.num_sets = num_sets
        self.ways_per_set = design.ways
        total = num_sets * self.ways_per_set
        #: One entry per way handle ``set * ways_per_set + way``.
        self._valid: List[bool] = [False] * total
        self._input_only: List[bool] = [True] * total
        self._tag: List[int] = [-1] * total
        self._latest_vm_index: List[int] = [-1] * total
        self._live_versions: List[int] = [0] * total
        self._access_count: List[int] = [0] * total
        self.conflicts = 0
        self.allocations = 0
        self._occupied = 0
        self._high_water = 0
        # Memoized per-address index (the Pearson fold is the single
        # hottest pure function of a full-system simulation otherwise).
        self._index_of = make_index_function(design.uses_pearson, num_sets)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def set_index(self, address: int) -> int:
        """Set index for ``address`` under the configured design."""
        return self._index_of(address)

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total number of addresses the DM can hold."""
        return self.num_sets * self.ways_per_set

    @property
    def occupied(self) -> int:
        """Number of valid ways (distinct live addresses)."""
        return self._occupied

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy observed."""
        return self._high_water

    def set_is_full(self, set_index: int) -> bool:
        """Whether every way of ``set_index`` is valid."""
        base = set_index * self.ways_per_set
        return False not in self._valid[base : base + self.ways_per_set]

    # ------------------------------------------------------------------
    # compare / allocate / release
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> int:
        """DM compare: the way handle holding ``address``, or ``-1``.

        Way 0 has the highest priority, way N-1 the lowest, as in the
        priority encoder of Figure 4 (``list.index`` returns the first
        match).  No result object is allocated on the compare path.
        """
        base = self._index_of(address) * self.ways_per_set
        try:
            return self._tag.index(address, base, base + self.ways_per_set)
        except ValueError:
            return -1

    def allocate(self, address: int, input_only: bool) -> int:
        """Store a new address in its set (the *New DM address* of Figure 4).

        Returns the way handle used.  Raises
        :class:`DependenceMemoryConflict` -- and counts one conflict -- when
        the set has no free way.
        """
        set_index = self._index_of(address)
        base = set_index * self.ways_per_set
        try:
            handle = self._valid.index(False, base, base + self.ways_per_set)
        except ValueError:
            self.conflicts += 1
            raise DependenceMemoryConflict(address, set_index) from None
        self._valid[handle] = True
        self._tag[handle] = address
        self._input_only[handle] = input_only
        self._latest_vm_index[handle] = -1
        self._live_versions[handle] = 0
        self._access_count[handle] = 0
        self.allocations += 1
        self._occupied += 1
        if self._occupied > self._high_water:
            self._high_water = self._occupied
        return handle

    def release(self, address: int) -> None:
        """Invalidate the way holding ``address`` (all versions finished)."""
        handle = self.lookup(address)
        if handle < 0:
            raise KeyError(f"address {address:#x} is not stored in the DM")
        self.release_handle(handle)

    def release_handle(self, handle: int) -> None:
        """Invalidate the way at ``handle`` directly (already matched).

        Resetting the tag to ``-1`` keeps the flat compare safe: the tag
        scan can only ever match a live address.
        """
        self._valid[handle] = False
        self._tag[handle] = -1
        self._latest_vm_index[handle] = -1
        self._live_versions[handle] = 0
        self._occupied -= 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def live_addresses(self) -> List[int]:
        """Every address currently stored (order: set, then way priority)."""
        valid = self._valid
        tag = self._tag
        return [tag[h] for h in range(len(valid)) if valid[h]]

    def set_occupancy_histogram(self) -> Dict[int, int]:
        """Mapping of set index to the number of valid ways it holds.

        This is the quantity that distinguishes the direct-hash designs from
        the Pearson design for block-aligned address streams: with the direct
        hash nearly every address lands in a handful of sets.
        """
        histogram: Dict[int, int] = {}
        ways = self.ways_per_set
        valid = self._valid
        for set_index in range(self.num_sets):
            base = set_index * ways
            count = sum(valid[base : base + ways])
            if count:
                histogram[set_index] = count
        return histogram
