"""Dependence Chain Tracker (DCT).

The DCT is the major dependence-management unit of Picos (Section III-A).
It owns one Dependence Memory (DM) and one Version Memory (VM) and
implements the two halves of the operational flow of Section III-B:

new-dependence processing (N5)
    For each dependence of a new task the DCT performs a DM compare.  A miss
    allocates a DM way and a VM version and answers *ready*; a hit attaches
    the dependence to the live version chain of the address and answers
    *ready* or *dependent* depending on whether earlier accesses are still
    pending.

finish processing (F4)
    For each dependence of a finished task the DCT updates the version the
    dependence belonged to, wakes the consumer chain (from the *last*
    consumer) or the next producer version when appropriate, and recycles VM
    and DM entries once a version chain is completely finished.

Structural hazards -- a full DM set (conflict) or a full VM -- are reported
through :class:`DctStall` so the Gateway can hold the new task, exactly like
the prototype stalls its pipeline.
"""

from __future__ import annotations


from typing import List, Optional, Sequence, Tuple

from repro.core.config import PicosConfig
from repro.core.dct import DctStall, StallReason
from repro.core.reference.dependence_memory import DependenceMemory
from repro.core.packets import (
    DependencePacket,
    DependentPacket,
    FinishPacket,
    ReadyPacket,
    TaskSlotRef,
)
from repro.core.stats import PicosStats
from repro.core.reference.version_memory import VersionEntry, VersionMemory
from repro.runtime.task import Direction


__all__ = [
    "StallReason",
    "DctStall",
    "DependenceOutcome",
    "FinishOutcome",
    "DependenceChainTracker",
]


class DependenceOutcome:
    """Result of processing one new dependence.

    A ``__slots__`` value class: one is allocated per dependence of every
    submitted task.
    """

    __slots__ = ("ready", "vm_index", "predecessor")

    def __init__(
        self,
        ready: bool,
        vm_index: int,
        predecessor: Optional[TaskSlotRef] = None,
    ) -> None:
        #: ``True`` when the dependence is immediately ready.
        self.ready = ready
        #: VM entry (version) the dependence was attached to.
        self.vm_index = vm_index
        #: Consumer-chain predecessor to store in the TMX (waiting consumers
        #: only).
        self.predecessor = predecessor

    def __repr__(self) -> str:
        return (
            f"DependenceOutcome(ready={self.ready}, vm_index={self.vm_index}, "
            f"predecessor={self.predecessor!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependenceOutcome):
            return NotImplemented
        return (
            self.ready == other.ready
            and self.vm_index == other.vm_index
            and self.predecessor == other.predecessor
        )

    def to_packet(self, slot: TaskSlotRef):
        """Render the outcome as the packet the DCT sends to the TRS."""
        if self.ready:
            return ReadyPacket(slot=slot, vm_index=self.vm_index)
        return DependentPacket(
            slot=slot, vm_index=self.vm_index, predecessor=self.predecessor
        )


class FinishOutcome:
    """Result of processing one dependence-release (finish) packet."""

    __slots__ = ("wakeups", "version_released", "address_released")

    def __init__(self) -> None:
        #: Wake-ups produced by this release: consumer chains are woken
        #: through their last consumer; completed versions wake the next
        #: producer.
        self.wakeups: List[ReadyPacket] = []
        #: Whether a VM entry was recycled.
        self.version_released = False
        #: Whether the DM way of the address was recycled (chain fully
        #: finished).
        self.address_released = False

    def __repr__(self) -> str:
        return (
            f"FinishOutcome(wakeups={self.wakeups!r}, "
            f"version_released={self.version_released}, "
            f"address_released={self.address_released})"
        )


class DependenceChainTracker:
    """One DCT instance: DM + VM plus the chain-tracking control logic."""

    def __init__(
        self,
        dct_id: int,
        config: PicosConfig,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self.dct_id = dct_id
        self.config = config
        self.stats = stats if stats is not None else PicosStats()
        self.dm = DependenceMemory(config.dm_design, config.dm_sets)
        self.vm = VersionMemory(config.effective_vm_entries)
        #: Addresses whose insertion is currently blocked on a conflict;
        #: used to avoid double-counting conflicts across retries.
        self._blocked_addresses: set[int] = set()

    # ------------------------------------------------------------------
    # new-dependence path (N5)
    # ------------------------------------------------------------------
    def can_accept(self, address: int, direction: Direction) -> bool:
        """Check whether a dependence on ``address`` could be stored now.

        Used by the Gateway to decide whether to resume a stalled
        submission without paying for a failed attempt.
        """
        way = self.dm.find_way(address)
        if way is not None:
            if direction.writes:
                return not self.vm.full
            return True
        if self.dm.set_is_full(self.dm.set_index(address)):
            return False
        return not self.vm.full

    def process_dependence(self, packet: DependencePacket) -> DependenceOutcome:
        """Handle one new dependence; may raise :class:`DctStall`.

        A batch of one: the packet itself carries ``address``/``direction``
        like a :class:`~repro.runtime.task.Dependence`, so it can ride
        through :meth:`process_batch` directly.  Kept as the single-packet
        surface for exploratory drivers and the unit tests; the Gateway
        dispatches whole tasks through :meth:`process_batch`.
        """
        outcomes, stall_reason = self.process_batch((packet.slot,), (packet,), 0, 1)
        if stall_reason is not None:
            raise DctStall(stall_reason, packet.address)
        ready, vm_index, predecessor = outcomes[0]
        return DependenceOutcome(
            ready=ready, vm_index=vm_index, predecessor=predecessor
        )

    def process_batch(
        self,
        slots: Sequence[TaskSlotRef],
        dependences: Sequence,
        start: int,
        end: int,
    ) -> Tuple[List[Tuple[bool, int, Optional[TaskSlotRef]]], Optional[StallReason]]:
        """Handle all of ``dependences[start:end]`` in one pass (N5, batched).

        ``slots[k - start]`` is the TMX slot reference of
        ``dependences[k]``; each dependence only needs ``.address`` and
        ``.direction`` attributes (:class:`~repro.runtime.task.Dependence`
        and :class:`~repro.core.packets.DependencePacket` both qualify).

        This is the Gateway's hot path: one call per task (per DCT bank)
        instead of one packet round-trip per dependence.  The set index of
        every address resolves through the memoized DM hash, the DM/VM
        mutations happen through locals hoisted out of the loop, and the
        stats and watermark updates are folded to one write per batch --
        all observably identical to running :meth:`process_dependence`
        dependence by dependence, which the parity suite pins.

        Returns ``(outcomes, stall_reason)``: one ``(ready, vm_index,
        predecessor)`` triple per dependence processed, in order.  On a
        structural hazard the batch stops -- ``outcomes`` covers the
        dependences stored before the blocked one and ``stall_reason`` says
        why (the stalled dependence itself is *not* stored, exactly like
        the raising single-packet path); the Gateway resumes from
        ``start + len(outcomes)`` once resources free up.
        """
        # The DM compare and the DM/VM allocations are inlined over locals:
        # this loop runs once per dependence of every submitted task and a
        # method call per memory access costs as much as the access.  The
        # single-packet surfaces (DependenceMemory.lookup/allocate,
        # VersionMemory.allocate) define the semantics; the parity suite
        # pins this loop to them cycle-for-cycle.
        dm = self.dm
        vm = self.vm
        stats = self.stats
        blocked = self._blocked_addresses
        index_of = dm._index_of
        dm_sets = dm._sets
        vm_free = vm._free
        vm_slots = vm._slots
        vm_entries = vm.entries
        writer = Direction.OUT
        readwriter = Direction.INOUT
        outcomes: List[Tuple[bool, int, Optional[TaskSlotRef]]] = []
        append = outcomes.append
        stall_reason: Optional[StallReason] = None
        ready_count = 0
        for index in range(start, end):
            dep = dependences[index]
            address = dep.address
            direction = dep.direction
            writes = direction is writer or direction is readwriter
            slot = slots[index - start]
            # DM compare: way 0 has the highest priority (Figure 4); the
            # first free way doubles as the allocation target on a miss.
            way = None
            free_way = None
            for candidate in dm_sets[index_of(address)]:
                if candidate.valid:
                    if candidate.tag == address:
                        way = candidate
                        break
                elif free_way is None:
                    free_way = candidate
            if way is None:
                # First live access: allocate DM way + first version.
                if free_way is None:
                    self._record_conflict(address)
                    stall_reason = StallReason.DM_CONFLICT
                    break
                if not vm_free:
                    stats.vm_full_stalls += 1
                    stall_reason = StallReason.VM_FULL
                    break
                free_way.valid = True
                free_way.tag = address
                free_way.input_only = not writes
                dm.allocations += 1
                dm._occupied += 1
                if dm._occupied > dm._high_water:
                    dm._high_water = dm._occupied
                vm_index = vm_free.pop()
                version = VersionEntry(vm_index=vm_index, address=address)
                vm_slots[vm_index] = version
                vm._total_allocations += 1
                occupied = vm_entries - len(vm_free)
                if occupied > vm._high_water:
                    vm._high_water = occupied
                stats.dm_allocations += 1
                stats.vm_allocations += 1
                free_way.latest_vm_index = vm_index
                free_way.live_versions = 1
                free_way.access_count = 1
                if writes:
                    version.producer = slot
                else:
                    version.consumers_arrived = 1
                # The very first access to an address never waits.
                ready_count += 1
                append((True, vm_index, None))
            elif writes:
                # A writer opens a new version chained after the latest
                # live one; it always waits (WAW/WAR ordering).
                if not vm_free:
                    stats.vm_full_stalls += 1
                    stall_reason = StallReason.VM_FULL
                    break
                previous = vm_slots[way.latest_vm_index]
                vm_index = vm_free.pop()
                version = VersionEntry(vm_index=vm_index, address=address)
                vm_slots[vm_index] = version
                vm._total_allocations += 1
                occupied = vm_entries - len(vm_free)
                if occupied > vm._high_water:
                    vm._high_water = occupied
                stats.vm_allocations += 1
                version.producer = slot
                previous.next_version = vm_index
                way.latest_vm_index = vm_index
                way.live_versions += 1
                way.input_only = False
                way.access_count += 1
                append((False, vm_index, None))
            else:
                # A reader joins the latest live version of the address.
                version = vm_slots[way.latest_vm_index]
                way.access_count += 1
                version.consumers_arrived += 1
                if version.producer is None or version.producer_finished:
                    ready_count += 1
                    append((True, version.vm_index, None))
                else:
                    predecessor = version.last_consumer
                    version.last_consumer = slot
                    append((False, version.vm_index, predecessor))
            blocked.discard(address)
        stored = len(outcomes)
        stats.dependences_processed += stored
        stats.ready_packets += ready_count
        stats.dependent_packets += stored - ready_count
        # Occupancy only grows during insertion, so one watermark check per
        # batch observes the same high water as one per dependence.
        self._update_memory_watermarks()
        return outcomes, stall_reason

    def _record_conflict(self, address: int) -> None:
        """Count a DM conflict the first time an address becomes blocked."""
        self.dm.conflicts += 1
        if address not in self._blocked_addresses:
            self.stats.dm_conflicts += 1
            self._blocked_addresses.add(address)
        self.stats.dm_conflict_stall_cycles += self.config.dm_conflict_stall_cycles

    # ------------------------------------------------------------------
    # finish path (F4)
    # ------------------------------------------------------------------
    def process_finish(self, packet: FinishPacket) -> FinishOutcome:
        """Handle the release of one dependence of a finished task."""
        outcome = FinishOutcome()
        version = self.vm.entry(packet.vm_index)
        self.stats.finish_packets += 1

        is_producer_finish = (
            version.producer is not None
            and not version.producer_finished
            and version.producer == packet.slot
        )
        if is_producer_finish:
            version.producer_finished = True
            if version.last_consumer is not None:
                # Wake the consumer chain starting from the last consumer
                # (link 1 of Figure 5); the TRS walks the chain backwards.
                outcome.wakeups.append(
                    ReadyPacket(slot=version.last_consumer, vm_index=version.vm_index)
                )
                self.stats.wakeup_packets += 1
        else:
            version.consumers_finished += 1

        if version.complete:
            outcome.version_released = True
            outcome.address_released = self._retire_version(
                version, outcome.wakeups
            )
        return outcome

    def process_finish_batch(
        self, packets: Sequence[FinishPacket], start: int, end: int
    ) -> List[ReadyPacket]:
        """Handle ``packets[start:end]`` in one pass (F4, batched).

        The finish-side counterpart of :meth:`process_batch`: one call per
        finishing task (per DCT bank) instead of one packet round-trip per
        released dependence.  Returns the wake-ups of the whole run in
        release order -- exactly the concatenation of the per-packet
        ``FinishOutcome.wakeups`` lists, which the parity suite pins.
        """
        vm_slots = self.vm._slots
        stats = self.stats
        wakeups: List[ReadyPacket] = []
        append = wakeups.append
        finished = 0
        woken = 0
        for index in range(start, end):
            packet = packets[index]
            version = vm_slots[packet.vm_index]
            if version is None:
                # Same diagnostic the single-packet path gets from
                # vm.entry(): a stale/duplicate release must name the
                # violated invariant, not die on an attribute of None.
                raise KeyError(f"VM entry {packet.vm_index} is not occupied")
            finished += 1
            producer = version.producer
            if (
                producer is not None
                and not version.producer_finished
                and producer == packet.slot
            ):
                version.producer_finished = True
                last_consumer = version.last_consumer
                if last_consumer is not None:
                    append(
                        ReadyPacket(slot=last_consumer, vm_index=version.vm_index)
                    )
                    woken += 1
            else:
                version.consumers_finished += 1
            if (
                producer is None or version.producer_finished
            ) and version.consumers_arrived == version.consumers_finished:
                self._retire_version(version, wakeups)
        stats.finish_packets += finished
        stats.wakeup_packets += woken
        return wakeups

    def _retire_version(self, version, wakeups: List[ReadyPacket]) -> bool:
        """Recycle a completed version, waking the next producer if any.

        Appends the producer wake-up (when the address has a next version)
        to ``wakeups`` and returns whether the DM way was recycled too.
        """
        way = self.dm.find_way(version.address)
        if way is None:
            raise RuntimeError(
                f"version {version.vm_index} refers to address "
                f"{version.address:#x} which is not in the DM"
            )
        if version.next_version is not None:
            next_version = self.vm.entry(version.next_version)
            if next_version.producer is None:
                raise RuntimeError("chained version without a producer")
            wakeups.append(
                ReadyPacket(
                    slot=next_version.producer, vm_index=next_version.vm_index
                )
            )
            self.stats.wakeup_packets += 1
        self.vm.release(version.vm_index)
        way.live_versions -= 1
        if way.live_versions <= 0:
            self.dm.release_way(way)
            return True
        return False

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _update_memory_watermarks(self) -> None:
        # Branches instead of max(): this runs once per processed dependence
        # and the watermark moves only a handful of times per run.
        stats = self.stats
        dm_occupied = self.dm.occupied
        if dm_occupied > stats.dm_high_water:
            stats.dm_high_water = dm_occupied
        vm_occupied = self.vm.occupied
        if vm_occupied > stats.vm_high_water:
            stats.vm_high_water = vm_occupied

    @property
    def live_addresses(self) -> int:
        """Number of addresses currently tracked by the DM."""
        return self.dm.occupied

    @property
    def live_versions(self) -> int:
        """Number of versions currently stored in the VM."""
        return self.vm.occupied

    def is_idle(self) -> bool:
        """``True`` when no dependence state is live (all chains retired)."""
        return self.dm.occupied == 0 and self.vm.occupied == 0
