"""Object-based reference implementation of the Picos hot datapath.

This package preserves the pre-flat per-object model of the DM, VM, TM,
TRS and DCT -- one ``__slots__`` record per way, version and task slot,
:class:`~repro.core.packets.TaskSlotRef` objects instead of packed integer
handles.  It is kept as the *differential oracle* of the flat datapath in
:mod:`repro.core` (the same pattern as
:class:`~repro.sim.engine.HeapEventQueue` for the calendar queue): the
semantics of every structure are defined here in their most explicit form,
and the fuzz/parity suites pin the flat implementation to this one
cycle-for-cycle.

Select it at run time with ``PicosConfig(reference_datapath=True)`` or the
``REPRO_REFERENCE_DATAPATH`` environment variable; the
:mod:`~repro.core.reference.adapter` module wraps these classes behind the
integer-handle surface the Gateway and accelerator facade speak.
"""

from repro.core.reference.adapter import (
    ReferenceDependenceChainTracker,
    ReferenceTaskReservationStation,
)
from repro.core.reference.dct import DependenceChainTracker
from repro.core.reference.dependence_memory import DependenceMemory
from repro.core.reference.task_memory import TaskMemory
from repro.core.reference.trs import TaskReservationStation
from repro.core.reference.version_memory import VersionMemory

__all__ = [
    "DependenceChainTracker",
    "DependenceMemory",
    "ReferenceDependenceChainTracker",
    "ReferenceTaskReservationStation",
    "TaskMemory",
    "TaskReservationStation",
    "VersionMemory",
]
