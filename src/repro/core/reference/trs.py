"""Task Reservation Station (TRS).

The TRS is the major task-management unit of Picos (Section III-A): it
stores in-flight tasks in its Task Memory, tracks the readiness of new tasks
by counting the ready notifications arriving from the DCT, walks consumer
chains backwards when a wake-up arrives (links 2-3 of Figure 5), and manages
the deletion of finished tasks, emitting one finish packet per dependence
towards the DCT.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import PicosConfig
from repro.core.packets import (
    DependentPacket,
    ExecuteTaskPacket,
    FinishPacket,
    FinishedTaskPacket,
    NewTaskPacket,
    ReadyPacket,
    TaskSlotRef,
)
from repro.core.stats import PicosStats
from repro.core.reference.task_memory import TaskEntry, TaskMemory


class ReadyResult:
    """Outcome of delivering one ready notification to the TRS.

    A ``__slots__`` class: one is allocated per ready notification, i.e.
    per dependence of every task.
    """

    __slots__ = ("execute", "chained")

    def __init__(self) -> None:
        #: Tasks that became fully ready because of this notification.
        self.execute: List[ExecuteTaskPacket] = []
        #: Chained ready notifications the TRS emits towards earlier
        #: consumers of the same version (routed through the Arbiter).
        self.chained: List[ReadyPacket] = []

    def __repr__(self) -> str:
        return f"ReadyResult(execute={self.execute!r}, chained={self.chained!r})"


class TaskReservationStation:
    """One TRS instance: TM0/TMX storage plus the readiness control logic."""

    def __init__(
        self,
        trs_id: int,
        config: PicosConfig,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self.trs_id = trs_id
        self.config = config
        self.stats = stats if stats is not None else PicosStats()
        self.task_memory = TaskMemory(
            entries=config.tm_entries, max_deps_per_task=config.max_deps_per_task
        )

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    @property
    def has_free_slot(self) -> bool:
        """Whether a New Entry Request would succeed."""
        return not self.task_memory.full

    @property
    def in_flight(self) -> int:
        """Number of tasks currently stored in this TRS."""
        return self.task_memory.occupied

    # ------------------------------------------------------------------
    # new-task path (N3, N5, N6)
    # ------------------------------------------------------------------
    def accept_new_task(self, packet: NewTaskPacket) -> Tuple[TaskEntry, Optional[ExecuteTaskPacket]]:
        """Store a new task in the assigned TM entry.

        Returns the created entry and, when the task has no dependences, the
        execute packet sent straight to the Task Scheduler (N6).
        """
        entry = self.task_memory.allocate(packet.task_id, packet.num_deps)
        self.stats.tasks_accepted += 1
        self.stats.tm_high_water = max(
            self.stats.tm_high_water, self.task_memory.occupied
        )
        if packet.num_deps == 0:
            self.stats.tasks_without_deps += 1
            return entry, ExecuteTaskPacket(
                task_id=packet.task_id, trs_id=self.trs_id, tm_index=entry.tm_index
            )
        return entry, None

    def record_dependence(
        self, tm_index: int, dep_index: int, address: int, is_producer: bool
    ) -> TaskSlotRef:
        """Reserve the TMX slot for one dependence of an in-flight task."""
        self.task_memory.add_dependence_slot(tm_index, dep_index, address, is_producer)
        return TaskSlotRef(trs_id=self.trs_id, tm_index=tm_index, dep_index=dep_index)

    def record_dependences(
        self, tm_index: int, dependences: Sequence, start: int, end: int
    ) -> List[TaskSlotRef]:
        """Reserve TMX slots for a run of dependences of an in-flight task.

        The batched form of :meth:`record_dependence`: one TM entry read
        records ``dependences[start:end]`` (each needs ``.address`` and
        ``.direction``) and returns their slot references in order, ready
        to travel to the DCT as one batch.
        """
        entry = self.task_memory.add_dependence_slots(
            tm_index, dependences, start, end
        )
        trs_id = self.trs_id
        dep_slots = entry.dep_slots
        refs: List[TaskSlotRef] = []
        append = refs.append
        for dep_index in range(start, end):
            ref = TaskSlotRef(trs_id=trs_id, tm_index=tm_index, dep_index=dep_index)
            # Stored on the TMX slot so the finish path can reuse the same
            # reference instead of minting a new one per dependence.
            dep_slots[dep_index].slot_ref = ref
            append(ref)
        return refs

    def drop_dependence_slots(self, tm_index: int, count: int) -> None:
        """Drop the last ``count`` recorded TMX slots (stalled dispatch)."""
        if count:
            self.task_memory.drop_dependence_slots(tm_index, count)

    def apply_submission_outcomes(
        self,
        tm_index: int,
        start: int,
        outcomes: Sequence[Tuple[bool, int, Optional[TaskSlotRef]]],
    ) -> Optional[ExecuteTaskPacket]:
        """Store a run of DCT outcomes for dependences ``start``.. of a task.

        The batched equivalent of one :meth:`handle_ready` /
        :meth:`handle_dependent` call per dependence during submission: a
        *ready* outcome marks its slot ready (a freshly inserted dependence
        has no predecessor, so no chained wake-up can occur), a *dependent*
        outcome stores the version and consumer-chain link.  Returns the
        execute packet when the task became fully ready (only the last
        dependence of the task can complete readiness), else ``None``.
        """
        entry = self.task_memory.entry(tm_index)
        dep_slots = entry.dep_slots
        ready_added = 0
        index = start
        for ready, vm_index, predecessor in outcomes:
            slot = dep_slots[index]
            index += 1
            slot.vm_index = vm_index
            if ready:
                slot.ready = True
                ready_added += 1
            else:
                slot.predecessor = predecessor
        entry.ready_deps += ready_added
        if entry.all_ready:
            return ExecuteTaskPacket(
                task_id=entry.task_id, trs_id=self.trs_id, tm_index=entry.tm_index
            )
        return None

    def handle_dependent(self, packet: DependentPacket) -> None:
        """Store a *dependent* notification (the dependence must wait)."""
        slot = self.task_memory.dependence_slot(
            packet.slot.tm_index, packet.slot.dep_index
        )
        slot.vm_index = packet.vm_index
        slot.predecessor = packet.predecessor

    def handle_ready(self, packet: ReadyPacket) -> ReadyResult:
        """Mark one dependence slot ready and propagate chained wake-ups."""
        result = ReadyResult()
        # One TM read serves both the entry and the slot scan (the TMX of a
        # task holds at most a handful of dependences).
        entry = self.task_memory.entry(packet.slot.tm_index)
        dep_index = packet.slot.dep_index
        slot = None
        for candidate in entry.dep_slots:
            if candidate.dep_index == dep_index:
                slot = candidate
                break
        if slot is None:
            raise KeyError(
                f"task at TM entry {packet.slot.tm_index} has no dependence "
                f"slot {dep_index}"
            )
        if slot.ready:
            # Idempotence guard: the hardware never sends two ready
            # notifications for the same slot, but being robust here keeps
            # the model safe under exploratory drivers.
            return result
        slot.ready = True
        if slot.vm_index is None:
            slot.vm_index = packet.vm_index
        entry.ready_deps += 1
        if slot.predecessor is not None:
            # Walk the consumer chain backwards: the earlier consumer of the
            # same version is woken next (links 2-3 of Figure 5).
            result.chained.append(
                ReadyPacket(slot=slot.predecessor, vm_index=packet.vm_index)
            )
            self.stats.chain_hops += 1
        if entry.all_ready:
            result.execute.append(
                ExecuteTaskPacket(
                    task_id=entry.task_id,
                    trs_id=self.trs_id,
                    tm_index=entry.tm_index,
                )
            )
        return result

    # ------------------------------------------------------------------
    # finished-task path (F2, F3)
    # ------------------------------------------------------------------
    def handle_finished(self, packet: FinishedTaskPacket) -> List[FinishPacket]:
        """Retire a finished task: emit finish packets and recycle its entry."""
        entry = self.task_memory.entry(packet.tm_index)
        if entry.task_id != packet.task_id:
            raise ValueError(
                f"finished task {packet.task_id} does not match TM entry "
                f"{packet.tm_index} (holds task {entry.task_id})"
            )
        if not entry.all_ready:
            raise RuntimeError(
                f"task {packet.task_id} reported finished before all its "
                "dependences were ready"
            )
        finish_packets: List[FinishPacket] = []
        append = finish_packets.append
        trs_id = self.trs_id
        tm_index = packet.tm_index
        for slot in entry.dep_slots:
            if slot.vm_index is None:
                raise RuntimeError(
                    f"dependence {slot.dep_index} of task {packet.task_id} has "
                    "no version assigned"
                )
            slot_ref = slot.slot_ref
            if slot_ref is None:
                # Slot recorded through the single-dependence surface.
                slot_ref = TaskSlotRef(
                    trs_id=trs_id, tm_index=tm_index, dep_index=slot.dep_index
                )
            append(
                FinishPacket(
                    slot=slot_ref, vm_index=slot.vm_index, address=slot.address
                )
            )
        self.task_memory.release(packet.tm_index)
        self.stats.tasks_retired += 1
        return finish_packets

    # ------------------------------------------------------------------
    # lookup helpers used by the Gateway
    # ------------------------------------------------------------------
    def tm_index_of(self, task_id: int) -> int:
        """TM entry currently holding ``task_id``."""
        return self.task_memory.entry_for_task(task_id).tm_index

    def holds_task(self, task_id: int) -> bool:
        """Whether ``task_id`` is in flight in this TRS."""
        return self.task_memory.has_task(task_id)
