"""Dependence Memory (DM): the three cache-like designs of Section III-C.

For each new dependence entering the DCT, the DM performs an address match
against the dependences that arrived earlier.  Each way of a set stores a
``valid`` bit, an ``input`` bit (all accesses so far are reads), the address
``tag`` and a pointer to the Version Memory (the ``data`` of Figure 4) plus
a live-access counter.

Three designs are modelled, matching the paper:

=============  =====  =============================  ==========
design         ways   set index                      VM entries
=============  =====  =============================  ==========
``DM 8way``    8      LSB 6 bits of the address      512
``DM 16way``   16     LSB 6 bits of the address      1024
``DM P+8way``  8      Pearson hash of the address    512
=============  =====  =============================  ==========

When a new address maps to a set whose ways are all valid with different
tags, the dependence cannot be stored: this is a *DM conflict* (Table II)
and the whole new-task pipeline stalls until one of the ways is recycled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import DMDesign
from repro.core.dependence_memory import DependenceMemoryConflict
from repro.core.hashing import make_index_function

__all__ = [
    "DependenceMemoryConflict",
    "DMWay",
    "DMLookupResult",
    "DependenceMemory",
]


class DMWay:
    """One way of one DM set (a ``__slots__`` record on the compare path)."""

    __slots__ = (
        "valid",
        "input_only",
        "tag",
        "latest_vm_index",
        "live_versions",
        "access_count",
    )

    def __init__(
        self,
        valid: bool = False,
        input_only: bool = True,
        tag: int = 0,
        latest_vm_index: Optional[int] = None,
        live_versions: int = 0,
        access_count: int = 0,
    ) -> None:
        self.valid = valid
        self.input_only = input_only
        self.tag = tag
        #: VM index of the most recent live version of this address.
        self.latest_vm_index = latest_vm_index
        #: Number of live versions of this address (the entry is recycled
        #: when this drops to zero).
        self.live_versions = live_versions
        #: Total accesses (producer or consumer) recorded since allocation;
        #: mirrors the "count" field of Figure 4.
        self.access_count = access_count

    def __repr__(self) -> str:
        return (
            f"DMWay(valid={self.valid}, input_only={self.input_only}, "
            f"tag={self.tag:#x}, latest_vm_index={self.latest_vm_index}, "
            f"live_versions={self.live_versions}, access_count={self.access_count})"
        )

    def __eq__(self, other: object) -> bool:
        # Field-wise equality, matching the dataclass this class replaced
        # (mutable, so instances stay unhashable).
        if not isinstance(other, DMWay):
            return NotImplemented
        return (
            self.valid == other.valid
            and self.input_only == other.input_only
            and self.tag == other.tag
            and self.latest_vm_index == other.latest_vm_index
            and self.live_versions == other.live_versions
            and self.access_count == other.access_count
        )

    __hash__ = None  # type: ignore[assignment]


class DMLookupResult:
    """Outcome of a DM compare operation.

    A ``__slots__`` value class: one is allocated per DM compare, which
    happens several times per task.
    """

    __slots__ = ("hit", "set_index", "way_index", "way")

    def __init__(
        self,
        hit: bool,
        set_index: int,
        way_index: Optional[int],
        way: Optional[DMWay],
    ) -> None:
        self.hit = hit
        self.set_index = set_index
        self.way_index = way_index
        self.way = way

    def __repr__(self) -> str:
        return (
            f"DMLookupResult(hit={self.hit}, set_index={self.set_index}, "
            f"way_index={self.way_index}, way={self.way!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DMLookupResult):
            return NotImplemented
        return (
            self.hit == other.hit
            and self.set_index == other.set_index
            and self.way_index == other.way_index
            and self.way == other.way
        )


class DependenceMemory:
    """A 64-set, N-way, cache-like dependence memory."""

    def __init__(self, design: DMDesign, num_sets: int = 64) -> None:
        if num_sets < 1:
            raise ValueError("DM needs at least one set")
        self.design = design
        self.num_sets = num_sets
        self.ways_per_set = design.ways
        self._sets: List[List[DMWay]] = [
            [DMWay() for _ in range(self.ways_per_set)] for _ in range(num_sets)
        ]
        self.conflicts = 0
        self.allocations = 0
        self._occupied = 0
        self._high_water = 0
        # Memoized per-address index (the Pearson fold is the single
        # hottest pure function of a full-system simulation otherwise).
        self._index_of = make_index_function(design.uses_pearson, num_sets)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def set_index(self, address: int) -> int:
        """Set index for ``address`` under the configured design."""
        return self._index_of(address)

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total number of addresses the DM can hold."""
        return self.num_sets * self.ways_per_set

    @property
    def occupied(self) -> int:
        """Number of valid ways (distinct live addresses)."""
        return self._occupied

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy observed."""
        return self._high_water

    def set_is_full(self, set_index: int) -> bool:
        """Whether every way of ``set_index`` is valid."""
        return all(way.valid for way in self._sets[set_index])

    # ------------------------------------------------------------------
    # compare / allocate / release
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> DMLookupResult:
        """DM compare: search the set of ``address`` for a matching tag.

        Way 0 has the highest priority, way N-1 the lowest, as in the
        priority encoder of Figure 4.
        """
        set_index = self._index_of(address)
        for way_index, way in enumerate(self._sets[set_index]):
            if way.valid and way.tag == address:
                return DMLookupResult(True, set_index, way_index, way)
        return DMLookupResult(False, set_index, None, None)

    def find_way(self, address: int) -> Optional[DMWay]:
        """The valid way holding ``address``, or ``None`` (fast compare).

        Semantically ``lookup(address).way``, without allocating a
        :class:`DMLookupResult`; this is the form the DCT uses on its
        per-dependence hot path.
        """
        for way in self._sets[self._index_of(address)]:
            if way.valid and way.tag == address:
                return way
        return None

    def allocate(self, address: int, input_only: bool) -> Tuple[int, DMWay]:
        """Store a new address in its set (the *New DM address* of Figure 4).

        Returns the ``(way_index, way)`` pair used.  Raises
        :class:`DependenceMemoryConflict` -- and counts one conflict -- when
        the set has no free way.
        """
        set_index = self._index_of(address)
        ways = self._sets[set_index]
        for way_index, way in enumerate(ways):
            if not way.valid:
                way.valid = True
                way.tag = address
                way.input_only = input_only
                way.latest_vm_index = None
                way.live_versions = 0
                way.access_count = 0
                self.allocations += 1
                self._occupied += 1
                self._high_water = max(self._high_water, self._occupied)
                return way_index, way
        self.conflicts += 1
        raise DependenceMemoryConflict(address, set_index)

    def release(self, address: int) -> None:
        """Invalidate the way holding ``address`` (all versions finished)."""
        way = self.find_way(address)
        if way is None:
            raise KeyError(f"address {address:#x} is not stored in the DM")
        self.release_way(way)

    def release_way(self, way: DMWay) -> None:
        """Invalidate ``way`` directly (the caller already matched it).

        The finish hot path looks the way up once to update its version
        chain and then recycles it; releasing by way skips the second set
        scan :meth:`release` would pay.
        """
        way.valid = False
        way.latest_vm_index = None
        way.live_versions = 0
        self._occupied -= 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def live_addresses(self) -> List[int]:
        """Every address currently stored (order: set, then way priority)."""
        addresses: List[int] = []
        for ways in self._sets:
            for way in ways:
                if way.valid:
                    addresses.append(way.tag)
        return addresses

    def set_occupancy_histogram(self) -> Dict[int, int]:
        """Mapping of set index to the number of valid ways it holds.

        This is the quantity that distinguishes the direct-hash designs from
        the Pearson design for block-aligned address streams: with the direct
        hash nearly every address lands in a handful of sets.
        """
        histogram: Dict[int, int] = {}
        for set_index, ways in enumerate(self._sets):
            valid = sum(1 for way in ways if way.valid)
            if valid:
                histogram[set_index] = valid
        return histogram
