"""Integer-handle adapters over the object-based reference datapath.

The Gateway and the accelerator facade speak the flat integer-handle
surface (see ``docs/datapath.md``): packed slot handles, ``-1`` sentinels,
parallel finish runs.  These adapters implement that surface on top of the
reference TRS/DCT classes, converting handles to
:class:`~repro.core.packets.TaskSlotRef` objects at the boundary, so one
single-source Gateway/accelerator drives either datapath and the
differential suites can run them against each other on identical inputs.

Performance is irrelevant here -- the adapters exist for correctness
checking and debugging only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import PicosConfig
from repro.core.packets import (
    FinishPacket,
    FinishedTaskPacket,
    NewTaskPacket,
    ReadyPacket,
    TaskSlotRef,
)
from repro.core.reference.dct import DependenceChainTracker as _ReferenceDct
from repro.core.reference.trs import TaskReservationStation as _ReferenceTrs
from repro.core.stats import PicosStats


class _SlotCodec:
    """Packed slot handle <-> :class:`TaskSlotRef` conversion.

    The encoding is the one the flat datapath uses:
    ``slot = trs_id * (tm_entries * max_deps) + tm_index * max_deps +
    dep_index``, shared by every TRS/DCT instance of one accelerator.
    """

    def __init__(self, config: PicosConfig) -> None:
        self.stride = config.max_deps_per_task
        self.per_trs = config.tm_entries * self.stride

    def encode(self, ref: TaskSlotRef) -> int:
        return ref.trs_id * self.per_trs + ref.tm_index * self.stride + ref.dep_index

    def decode(self, slot: int) -> TaskSlotRef:
        trs_id, local = divmod(slot, self.per_trs)
        tm_index, dep_index = divmod(local, self.stride)
        return TaskSlotRef(trs_id=trs_id, tm_index=tm_index, dep_index=dep_index)


class ReferenceTaskReservationStation:
    """Reference TRS behind the flat integer-handle surface."""

    def __init__(
        self,
        trs_id: int,
        config: PicosConfig,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self._inner = _ReferenceTrs(trs_id, config, stats)
        self._codec = _SlotCodec(config)
        self.trs_id = trs_id
        self.config = config
        self.stats = self._inner.stats
        self.task_memory = self._inner.task_memory
        self.slot_stride = self._codec.stride
        self.slots_per_trs = self._codec.per_trs
        self.slot_base = trs_id * self._codec.per_trs

    # -- capacity ------------------------------------------------------
    @property
    def has_free_slot(self) -> bool:
        return self._inner.has_free_slot

    @property
    def in_flight(self) -> int:
        return self._inner.in_flight

    # -- new-task path -------------------------------------------------
    def accept_task(self, task_id: int, num_deps: int) -> Tuple[int, bool]:
        entry, execute = self._inner.accept_new_task(
            NewTaskPacket(
                task_id=task_id, trs_id=self.trs_id, tm_index=0, num_deps=num_deps
            )
        )
        return entry.tm_index, execute is not None

    def record_dependences(
        self, tm_index: int, dependences: Sequence, start: int, end: int
    ) -> range:
        self._inner.record_dependences(tm_index, dependences, start, end)
        base = self.slot_base + tm_index * self.slot_stride
        return range(base + start, base + end)

    def drop_dependence_slots(self, tm_index: int, count: int) -> None:
        self._inner.drop_dependence_slots(tm_index, count)

    def apply_submission_outcomes(
        self,
        tm_index: int,
        start: int,
        outcomes: Sequence[Tuple[bool, int, int]],
    ) -> bool:
        decode = self._codec.decode
        converted = [
            (ready, vm_index, decode(predecessor) if predecessor >= 0 else None)
            for ready, vm_index, predecessor in outcomes
        ]
        execute = self._inner.apply_submission_outcomes(tm_index, start, converted)
        return execute is not None

    def handle_ready_slot(
        self, slot: int, vm_index: int
    ) -> Tuple[Optional[int], int]:
        result = self._inner.handle_ready(
            ReadyPacket(slot=self._codec.decode(slot), vm_index=vm_index)
        )
        task_id = result.execute[0].task_id if result.execute else None
        chained = (
            self._codec.encode(result.chained[0].slot) if result.chained else -1
        )
        return task_id, chained

    # -- finished-task path --------------------------------------------
    def handle_finished(
        self, task_id: int, tm_index: int
    ) -> Tuple[List[int], List[int], List[int]]:
        packets = self._inner.handle_finished(
            FinishedTaskPacket(task_id=task_id, trs_id=self.trs_id, tm_index=tm_index)
        )
        encode = self._codec.encode
        slots = [encode(packet.slot) for packet in packets]
        vm_indices = [packet.vm_index for packet in packets]
        addresses = [packet.address for packet in packets]
        return slots, vm_indices, addresses

    # -- lookup helpers ------------------------------------------------
    def tm_index_of(self, task_id: int) -> int:
        return self._inner.tm_index_of(task_id)

    def holds_task(self, task_id: int) -> bool:
        return self._inner.holds_task(task_id)


class ReferenceDependenceChainTracker:
    """Reference DCT behind the flat integer-handle surface."""

    def __init__(
        self,
        dct_id: int,
        config: PicosConfig,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self._inner = _ReferenceDct(dct_id, config, stats)
        self._codec = _SlotCodec(config)
        self.dct_id = dct_id
        self.config = config
        self.stats = self._inner.stats
        self.dm = self._inner.dm
        self.vm = self._inner.vm

    # -- new-dependence path -------------------------------------------
    def can_accept(self, address, direction) -> bool:
        return self._inner.can_accept(address, direction)

    def process_batch(
        self,
        slots: Sequence[int],
        dependences: Sequence,
        start: int,
        end: int,
    ):
        decode = self._codec.decode
        refs = [decode(slot) for slot in slots]
        outcomes, stall_reason = self._inner.process_batch(
            refs, dependences, start, end
        )
        encode = self._codec.encode
        converted = [
            (
                ready,
                vm_index,
                encode(predecessor) if predecessor is not None else -1,
            )
            for ready, vm_index, predecessor in outcomes
        ]
        return converted, stall_reason

    # -- finish path ---------------------------------------------------
    def process_finish_run(
        self,
        slots: Sequence[int],
        vm_indices: Sequence[int],
        start: int,
        end: int,
    ) -> List[Tuple[int, int]]:
        decode = self._codec.decode
        packets = [
            FinishPacket(slot=decode(slots[index]), vm_index=vm_indices[index])
            for index in range(start, end)
        ]
        wakeups = self._inner.process_finish_batch(packets, 0, len(packets))
        encode = self._codec.encode
        return [(encode(wake.slot), wake.vm_index) for wake in wakeups]

    # -- bookkeeping ---------------------------------------------------
    @property
    def live_addresses(self) -> int:
        return self._inner.live_addresses

    @property
    def live_versions(self) -> int:
        return self._inner.live_versions

    def is_idle(self) -> bool:
        return self._inner.is_idle()
