"""Task Memory (TM0 and TMX) of the Task Reservation Station.

Figure 3b: TM0 has 256 entries, one per in-flight task, storing the task
identification, the number of dependences and the number of ready
dependences.  TMX entries hold the per-dependence consumer-section
information notified by the DCT -- in this model, the VM index of the
version each dependence belongs to plus the consumer-chain link that makes
the backwards wake-up of Figure 5 possible.

The memories support the four actions described in the paper: read, write,
*New Entry Request* (allocate a free entry) and *Finished Entry Request*
(recycle an entry).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.packets import TaskSlotRef
from repro.core.task_memory import TaskMemoryFullError
from repro.runtime.task import Direction

__all__ = ["TaskMemoryFullError", "DependenceSlot", "TaskEntry", "TaskMemory"]


class DependenceSlot:
    """One TMX slot: the state of one dependence of an in-flight task.

    A ``__slots__`` record: one is allocated per dependence of every
    submitted task.
    """

    __slots__ = (
        "dep_index",
        "address",
        "vm_index",
        "ready",
        "predecessor",
        "is_producer",
        "slot_ref",
    )

    def __init__(
        self,
        dep_index: int,
        address: int,
        vm_index: Optional[int] = None,
        ready: bool = False,
        predecessor: Optional[TaskSlotRef] = None,
        is_producer: bool = False,
    ) -> None:
        #: Index of the dependence within its task (pragma order).
        self.dep_index = dep_index
        #: Address of the dependence (kept for bookkeeping / debug).
        self.address = address
        #: VM entry (version) this dependence was attached to by the DCT.
        self.vm_index = vm_index
        #: Whether the dependence has been marked ready.
        self.ready = ready
        #: Consumer-chain link: the previous consumer of the same version,
        #: to be woken after this slot (Section III-D).
        self.predecessor = predecessor
        #: Whether this dependence writes its address (producer role).
        self.is_producer = is_producer
        #: The TaskSlotRef minted for this slot at dispatch time, reused by
        #: the finish path so retiring a task does not re-allocate one
        #: reference per dependence (``None`` for slots recorded through
        #: the single-dependence legacy surface).
        self.slot_ref: Optional[TaskSlotRef] = None

    def __repr__(self) -> str:
        return (
            f"DependenceSlot(dep_index={self.dep_index}, address={self.address:#x}, "
            f"vm_index={self.vm_index}, ready={self.ready}, "
            f"predecessor={self.predecessor!r}, is_producer={self.is_producer})"
        )


class TaskEntry:
    """One TM0 entry plus its TMX dependence slots."""

    __slots__ = ("tm_index", "task_id", "num_deps", "ready_deps", "dep_slots")

    def __init__(
        self,
        tm_index: int,
        task_id: int,
        num_deps: int,
        ready_deps: int = 0,
        dep_slots: Optional[List[DependenceSlot]] = None,
    ) -> None:
        self.tm_index = tm_index
        self.task_id = task_id
        self.num_deps = num_deps
        self.ready_deps = ready_deps
        self.dep_slots: List[DependenceSlot] = (
            dep_slots if dep_slots is not None else []
        )

    def __repr__(self) -> str:
        return (
            f"TaskEntry(tm_index={self.tm_index}, task_id={self.task_id}, "
            f"num_deps={self.num_deps}, ready_deps={self.ready_deps}, "
            f"dep_slots={self.dep_slots!r})"
        )

    @property
    def all_ready(self) -> bool:
        """``True`` when every dependence of the task has been marked ready."""
        return self.ready_deps >= self.num_deps


class TaskMemory:
    """The TM0/TMX memory pair of one TRS instance."""

    def __init__(self, entries: int = 256, max_deps_per_task: int = 15) -> None:
        if entries < 1:
            raise ValueError("TM needs at least one entry")
        if max_deps_per_task < 1:
            raise ValueError("TMX must hold at least one dependence per task")
        self.entries = entries
        self.max_deps_per_task = max_deps_per_task
        self._slots: List[Optional[TaskEntry]] = [None] * entries
        self._free: List[int] = list(range(entries - 1, -1, -1))
        self._by_task_id: Dict[int, int] = {}
        self._high_water = 0

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def occupied(self) -> int:
        """Number of in-flight tasks currently stored."""
        return self.entries - len(self._free)

    @property
    def full(self) -> bool:
        """``True`` when a New Entry Request would fail."""
        return not self._free

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy observed."""
        return self._high_water

    def has_task(self, task_id: int) -> bool:
        """Whether ``task_id`` is currently in flight in this TM."""
        return task_id in self._by_task_id

    # ------------------------------------------------------------------
    # New Entry Request / Finished Entry Request
    # ------------------------------------------------------------------
    def allocate(self, task_id: int, num_deps: int) -> TaskEntry:
        """Allocate a TM entry for a new task (New Entry Request).

        Raises
        ------
        TaskMemoryFullError
            when no free entry exists (the GW must hold the new task).
        ValueError
            when the task declares more dependences than the TMX can hold.
        """
        if num_deps > self.max_deps_per_task:
            raise ValueError(
                f"task {task_id} has {num_deps} dependences; the TMX holds at "
                f"most {self.max_deps_per_task}"
            )
        if task_id in self._by_task_id:
            raise ValueError(f"task {task_id} is already in flight")
        if not self._free:
            raise TaskMemoryFullError("no free TM entry")
        tm_index = self._free.pop()
        entry = TaskEntry(tm_index=tm_index, task_id=task_id, num_deps=num_deps)
        self._slots[tm_index] = entry
        self._by_task_id[task_id] = tm_index
        occupied = self.entries - len(self._free)
        if occupied > self._high_water:
            self._high_water = occupied
        return entry

    def release(self, tm_index: int) -> None:
        """Recycle a TM entry after its task retired (Finished Entry Request)."""
        entry = self._slots[tm_index]
        if entry is None:
            raise KeyError(f"TM entry {tm_index} is not occupied")
        del self._by_task_id[entry.task_id]
        self._slots[tm_index] = None
        self._free.append(tm_index)

    # ------------------------------------------------------------------
    # reads / writes
    # ------------------------------------------------------------------
    def entry(self, tm_index: int) -> TaskEntry:
        """Return the occupied entry at ``tm_index``."""
        entry = self._slots[tm_index]
        if entry is None:
            raise KeyError(f"TM entry {tm_index} is not occupied")
        return entry

    def entry_for_task(self, task_id: int) -> TaskEntry:
        """Return the entry holding ``task_id``."""
        if task_id not in self._by_task_id:
            raise KeyError(f"task {task_id} is not in flight")
        return self.entry(self._by_task_id[task_id])

    def add_dependence_slot(
        self, tm_index: int, dep_index: int, address: int, is_producer: bool
    ) -> DependenceSlot:
        """Record a dependence of the task stored at ``tm_index`` in the TMX."""
        entry = self.entry(tm_index)
        if dep_index >= self.max_deps_per_task:
            raise ValueError("dependence index exceeds TMX capacity")
        slot = DependenceSlot(
            dep_index=dep_index, address=address, is_producer=is_producer
        )
        entry.dep_slots.append(slot)
        return slot

    def add_dependence_slots(
        self, tm_index: int, dependences: Sequence, start: int, end: int
    ) -> TaskEntry:
        """Record ``dependences[start:end]`` of the task at ``tm_index``.

        The batched form of :meth:`add_dependence_slot`, used by the
        Gateway when it dispatches a whole run of dependences to one DCT:
        one entry read serves every slot of the run.  Each dependence needs
        ``.address`` and ``.direction`` attributes; slot ``k`` is recorded
        for dependence index ``start + k``, preserving pragma order (and
        the invariant that ``entry.dep_slots[i]`` holds dependence ``i``).
        Returns the task entry so the caller can keep working on it.
        """
        entry = self.entry(tm_index)
        if end > self.max_deps_per_task:
            raise ValueError("dependence index exceeds TMX capacity")
        dep_slots = entry.dep_slots
        append = dep_slots.append
        # Identity checks against hoisted members instead of the
        # Direction.writes property: one descriptor call per dependence of
        # every task adds up.
        writer = Direction.OUT
        readwriter = Direction.INOUT
        for dep_index in range(start, end):
            dep = dependences[dep_index]
            direction = dep.direction
            append(
                DependenceSlot(
                    dep_index=dep_index,
                    address=dep.address,
                    is_producer=direction is writer or direction is readwriter,
                )
            )
        return entry

    def drop_dependence_slots(self, tm_index: int, count: int) -> None:
        """Remove the ``count`` most recently recorded TMX slots.

        Used by the Gateway when a dispatch run stalls partway: the slots
        recorded past the last stored dependence are dropped so the retry
        records them again cleanly.
        """
        dep_slots = self.entry(tm_index).dep_slots
        del dep_slots[len(dep_slots) - count :]

    def dependence_slot(self, tm_index: int, dep_index: int) -> DependenceSlot:
        """Return the TMX slot of one dependence of an in-flight task."""
        entry = self.entry(tm_index)
        for slot in entry.dep_slots:
            if slot.dep_index == dep_index:
                return slot
        raise KeyError(
            f"task at TM entry {tm_index} has no dependence slot {dep_index}"
        )

    def in_flight_task_ids(self) -> List[int]:
        """Identifiers of every task currently stored, in TM-index order."""
        return [entry.task_id for entry in self._slots if entry is not None]
