"""Version Memory (VM) of the Dependence Chain Tracker.

Each DM entry stores one dependence *address*; the VM stores its live
*versions*.  A version corresponds to one producer (writer) of the address
plus all the consumers (readers) that access the value that producer
creates.  Section III-D describes how versions are chained:

* consumers of a version form a backwards chain anchored at the *last*
  consumer, which is the one the DCT wakes when the producer finishes
  (links 1-3 of Figure 5);
* producers of successive versions form a forward chain; version ``k+1``'s
  producer is woken when version ``k`` is completely finished (links 4-5).

The VM of the prototype has 512 entries (1024 for the 16-way design), with
Read/Write/New Entry Request/Finished Entry Request actions like the TM.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.packets import TaskSlotRef
from repro.core.version_memory import VersionMemoryFullError

__all__ = ["VersionMemoryFullError", "VersionEntry", "VersionMemory"]


class VersionEntry:
    """One VM entry: a single live version of one dependence address.

    A ``__slots__`` record: one is allocated per producer version of every
    address, several times per task on write-heavy graphs.
    """

    __slots__ = (
        "vm_index",
        "address",
        "producer",
        "producer_finished",
        "last_consumer",
        "consumers_arrived",
        "consumers_finished",
        "next_version",
    )

    def __init__(
        self,
        vm_index: int,
        address: int,
        producer: Optional[TaskSlotRef] = None,
        producer_finished: bool = False,
        last_consumer: Optional[TaskSlotRef] = None,
        consumers_arrived: int = 0,
        consumers_finished: int = 0,
        next_version: Optional[int] = None,
    ) -> None:
        self.vm_index = vm_index
        self.address = address
        #: Producer slot of this version; ``None`` for a version opened by
        #: readers before any writer appeared (all its consumers are ready).
        self.producer = producer
        self.producer_finished = producer_finished
        #: Most recently arrived consumer of this version (head of the
        #: backwards wake-up chain the DCT keeps; earlier consumers are
        #: linked through the TMX of later ones).
        self.last_consumer = last_consumer
        self.consumers_arrived = consumers_arrived
        self.consumers_finished = consumers_finished
        #: Forward producer-producer chain link (the next version of the
        #: same address), ``None`` for the most recent version.
        self.next_version = next_version

    def __repr__(self) -> str:
        return (
            f"VersionEntry(vm_index={self.vm_index}, address={self.address:#x}, "
            f"producer={self.producer!r}, producer_finished={self.producer_finished}, "
            f"last_consumer={self.last_consumer!r}, "
            f"consumers_arrived={self.consumers_arrived}, "
            f"consumers_finished={self.consumers_finished}, "
            f"next_version={self.next_version})"
        )

    @property
    def readers_ready(self) -> bool:
        """Whether consumers of this version may execute immediately."""
        return self.producer is None or self.producer_finished

    @property
    def complete(self) -> bool:
        """Whether the producer and every arrived consumer have finished."""
        producer_done = self.producer is None or self.producer_finished
        return producer_done and self.consumers_arrived == self.consumers_finished


class VersionMemory:
    """The VM of one DCT instance: a pool of :class:`VersionEntry` slots."""

    def __init__(self, entries: int = 512) -> None:
        if entries < 1:
            raise ValueError("VM needs at least one entry")
        self.entries = entries
        self._slots: List[Optional[VersionEntry]] = [None] * entries
        self._free: List[int] = list(range(entries - 1, -1, -1))
        self._high_water = 0
        self._total_allocations = 0

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def occupied(self) -> int:
        """Number of live versions currently stored."""
        return self.entries - len(self._free)

    @property
    def full(self) -> bool:
        """``True`` when a new version cannot be allocated."""
        return not self._free

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy observed."""
        return self._high_water

    @property
    def total_allocations(self) -> int:
        """Number of versions allocated over the lifetime of the memory."""
        return self._total_allocations

    # ------------------------------------------------------------------
    # allocation / recycling
    # ------------------------------------------------------------------
    def allocate(self, address: int) -> VersionEntry:
        """Allocate a VM entry for a new version of ``address``."""
        if not self._free:
            raise VersionMemoryFullError("no free VM entry")
        vm_index = self._free.pop()
        entry = VersionEntry(vm_index=vm_index, address=address)
        self._slots[vm_index] = entry
        self._total_allocations += 1
        occupied = self.entries - len(self._free)
        if occupied > self._high_water:
            self._high_water = occupied
        return entry

    def release(self, vm_index: int) -> None:
        """Recycle a VM entry once its version is complete and woken."""
        if self._slots[vm_index] is None:
            raise KeyError(f"VM entry {vm_index} is not occupied")
        self._slots[vm_index] = None
        self._free.append(vm_index)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def entry(self, vm_index: int) -> VersionEntry:
        """Return the occupied entry at ``vm_index``."""
        entry = self._slots[vm_index]
        if entry is None:
            raise KeyError(f"VM entry {vm_index} is not occupied")
        return entry

    def live_entries(self) -> List[VersionEntry]:
        """Every live version, in VM-index order (used by tests/debug)."""
        return [entry for entry in self._slots if entry is not None]

    def live_versions_of(self, address: int) -> List[VersionEntry]:
        """Live versions of one address, oldest-allocated first."""
        return [entry for entry in self.live_entries() if entry.address == address]

    def utilisation(self) -> float:
        """Fraction of the VM currently occupied (0.0 - 1.0)."""
        return self.occupied / self.entries

    def snapshot(self) -> Dict[int, VersionEntry]:
        """Mapping of occupied VM index to entry (debugging aid)."""
        return {
            index: entry
            for index, entry in enumerate(self._slots)
            if entry is not None
        }
