"""Version Memory (VM) of the Dependence Chain Tracker.

Each DM entry stores one dependence *address*; the VM stores its live
*versions*.  A version corresponds to one producer (writer) of the address
plus all the consumers (readers) that access the value that producer
creates.  Section III-D describes how versions are chained:

* consumers of a version form a backwards chain anchored at the *last*
  consumer, which is the one the DCT wakes when the producer finishes
  (links 1-3 of Figure 5);
* producers of successive versions form a forward chain; version ``k+1``'s
  producer is woken when version ``k`` is completely finished (links 4-5).

The VM of the prototype has 512 entries (1024 for the 16-way design), with
Read/Write/New Entry Request/Finished Entry Request actions like the TM.

Flat layout
-----------

Version state lives in parallel flat lists indexed by the VM index, the
way the hardware addresses its version SRAM.  Task-slot references
(producer, last consumer) are stored as packed integer handles with ``-1``
meaning *none* (see ``docs/datapath.md``); each entry also caches the DM
way handle of its address so the finish path retires versions without
re-scanning the DM set.  The free list is kept as ``range(entries-1, -1,
-1)`` popped from the end, reproducing the exact VM-index assignment order
of the reference model (:mod:`repro.core.reference.version_memory`) --
entries 0, 1, 2, ... -- which the differential suite pins.
"""

from __future__ import annotations

from typing import List


class VersionMemoryFullError(RuntimeError):
    """Raised when a new version is needed but every VM entry is occupied."""


class VersionMemory:
    """The VM of one DCT instance, held as parallel flat arrays."""

    def __init__(self, entries: int = 512) -> None:
        if entries < 1:
            raise ValueError("VM needs at least one entry")
        self.entries = entries
        #: One entry per VM index; slot handles use ``-1`` for *none*.
        self._valid: List[bool] = [False] * entries
        self._address: List[int] = [0] * entries
        self._producer: List[int] = [-1] * entries
        self._producer_finished: List[bool] = [False] * entries
        self._last_consumer: List[int] = [-1] * entries
        self._consumers_arrived: List[int] = [0] * entries
        self._consumers_finished: List[int] = [0] * entries
        self._next_version: List[int] = [-1] * entries
        #: DM way handle of the entry's address, cached at allocation so
        #: retirement skips the DM set scan (a way is stable from the
        #: first allocation of its address until its last version dies).
        self._dm_handle: List[int] = [-1] * entries
        self._free: List[int] = list(range(entries - 1, -1, -1))
        self._high_water = 0
        self._total_allocations = 0

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def occupied(self) -> int:
        """Number of live versions currently stored."""
        return self.entries - len(self._free)

    @property
    def full(self) -> bool:
        """``True`` when a new version cannot be allocated."""
        return not self._free

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy observed."""
        return self._high_water

    @property
    def total_allocations(self) -> int:
        """Number of versions allocated over the lifetime of the memory."""
        return self._total_allocations

    # ------------------------------------------------------------------
    # allocation / recycling
    # ------------------------------------------------------------------
    def allocate(self, address: int) -> int:
        """Allocate a VM entry for a new version of ``address``.

        Returns the VM index; every field of the entry is reset so a
        recycled slot can never leak stale chain state.
        """
        if not self._free:
            raise VersionMemoryFullError("no free VM entry")
        vm_index = self._free.pop()
        self._valid[vm_index] = True
        self._address[vm_index] = address
        self._producer[vm_index] = -1
        self._producer_finished[vm_index] = False
        self._last_consumer[vm_index] = -1
        self._consumers_arrived[vm_index] = 0
        self._consumers_finished[vm_index] = 0
        self._next_version[vm_index] = -1
        self._dm_handle[vm_index] = -1
        self._total_allocations += 1
        occupied = self.entries - len(self._free)
        if occupied > self._high_water:
            self._high_water = occupied
        return vm_index

    def release(self, vm_index: int) -> None:
        """Recycle a VM entry once its version is complete and woken."""
        if not self._valid[vm_index]:
            raise KeyError(f"VM entry {vm_index} is not occupied")
        self._valid[vm_index] = False
        self._free.append(vm_index)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def is_occupied(self, vm_index: int) -> bool:
        """Whether ``vm_index`` currently holds a live version."""
        return self._valid[vm_index]

    def live_indices(self) -> List[int]:
        """Every occupied VM index, in VM-index order (tests/debug)."""
        valid = self._valid
        return [index for index in range(self.entries) if valid[index]]

    def live_versions_of(self, address: int) -> List[int]:
        """Occupied VM indices holding versions of ``address``."""
        valid = self._valid
        addresses = self._address
        return [
            index
            for index in range(self.entries)
            if valid[index] and addresses[index] == address
        ]

    def utilisation(self) -> float:
        """Fraction of the VM currently occupied (0.0 - 1.0)."""
        return self.occupied / self.entries
