"""The Picos accelerator model (the paper's primary contribution).

The modules in this subpackage mirror the hardware organisation of Figure 3
of the paper:

* :mod:`repro.core.gateway` -- the Gateway (GW), first interface between the
  processing cores and Picos.
* :mod:`repro.core.trs` -- the Task Reservation Station (TRS) and its Task
  Memories (TM0 / TMX), which track in-flight tasks and their readiness.
* :mod:`repro.core.dct` -- the Dependence Chain Tracker (DCT) and its
  Dependence Memory (DM) / Version Memory (VM), which detect and release
  inter-task data dependences.
* :mod:`repro.core.arbiter` -- the Arbiter (ARB) routing TRS<->DCT traffic.
* :mod:`repro.core.scheduler` -- the Task Scheduler (TS) holding ready tasks.
* :mod:`repro.core.picos` -- the :class:`~repro.core.picos.PicosAccelerator`
  facade that assembles all modules and exposes the co-processor interface
  used by the Hardware-In-the-Loop platform.

Supporting modules: :mod:`repro.core.config` (geometry and calibrated
latencies), :mod:`repro.core.packets` (inter-module messages),
:mod:`repro.core.fifo` (bounded queues), :mod:`repro.core.hashing` (direct
and Pearson index hashing), :mod:`repro.core.stats` (hardware counters).
"""

from repro.core.config import DMDesign, PicosConfig
from repro.core.picos import PicosAccelerator, SubmitStatus
from repro.core.scheduler import SchedulingPolicy
from repro.core.stats import PicosStats

__all__ = [
    "DMDesign",
    "PicosConfig",
    "PicosAccelerator",
    "SubmitStatus",
    "SchedulingPolicy",
    "PicosStats",
]
