"""Geometry and timing configuration of the Picos accelerator.

The defaults reproduce the *current architecture* of Figure 3b and the
calibrated latencies of Table IV of the paper:

* one TRS and one DCT instance (the baseline configuration, able to manage
  up to 8 cores without significant performance loss according to the Picos
  simulation study the paper builds on);
* a 256-entry TM0 (up to 256 in-flight tasks), TMX storage for up to 15
  dependences per task, a 512-entry VM and a 64-entry DM;
* the three DM designs explored in Section III-C (8-way and 16-way with
  direct LSB-6-bit indexing, and 8-way with Pearson hashing);
* pipeline latencies that reproduce the HW-only rows of Table IV (first-task
  latency of ~45 cycles for a task without dependences, ~16 cycles of
  throughput per additional dependence, ...), and an AXI-stream
  communication cost of 200-300 cycles per message for the HIL modes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict


class DMDesign(enum.Enum):
    """The three Dependence Memory designs evaluated in the paper.

    * ``WAY8`` -- 64-entry, 8-way associative, direct hash (LSB 6 bits of the
      dependence address are the set index).
    * ``WAY16`` -- 64-entry, 16-way associative, direct hash.  The VM is
      doubled to 1024 entries to stay coherent with the larger DM.
    * ``PEARSON8`` -- 64-entry, 8-way associative, Pearson hashing of the LSB
      32 bits of the address folded into a 6-bit set index.
    """

    WAY8 = "8way"
    WAY16 = "16way"
    PEARSON8 = "p+8way"

    @property
    def ways(self) -> int:
        """Associativity of the design."""
        return 16 if self is DMDesign.WAY16 else 8

    @property
    def uses_pearson(self) -> bool:
        """Whether the set index is computed with Pearson hashing."""
        return self is DMDesign.PEARSON8

    @property
    def display_name(self) -> str:
        """The label used in the paper's tables and figures."""
        return {"8way": "DM 8way", "16way": "DM 16way", "p+8way": "DM P+8way"}[
            self.value
        ]


@dataclass(frozen=True)
class PicosConfig:
    """Complete configuration of a Picos instance.

    Geometry parameters describe the memories of Figure 3b; latency
    parameters are the calibration constants that reproduce the cycle
    numbers of Table IV.  All latencies are in cycles of the 80 MHz
    programmable-logic clock of the Zedboard prototype.
    """

    # ------------------------------------------------------------------
    # structural geometry (Figure 3b / Section III-A)
    # ------------------------------------------------------------------
    dm_design: DMDesign = DMDesign.PEARSON8
    num_trs: int = 1
    num_dct: int = 1
    tm_entries: int = 256
    max_deps_per_task: int = 15
    vm_entries: int = 512
    dm_sets: int = 64

    # ------------------------------------------------------------------
    # new-task pipeline latencies (HW-only rows of Table IV)
    # ------------------------------------------------------------------
    #: GW + TRS occupancy for a task without dependences (Case1 thrTask).
    new_task_cycles: int = 15
    #: GW + TRS base occupancy for a task that carries dependences.
    new_task_with_deps_cycles: int = 8
    #: DCT pipeline occupancy per dependence (Case3/Case7 thrDep).
    dep_pipeline_cycles: int = 16
    #: Extra cycles the first dependence of a task spends in the DCT
    #: (accounts for the 24-cycle per-dependence throughput of Case2/Case4).
    first_dep_extra_cycles: int = 8
    #: Latency from submission to readiness for a task without dependences
    #: (Case1 L1st).
    ready_latency_base: int = 45
    #: Additional readiness latency contributed by the first dependence
    #: (Case2/Case4 L1st minus Case1 L1st).
    ready_latency_first_dep: int = 28
    #: Additional readiness latency per dependence after the first.
    ready_latency_per_dep: int = 17

    # ------------------------------------------------------------------
    # finished-task pipeline latencies
    # ------------------------------------------------------------------
    #: GW + TRS occupancy to retire a task without dependences.
    finish_task_cycles: int = 10
    #: DCT occupancy per dependence-release packet of a finishing task.
    finish_dep_cycles: int = 16
    #: Latency from a finish being processed to a directly woken task
    #: becoming visible in the Task Scheduler.
    wake_latency: int = 20
    #: Extra latency per hop when the TRS walks a consumer chain backwards
    #: (link 2 / link 3 of Figure 5) or the producer-producer chain forward.
    chain_hop_cycles: int = 4

    #: Cycles added to the pipeline each time a dependence insertion finds
    #: its DM set full and must retry (the conflict stall of Section III-C).
    dm_conflict_stall_cycles: int = 12

    # ------------------------------------------------------------------
    # HIL platform costs (Section IV-B / Table IV)
    # ------------------------------------------------------------------
    #: AXI-stream communication cost per message between the ARM cores and
    #: Picos ("around 200 to 300 cycles for each message").
    comm_cycles: int = 247
    #: One-time platform start-up cost paid by the ARM core before the first
    #: task is created in the HW+comm and Full-system modes (driver set-up
    #: and status-register initialisation); calibrated from the L1st rows of
    #: Table IV.
    hil_startup_cycles: int = 880
    #: Messages exchanged per task in the closed-loop modes (new task in,
    #: ready task out, finished task in).
    comm_messages_per_task: int = 3
    #: Nanos++ task-creation cost on the ARM core in full-system mode.
    nanos_creation_cycles: int = 1990
    #: Nanos++ submission cost of the first dependence in full-system mode.
    nanos_first_dep_cycles: int = 395
    #: Nanos++ submission cost of each additional dependence.
    nanos_extra_dep_cycles: int = 20

    # ------------------------------------------------------------------
    # model selection
    # ------------------------------------------------------------------
    #: Run the accelerator on the object-based reference datapath
    #: (:mod:`repro.core.reference`) instead of the flat integer-handle
    #: datapath.  Cycle-identical by contract (see ``docs/datapath.md``);
    #: used by the differential/parity suites and for debugging.  The
    #: ``REPRO_REFERENCE_DATAPATH`` environment variable forces it on.
    reference_datapath: bool = False

    def __post_init__(self) -> None:
        if self.num_trs < 1 or self.num_dct < 1:
            raise ValueError("at least one TRS and one DCT instance are required")
        if self.tm_entries < 1:
            raise ValueError("TM must have at least one entry")
        if self.max_deps_per_task < 1:
            raise ValueError("tasks must be allowed at least one dependence")
        if self.vm_entries < 1 or self.dm_sets < 1:
            raise ValueError("VM and DM must have at least one entry")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def dm_ways(self) -> int:
        """Associativity of the configured DM design."""
        return self.dm_design.ways

    @property
    def dm_capacity(self) -> int:
        """Total number of distinct addresses the DM can hold."""
        return self.dm_sets * self.dm_ways

    @property
    def effective_vm_entries(self) -> int:
        """VM entries, doubled for the 16-way design as in the paper."""
        if self.dm_design is DMDesign.WAY16 and self.vm_entries == 512:
            return 1024
        return self.vm_entries

    @property
    def max_in_flight_tasks(self) -> int:
        """Maximum number of in-flight tasks across all TRS instances."""
        return self.tm_entries * self.num_trs

    # ------------------------------------------------------------------
    # cost helpers used by the accelerator model
    # ------------------------------------------------------------------
    def new_task_occupancy(self, num_deps: int) -> int:
        """Pipeline occupancy (throughput cost) of accepting a new task.

        Calibrated so that the per-task throughput of the synthetic
        benchmarks matches the HW-only row of Table IV: 15 cycles for a task
        without dependences, 24 for one dependence, ~243 for 15.
        """
        if num_deps <= 0:
            return self.new_task_cycles
        return self.new_task_with_deps_cycles + self.dep_pipeline_cycles * num_deps

    def new_task_ready_latency(self, num_deps: int) -> int:
        """Latency from submission to readiness of an independent task.

        Calibrated to the L1st row of Table IV: 45 cycles with no
        dependences, 72-73 with one, ~312 with fifteen.
        """
        if num_deps <= 0:
            return self.ready_latency_base
        return (
            self.ready_latency_base
            + self.ready_latency_first_dep
            + self.ready_latency_per_dep * (num_deps - 1)
        )

    def finish_occupancy(self, num_deps: int) -> int:
        """Pipeline occupancy of processing one finished-task notification."""
        return self.finish_task_cycles + self.finish_dep_cycles * num_deps

    def nanos_submission_cycles(self, num_deps: int) -> int:
        """Full-system Nanos++ creation + submission cost for one task."""
        cost = self.nanos_creation_cycles
        if num_deps > 0:
            cost += self.nanos_first_dep_cycles
            cost += self.nanos_extra_dep_cycles * (num_deps - 1)
        return cost

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    def with_design(self, design: DMDesign) -> "PicosConfig":
        """Return a copy of this configuration with another DM design."""
        return replace(self, dm_design=design)

    @classmethod
    def paper_prototype(cls, design: DMDesign = DMDesign.PEARSON8) -> "PicosConfig":
        """The configuration of the Zedboard prototype evaluated in the paper."""
        return cls(dm_design=design)

    @classmethod
    def all_designs(cls) -> Dict[DMDesign, "PicosConfig"]:
        """One prototype configuration per DM design (for Figure 8 / Table II)."""
        return {design: cls.paper_prototype(design) for design in DMDesign}
