"""Dependence Chain Tracker (DCT).

The DCT is the major dependence-management unit of Picos (Section III-A).
It owns one Dependence Memory (DM) and one Version Memory (VM) and
implements the two halves of the operational flow of Section III-B:

new-dependence processing (N5)
    For each dependence of a new task the DCT performs a DM compare.  A miss
    allocates a DM way and a VM version and answers *ready*; a hit attaches
    the dependence to the live version chain of the address and answers
    *ready* or *dependent* depending on whether earlier accesses are still
    pending.

finish processing (F4)
    For each dependence of a finished task the DCT updates the version the
    dependence belonged to, wakes the consumer chain (from the *last*
    consumer) or the next producer version when appropriate, and recycles VM
    and DM entries once a version chain is completely finished.

Structural hazards -- a full DM set (conflict) or a full VM -- are reported
through the returned stall reason so the Gateway can hold the new task,
exactly like the prototype stalls its pipeline.

Flat datapath
-------------

Both halves run directly over the parallel flat arrays of the DM, VM and
TMX (see ``docs/datapath.md``): the DM compare is a C-speed tag scan
returning an integer way handle, versions and task slots are integer
indices with ``-1`` for *none*, and no packet or outcome object is
allocated per dependence.  The object-based reference implementation lives
in :mod:`repro.core.reference` and the differential suite pins the two
cycle-identical.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.core.config import PicosConfig
from repro.core.dependence_memory import DependenceMemory
from repro.core.stats import PicosStats
from repro.core.version_memory import VersionMemory
from repro.runtime.task import Direction


class StallReason(enum.Enum):
    """Why the DCT could not store a new dependence."""

    DM_CONFLICT = "dm-conflict"
    VM_FULL = "vm-full"
    TM_FULL = "tm-full"


class DctStall(Exception):
    """Raised when a new dependence cannot be stored right now."""

    def __init__(self, reason: StallReason, address: int) -> None:
        super().__init__(f"DCT stall ({reason.value}) on address {address:#x}")
        self.reason = reason
        self.address = address


class DependenceChainTracker:
    """One DCT instance: DM + VM plus the chain-tracking control logic."""

    def __init__(
        self,
        dct_id: int,
        config: PicosConfig,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self.dct_id = dct_id
        self.config = config
        self.stats = stats if stats is not None else PicosStats()
        self.dm = DependenceMemory(config.dm_design, config.dm_sets)
        self.vm = VersionMemory(config.effective_vm_entries)
        #: Addresses whose insertion is currently blocked on a conflict;
        #: used to avoid double-counting conflicts across retries.
        self._blocked_addresses: set[int] = set()

    # ------------------------------------------------------------------
    # new-dependence path (N5)
    # ------------------------------------------------------------------
    def can_accept(self, address: int, direction: Direction) -> bool:
        """Check whether a dependence on ``address`` could be stored now.

        Used by the Gateway to decide whether to resume a stalled
        submission without paying for a failed attempt.
        """
        dm = self.dm
        if dm.lookup(address) >= 0:
            if direction.writes:
                return not self.vm.full
            return True
        if dm.set_is_full(dm.set_index(address)):
            return False
        return not self.vm.full

    def process_batch(
        self,
        slots: Sequence[int],
        dependences: Sequence,
        start: int,
        end: int,
    ) -> Tuple[List[Tuple[bool, int, int]], Optional[StallReason]]:
        """Handle all of ``dependences[start:end]`` in one pass (N5, batched).

        ``slots[k - start]`` is the packed TMX slot handle of
        ``dependences[k]``; each dependence only needs ``.address`` and
        ``.direction`` attributes (:class:`~repro.runtime.task.Dependence`
        qualifies).

        This is the Gateway's hot path: one call per task (per DCT bank)
        instead of one packet round-trip per dependence, fused directly
        over the flat DM/VM arrays with hoisted locals.  Returns
        ``(outcomes, stall_reason)``: one ``(ready, vm_index,
        predecessor)`` triple per dependence processed, in order, with
        integer slot handles (``-1`` for no predecessor).  On a structural
        hazard the batch stops -- ``outcomes`` covers the dependences
        stored before the blocked one and ``stall_reason`` says why (the
        stalled dependence itself is *not* stored); the Gateway resumes
        from ``start + len(outcomes)`` once resources free up.  The
        reference implementation pins this loop branch for branch.
        """
        dm = self.dm
        vm = self.vm
        stats = self.stats
        blocked = self._blocked_addresses
        index_of = dm._index_of
        ways = dm.ways_per_set
        dm_valid = dm._valid
        dm_tag = dm._tag
        dm_input_only = dm._input_only
        dm_latest = dm._latest_vm_index
        dm_live = dm._live_versions
        dm_access = dm._access_count
        vm_free = vm._free
        vm_entries = vm.entries
        v_valid = vm._valid
        v_address = vm._address
        v_producer = vm._producer
        v_producer_finished = vm._producer_finished
        v_last_consumer = vm._last_consumer
        v_consumers_arrived = vm._consumers_arrived
        v_consumers_finished = vm._consumers_finished
        v_next_version = vm._next_version
        v_dm_handle = vm._dm_handle
        writer = Direction.OUT
        readwriter = Direction.INOUT
        tag_scan = dm_tag.index
        free_scan = dm_valid.index
        outcomes: List[Tuple[bool, int, int]] = []
        append = outcomes.append
        stall_reason: Optional[StallReason] = None
        ready_count = 0
        for index in range(start, end):
            dep = dependences[index]
            address = dep.address
            direction = dep.direction
            writes = direction is writer or direction is readwriter
            slot = slots[index - start]
            # DM compare: way 0 has the highest priority (Figure 4).  The
            # tag scan runs at C speed; released ways hold tag -1, so a
            # match is always a valid way.
            base = index_of(address) * ways
            limit = base + ways
            try:  # repro-lint: disable=HOT002(C-speed list.index tag scan; a miss is the expected cold case)
                way = tag_scan(address, base, limit)
            except ValueError:
                way = -1
            if way < 0:
                # First live access: allocate DM way + first version.
                try:  # repro-lint: disable=HOT002(C-speed list.index free-way scan; ValueError is the set-conflict signal)
                    way = free_scan(False, base, limit)
                except ValueError:
                    self._record_conflict(address)
                    stall_reason = StallReason.DM_CONFLICT
                    break
                if not vm_free:
                    stats.vm_full_stalls += 1
                    stall_reason = StallReason.VM_FULL
                    break
                dm_valid[way] = True
                dm_tag[way] = address
                dm_input_only[way] = not writes
                dm.allocations += 1
                dm._occupied += 1
                if dm._occupied > dm._high_water:
                    dm._high_water = dm._occupied
                vm_index = vm_free.pop()
                v_valid[vm_index] = True
                v_address[vm_index] = address
                v_producer_finished[vm_index] = False
                v_last_consumer[vm_index] = -1
                v_consumers_finished[vm_index] = 0
                v_next_version[vm_index] = -1
                v_dm_handle[vm_index] = way
                vm._total_allocations += 1
                occupied = vm_entries - len(vm_free)
                if occupied > vm._high_water:
                    vm._high_water = occupied
                stats.dm_allocations += 1
                stats.vm_allocations += 1
                dm_latest[way] = vm_index
                dm_live[way] = 1
                dm_access[way] = 1
                if writes:
                    v_producer[vm_index] = slot
                    v_consumers_arrived[vm_index] = 0
                else:
                    v_producer[vm_index] = -1
                    v_consumers_arrived[vm_index] = 1
                # The very first access to an address never waits.
                ready_count += 1
                append((True, vm_index, -1))
            elif writes:
                # A writer opens a new version chained after the latest
                # live one; it always waits (WAW/WAR ordering).
                if not vm_free:
                    stats.vm_full_stalls += 1
                    stall_reason = StallReason.VM_FULL
                    break
                previous = dm_latest[way]
                vm_index = vm_free.pop()
                v_valid[vm_index] = True
                v_address[vm_index] = address
                v_producer[vm_index] = slot
                v_producer_finished[vm_index] = False
                v_last_consumer[vm_index] = -1
                v_consumers_arrived[vm_index] = 0
                v_consumers_finished[vm_index] = 0
                v_next_version[vm_index] = -1
                v_dm_handle[vm_index] = way
                vm._total_allocations += 1
                occupied = vm_entries - len(vm_free)
                if occupied > vm._high_water:
                    vm._high_water = occupied
                stats.vm_allocations += 1
                v_next_version[previous] = vm_index
                dm_latest[way] = vm_index
                dm_live[way] += 1
                dm_input_only[way] = False
                dm_access[way] += 1
                append((False, vm_index, -1))
            else:
                # A reader joins the latest live version of the address.
                vm_index = dm_latest[way]
                dm_access[way] += 1
                v_consumers_arrived[vm_index] += 1
                if v_producer[vm_index] < 0 or v_producer_finished[vm_index]:
                    ready_count += 1
                    append((True, vm_index, -1))
                else:
                    predecessor = v_last_consumer[vm_index]
                    v_last_consumer[vm_index] = slot
                    append((False, vm_index, predecessor))
            blocked.discard(address)
        stored = len(outcomes)
        stats.dependences_processed += stored
        stats.ready_packets += ready_count
        stats.dependent_packets += stored - ready_count
        # Occupancy only grows during insertion, so one watermark check per
        # batch observes the same high water as one per dependence.
        self._update_memory_watermarks()
        return outcomes, stall_reason

    def _record_conflict(self, address: int) -> None:
        """Count a DM conflict the first time an address becomes blocked."""
        self.dm.conflicts += 1
        if address not in self._blocked_addresses:
            self.stats.dm_conflicts += 1
            self._blocked_addresses.add(address)
        self.stats.dm_conflict_stall_cycles += self.config.dm_conflict_stall_cycles

    # ------------------------------------------------------------------
    # finish path (F4)
    # ------------------------------------------------------------------
    def process_finish_run(
        self,
        slots: Sequence[int],
        vm_indices: Sequence[int],
        start: int,
        end: int,
    ) -> List[Tuple[int, int]]:
        """Handle finish notifications ``start:end`` in one pass (F4).

        ``slots``/``vm_indices`` are the parallel sequences a TRS emitted
        from :meth:`~repro.core.trs.TaskReservationStation.handle_finished`.
        Returns the wake-ups of the whole run in release order as
        ``(slot, vm_index)`` pairs -- consumer chains are woken through
        their last consumer, completed versions wake the next producer.
        """
        vm = self.vm
        stats = self.stats
        v_valid = vm._valid
        v_producer = vm._producer
        v_producer_finished = vm._producer_finished
        v_last_consumer = vm._last_consumer
        v_consumers_arrived = vm._consumers_arrived
        v_consumers_finished = vm._consumers_finished
        wakeups: List[Tuple[int, int]] = []
        append = wakeups.append
        finished = 0
        woken = 0
        for index in range(start, end):
            vm_index = vm_indices[index]
            if not v_valid[vm_index]:
                # A stale/duplicate release must name the violated
                # invariant, not corrupt a recycled entry.
                raise KeyError(f"VM entry {vm_index} is not occupied")
            finished += 1
            producer = v_producer[vm_index]
            if (
                producer >= 0
                and not v_producer_finished[vm_index]
                and producer == slots[index]
            ):
                v_producer_finished[vm_index] = True
                last_consumer = v_last_consumer[vm_index]
                if last_consumer >= 0:
                    # Wake the consumer chain starting from the last
                    # consumer (link 1 of Figure 5); the TRS walks the
                    # chain backwards.
                    append((last_consumer, vm_index))
                    woken += 1
            else:
                v_consumers_finished[vm_index] += 1
            if (
                producer < 0 or v_producer_finished[vm_index]
            ) and v_consumers_arrived[vm_index] == v_consumers_finished[vm_index]:
                self._retire_version(vm_index, wakeups)
        stats.finish_packets += finished
        stats.wakeup_packets += woken
        return wakeups

    def _retire_version(
        self, vm_index: int, wakeups: List[Tuple[int, int]]
    ) -> bool:
        """Recycle a completed version, waking the next producer if any.

        Appends the producer wake-up (when the address has a next version)
        to ``wakeups`` and returns whether the DM way was recycled too.
        The DM way handle was cached at allocation; the tag check guards
        the cache against any handle-stability bug.
        """
        dm = self.dm
        vm = self.vm
        way = vm._dm_handle[vm_index]
        address = vm._address[vm_index]
        if way < 0 or dm._tag[way] != address:
            raise RuntimeError(
                f"version {vm_index} refers to address "
                f"{address:#x} which is not in the DM"
            )
        next_version = vm._next_version[vm_index]
        if next_version >= 0:
            producer = vm._producer[next_version]
            if producer < 0:
                raise RuntimeError("chained version without a producer")
            wakeups.append((producer, next_version))
            self.stats.wakeup_packets += 1
        vm.release(vm_index)
        live = dm._live_versions[way] - 1
        dm._live_versions[way] = live
        if live <= 0:
            dm.release_handle(way)
            return True
        return False

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _update_memory_watermarks(self) -> None:
        # Branches instead of max(): this runs once per processed batch
        # and the watermark moves only a handful of times per run.
        stats = self.stats
        dm_occupied = self.dm.occupied
        if dm_occupied > stats.dm_high_water:
            stats.dm_high_water = dm_occupied
        vm_occupied = self.vm.occupied
        if vm_occupied > stats.vm_high_water:
            stats.vm_high_water = vm_occupied

    @property
    def live_addresses(self) -> int:
        """Number of addresses currently tracked by the DM."""
        return self.dm.occupied

    @property
    def live_versions(self) -> int:
        """Number of versions currently stored in the VM."""
        return self.vm.occupied

    def is_idle(self) -> bool:
        """``True`` when no dependence state is live (all chains retired)."""
        return self.dm.occupied == 0 and self.vm.occupied == 0
