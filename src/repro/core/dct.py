"""Dependence Chain Tracker (DCT).

The DCT is the major dependence-management unit of Picos (Section III-A).
It owns one Dependence Memory (DM) and one Version Memory (VM) and
implements the two halves of the operational flow of Section III-B:

new-dependence processing (N5)
    For each dependence of a new task the DCT performs a DM compare.  A miss
    allocates a DM way and a VM version and answers *ready*; a hit attaches
    the dependence to the live version chain of the address and answers
    *ready* or *dependent* depending on whether earlier accesses are still
    pending.

finish processing (F4)
    For each dependence of a finished task the DCT updates the version the
    dependence belonged to, wakes the consumer chain (from the *last*
    consumer) or the next producer version when appropriate, and recycles VM
    and DM entries once a version chain is completely finished.

Structural hazards -- a full DM set (conflict) or a full VM -- are reported
through :class:`DctStall` so the Gateway can hold the new task, exactly like
the prototype stalls its pipeline.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.config import PicosConfig
from repro.core.dependence_memory import DependenceMemory
from repro.core.packets import (
    DependencePacket,
    DependentPacket,
    FinishPacket,
    ReadyPacket,
    TaskSlotRef,
)
from repro.core.stats import PicosStats
from repro.core.version_memory import VersionMemory
from repro.runtime.task import Direction


class StallReason(enum.Enum):
    """Why the DCT could not store a new dependence."""

    DM_CONFLICT = "dm-conflict"
    VM_FULL = "vm-full"
    TM_FULL = "tm-full"


class DctStall(Exception):
    """Raised when a new dependence cannot be stored right now."""

    def __init__(self, reason: StallReason, address: int) -> None:
        super().__init__(f"DCT stall ({reason.value}) on address {address:#x}")
        self.reason = reason
        self.address = address


class DependenceOutcome:
    """Result of processing one new dependence.

    A ``__slots__`` value class: one is allocated per dependence of every
    submitted task.
    """

    __slots__ = ("ready", "vm_index", "predecessor")

    def __init__(
        self,
        ready: bool,
        vm_index: int,
        predecessor: Optional[TaskSlotRef] = None,
    ) -> None:
        #: ``True`` when the dependence is immediately ready.
        self.ready = ready
        #: VM entry (version) the dependence was attached to.
        self.vm_index = vm_index
        #: Consumer-chain predecessor to store in the TMX (waiting consumers
        #: only).
        self.predecessor = predecessor

    def __repr__(self) -> str:
        return (
            f"DependenceOutcome(ready={self.ready}, vm_index={self.vm_index}, "
            f"predecessor={self.predecessor!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependenceOutcome):
            return NotImplemented
        return (
            self.ready == other.ready
            and self.vm_index == other.vm_index
            and self.predecessor == other.predecessor
        )

    def to_packet(self, slot: TaskSlotRef):
        """Render the outcome as the packet the DCT sends to the TRS."""
        if self.ready:
            return ReadyPacket(slot=slot, vm_index=self.vm_index)
        return DependentPacket(
            slot=slot, vm_index=self.vm_index, predecessor=self.predecessor
        )


class FinishOutcome:
    """Result of processing one dependence-release (finish) packet."""

    __slots__ = ("wakeups", "version_released", "address_released")

    def __init__(self) -> None:
        #: Wake-ups produced by this release: consumer chains are woken
        #: through their last consumer; completed versions wake the next
        #: producer.
        self.wakeups: List[ReadyPacket] = []
        #: Whether a VM entry was recycled.
        self.version_released = False
        #: Whether the DM way of the address was recycled (chain fully
        #: finished).
        self.address_released = False

    def __repr__(self) -> str:
        return (
            f"FinishOutcome(wakeups={self.wakeups!r}, "
            f"version_released={self.version_released}, "
            f"address_released={self.address_released})"
        )


class DependenceChainTracker:
    """One DCT instance: DM + VM plus the chain-tracking control logic."""

    def __init__(
        self,
        dct_id: int,
        config: PicosConfig,
        stats: Optional[PicosStats] = None,
    ) -> None:
        self.dct_id = dct_id
        self.config = config
        self.stats = stats if stats is not None else PicosStats()
        self.dm = DependenceMemory(config.dm_design, config.dm_sets)
        self.vm = VersionMemory(config.effective_vm_entries)
        #: Addresses whose insertion is currently blocked on a conflict;
        #: used to avoid double-counting conflicts across retries.
        self._blocked_addresses: set[int] = set()

    # ------------------------------------------------------------------
    # new-dependence path (N5)
    # ------------------------------------------------------------------
    def can_accept(self, address: int, direction: Direction) -> bool:
        """Check whether a dependence on ``address`` could be stored now.

        Used by the Gateway to decide whether to resume a stalled
        submission without paying for a failed attempt.
        """
        way = self.dm.find_way(address)
        if way is not None:
            if direction.writes:
                return not self.vm.full
            return True
        if self.dm.set_is_full(self.dm.set_index(address)):
            return False
        return not self.vm.full

    def process_dependence(self, packet: DependencePacket) -> DependenceOutcome:
        """Handle one new dependence; may raise :class:`DctStall`."""
        address = packet.address
        direction = packet.direction
        slot = packet.slot
        way = self.dm.find_way(address)

        if way is None:
            outcome = self._insert_first_access(slot, address, direction)
        elif direction.writes:
            outcome = self._attach_producer(slot, address, way)
        else:
            outcome = self._attach_consumer(slot, way)

        self._blocked_addresses.discard(address)
        self.stats.dependences_processed += 1
        if outcome.ready:
            self.stats.ready_packets += 1
        else:
            self.stats.dependent_packets += 1
        self._update_memory_watermarks()
        return outcome

    def _insert_first_access(
        self, slot: TaskSlotRef, address: int, direction: Direction
    ) -> DependenceOutcome:
        """First live access to an address: allocate DM way + first version."""
        set_index = self.dm.set_index(address)
        if self.dm.set_is_full(set_index):
            self._record_conflict(address)
            raise DctStall(StallReason.DM_CONFLICT, address)
        if self.vm.full:
            self.stats.vm_full_stalls += 1
            raise DctStall(StallReason.VM_FULL, address)
        _, way = self.dm.allocate(address, input_only=not direction.writes)
        version = self.vm.allocate(address)
        self.stats.dm_allocations += 1
        self.stats.vm_allocations += 1
        way.latest_vm_index = version.vm_index
        way.live_versions = 1
        way.access_count = 1
        if direction.writes:
            version.producer = slot
        else:
            version.consumers_arrived = 1
        # The very first access to an address never waits.
        return DependenceOutcome(ready=True, vm_index=version.vm_index)

    def _attach_consumer(self, slot: TaskSlotRef, way) -> DependenceOutcome:
        """A reader joins the latest live version of an address."""
        assert way.latest_vm_index is not None
        version = self.vm.entry(way.latest_vm_index)
        way.access_count += 1
        version.consumers_arrived += 1
        if version.readers_ready:
            # The producer already finished (or never existed): the reader
            # may execute immediately.
            return DependenceOutcome(ready=True, vm_index=version.vm_index)
        predecessor = version.last_consumer
        version.last_consumer = slot
        return DependenceOutcome(
            ready=False, vm_index=version.vm_index, predecessor=predecessor
        )

    def _attach_producer(self, slot: TaskSlotRef, address: int, way) -> DependenceOutcome:
        """A writer opens a new version chained after the latest live one."""
        if self.vm.full:
            self.stats.vm_full_stalls += 1
            raise DctStall(StallReason.VM_FULL, address)
        assert way.latest_vm_index is not None
        previous = self.vm.entry(way.latest_vm_index)
        version = self.vm.allocate(address)
        self.stats.vm_allocations += 1
        version.producer = slot
        previous.next_version = version.vm_index
        way.latest_vm_index = version.vm_index
        way.live_versions += 1
        way.input_only = False
        way.access_count += 1
        # A writer behind a live version always waits: the previous version
        # still has unfinished accesses (otherwise it would have been
        # recycled already) and the hardware honours WAW/WAR ordering.
        return DependenceOutcome(ready=False, vm_index=version.vm_index)

    def _record_conflict(self, address: int) -> None:
        """Count a DM conflict the first time an address becomes blocked."""
        self.dm.conflicts += 1
        if address not in self._blocked_addresses:
            self.stats.dm_conflicts += 1
            self._blocked_addresses.add(address)
        self.stats.dm_conflict_stall_cycles += self.config.dm_conflict_stall_cycles

    # ------------------------------------------------------------------
    # finish path (F4)
    # ------------------------------------------------------------------
    def process_finish(self, packet: FinishPacket) -> FinishOutcome:
        """Handle the release of one dependence of a finished task."""
        outcome = FinishOutcome()
        version = self.vm.entry(packet.vm_index)
        self.stats.finish_packets += 1

        is_producer_finish = (
            version.producer is not None
            and not version.producer_finished
            and version.producer == packet.slot
        )
        if is_producer_finish:
            version.producer_finished = True
            if version.last_consumer is not None:
                # Wake the consumer chain starting from the last consumer
                # (link 1 of Figure 5); the TRS walks the chain backwards.
                outcome.wakeups.append(
                    ReadyPacket(slot=version.last_consumer, vm_index=version.vm_index)
                )
                self.stats.wakeup_packets += 1
        else:
            version.consumers_finished += 1

        if version.complete:
            self._retire_version(version, outcome)
        return outcome

    def _retire_version(self, version, outcome: FinishOutcome) -> None:
        """Recycle a completed version, waking the next producer if any."""
        way = self.dm.find_way(version.address)
        if way is None:
            raise RuntimeError(
                f"version {version.vm_index} refers to address "
                f"{version.address:#x} which is not in the DM"
            )
        if version.next_version is not None:
            next_version = self.vm.entry(version.next_version)
            if next_version.producer is None:
                raise RuntimeError("chained version without a producer")
            outcome.wakeups.append(
                ReadyPacket(
                    slot=next_version.producer, vm_index=next_version.vm_index
                )
            )
            self.stats.wakeup_packets += 1
        self.vm.release(version.vm_index)
        outcome.version_released = True
        way.live_versions -= 1
        if way.live_versions <= 0:
            self.dm.release(version.address)
            outcome.address_released = True

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _update_memory_watermarks(self) -> None:
        # Branches instead of max(): this runs once per processed dependence
        # and the watermark moves only a handful of times per run.
        stats = self.stats
        dm_occupied = self.dm.occupied
        if dm_occupied > stats.dm_high_water:
            stats.dm_high_water = dm_occupied
        vm_occupied = self.vm.occupied
        if vm_occupied > stats.vm_high_water:
            stats.vm_high_water = vm_occupied

    @property
    def live_addresses(self) -> int:
        """Number of addresses currently tracked by the DM."""
        return self.dm.occupied

    @property
    def live_versions(self) -> int:
        """Number of versions currently stored in the VM."""
        return self.vm.occupied

    def is_idle(self) -> bool:
        """``True`` when no dependence state is live (all chains retired)."""
        return self.dm.occupied == 0 and self.vm.occupied == 0
