"""OmpSs-side runtime substrate.

This subpackage models everything that lives on the *software* side of the
system the paper evaluates:

* :mod:`repro.runtime.task` -- the task / dependence abstraction shared by
  every simulator in the package (the information a ``#pragma omp task``
  annotation conveys to the runtime).
* :mod:`repro.runtime.dependence_analysis` -- exact software dependence
  analysis (last-writer / reader-set semantics), used both as the reference
  model the hardware must agree with and as the graph builder for the
  Perfect and Nanos++ simulators.
* :mod:`repro.runtime.overhead` -- the Nanos++ per-task creation and
  submission overhead model of Figure 10.
* :mod:`repro.runtime.nanos` -- the Nanos++ software-only runtime simulator
  used as the paper's baseline.
* :mod:`repro.runtime.perfect` -- the Perfect (roofline) simulator.

``NanosRuntimeSimulator`` and ``PerfectScheduler`` are re-exported lazily
(they depend on :mod:`repro.sim`, which in turn depends on
:mod:`repro.core`; loading them eagerly here would create an import cycle
when the core package pulls in the task model).
"""

from repro.runtime.task import Dependence, Direction, Task, TaskProgram
from repro.runtime.dependence_analysis import (
    DependenceAnalyzer,
    TaskGraph,
    build_task_graph,
)
from repro.runtime.overhead import NanosOverheadModel

__all__ = [
    "Dependence",
    "Direction",
    "Task",
    "TaskProgram",
    "DependenceAnalyzer",
    "TaskGraph",
    "build_task_graph",
    "NanosOverheadModel",
    "NanosRuntimeSimulator",
    "PerfectScheduler",
]


def __getattr__(name: str):
    """Lazily expose the simulators that depend on :mod:`repro.sim`."""
    if name == "NanosRuntimeSimulator":
        from repro.runtime.nanos import NanosRuntimeSimulator

        return NanosRuntimeSimulator
    if name == "PerfectScheduler":
        from repro.runtime.perfect import PerfectScheduler

        return PerfectScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
