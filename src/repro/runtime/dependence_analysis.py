"""Exact software dependence analysis (the reference model).

Nanos++ performs dynamic dependence analysis at task-submission time: for
every dependence address it keeps the last writer and the set of readers
since that writer, and derives the predecessor tasks the new task must wait
for (Section II-A).  The Picos hardware implements the same semantics with
the DM/VM/TMX chain mechanism of Section III.

This module implements those semantics directly on a :class:`TaskProgram`.
It serves three purposes:

* it is the graph builder for the Perfect (roofline) scheduler and the
  Nanos++ software-only model;
* it is the *reference* against which the hardware model is validated
  (property-based tests assert that the set of predecessor/successor
  relations realised by the Picos chain mechanism matches this analysis);
* it provides graph metrics (critical path, maximum parallelism) used by the
  experiment drivers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.runtime.task import Task, TaskProgram


@dataclass
class TaskGraph:
    """An explicit task dependence graph.

    ``predecessors[t]`` is the set of task ids that must finish before task
    ``t`` may start; ``successors`` is the inverse relation.  Tasks with no
    predecessors are ready at program start.
    """

    num_tasks: int
    predecessors: Dict[int, Set[int]] = field(default_factory=dict)
    successors: Dict[int, Set[int]] = field(default_factory=dict)
    durations: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for task_id in range(self.num_tasks):
            self.predecessors.setdefault(task_id, set())
            self.successors.setdefault(task_id, set())
            self.durations.setdefault(task_id, 1)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int) -> None:
        """Add a dependence edge ``src -> dst`` (``dst`` waits for ``src``)."""
        if src == dst:
            return
        self.predecessors[dst].add(src)
        self.successors[src].add(dst)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Total number of dependence edges."""
        return sum(len(preds) for preds in self.predecessors.values())

    def roots(self) -> List[int]:
        """Tasks with no predecessors (ready at program start)."""
        return [t for t in range(self.num_tasks) if not self.predecessors[t]]

    def edges(self) -> List[Tuple[int, int]]:
        """All edges as ``(src, dst)`` pairs."""
        result: List[Tuple[int, int]] = []
        for dst, preds in self.predecessors.items():
            for src in preds:
                result.append((src, dst))
        return result

    def topological_order(self) -> List[int]:
        """Return the tasks in a topological order.

        Because edges always point from an earlier-created task to a
        later-created one (program order is a valid serialisation), creation
        order itself is a topological order; this method validates that
        property and returns it.
        """
        for dst, preds in self.predecessors.items():
            for src in preds:
                if src >= dst:
                    raise ValueError(
                        f"edge {src}->{dst} violates program-order topology"
                    )
        return list(range(self.num_tasks))

    def critical_path_length(self) -> int:
        """Length (in cycles) of the longest dependence chain.

        This is the makespan an ideal machine with infinitely many workers
        and zero management overhead would achieve -- the asymptote of the
        paper's Perfect Simulator.
        """
        finish: Dict[int, int] = {}
        for task_id in self.topological_order():
            start = 0
            for pred in self.predecessors[task_id]:
                start = max(start, finish[pred])
            finish[task_id] = start + self.durations[task_id]
        return max(finish.values()) if finish else 0

    def max_parallelism(self) -> float:
        """Average available parallelism: total work / critical path."""
        cp = self.critical_path_length()
        if cp == 0:
            return 0.0
        total = sum(self.durations.values())
        return total / cp

    def level_widths(self) -> List[int]:
        """Number of tasks per dependence level (depth in the DAG).

        Level 0 contains the root tasks; level ``k`` contains tasks whose
        longest predecessor chain has ``k`` edges.  Useful to characterise
        wavefront-style applications in tests.
        """
        level: Dict[int, int] = {}
        for task_id in self.topological_order():
            preds = self.predecessors[task_id]
            level[task_id] = 0 if not preds else 1 + max(level[p] for p in preds)
        widths: Dict[int, int] = defaultdict(int)
        for depth in level.values():
            widths[depth] += 1
        return [widths[d] for d in range(max(widths) + 1)] if widths else []


class DependenceAnalyzer:
    """Incremental last-writer / reader-set dependence analysis.

    The analyzer is fed tasks one at a time, in creation order, exactly as
    the Nanos++ submission path would see them, and reports for each new
    task the set of predecessor tasks it must wait for.

    The OmpSs rules implemented here (and by the Picos hardware) are:

    * an ``input`` dependence waits for the last writer of the address (RAW);
    * an ``output`` or ``inout`` dependence waits for the last writer *and*
      for every reader that arrived since that writer (WAW + WAR -- the
      hardware does not rename versions to distinct storage, so
      anti-dependences are honoured rather than removed).
    """

    def __init__(self) -> None:
        self._last_writer: Dict[int, Optional[int]] = {}
        self._readers_since_writer: Dict[int, List[int]] = {}
        self._predecessors: Dict[int, Set[int]] = {}

    def submit(self, task: Task) -> FrozenSet[int]:
        """Analyse ``task`` and return the ids of its predecessor tasks."""
        preds: Set[int] = set()
        for dep in task.dependences:
            address = dep.address
            writer = self._last_writer.get(address)
            readers = self._readers_since_writer.setdefault(address, [])
            if dep.direction.reads and not dep.direction.writes:
                # Pure input: wait for the last writer only.
                if writer is not None:
                    preds.add(writer)
            else:
                # output / inout: wait for the last writer and all readers.
                if writer is not None:
                    preds.add(writer)
                preds.update(readers)
            # Update the address state *after* computing the predecessors.
            if dep.direction.writes:
                self._last_writer[address] = task.task_id
                self._readers_since_writer[address] = []
            elif dep.direction.reads:
                readers.append(task.task_id)
        preds.discard(task.task_id)
        self._predecessors[task.task_id] = preds
        return frozenset(preds)

    def predecessors(self, task_id: int) -> FrozenSet[int]:
        """Predecessor set of an already-submitted task."""
        return frozenset(self._predecessors[task_id])


def build_task_graph(program: TaskProgram) -> TaskGraph:
    """Build the explicit :class:`TaskGraph` of ``program``.

    The graph encodes exactly the inter-task synchronisation that both the
    Nanos++ runtime and the Picos hardware must enforce for the program.
    """
    graph = TaskGraph(num_tasks=program.num_tasks)
    analyzer = DependenceAnalyzer()
    for task in program:
        graph.durations[task.task_id] = task.duration
        for pred in analyzer.submit(task):
            graph.add_edge(pred, task.task_id)
    return graph


def ready_order_is_valid(program: TaskProgram, start_order: Sequence[int]) -> bool:
    """Check that ``start_order`` respects every dependence of ``program``.

    ``start_order`` lists task ids in the order they *started executing* in
    some simulation.  The function returns ``True`` when no task starts
    before all of its predecessors appear earlier in the order.  It is the
    main cross-simulator correctness oracle used by the test suite.
    """
    graph = build_task_graph(program)
    position = {task_id: index for index, task_id in enumerate(start_order)}
    if len(position) != program.num_tasks:
        return False
    for dst, preds in graph.predecessors.items():
        for src in preds:
            if position[src] >= position[dst]:
                return False
    return True
