"""Nanos++ software-only runtime simulator (the paper's baseline).

The OmpSs software-only implementation performs task creation, dependence
analysis, scheduling and dependence release entirely in software.  Its
per-task overhead is essentially independent of the task duration, which is
why Figure 1 shows speedup collapsing once task granularity shrinks below
the point where the overhead rivals the task body.

The model implemented here is a discrete-event simulation with the
structure of the Nanos++ runtime:

* a *master* thread creates and submits tasks in program order, paying the
  creation + submission overhead of :class:`~repro.runtime.overhead.
  NanosOverheadModel` for each (this work is serial: it is the thread that
  encounters the task pragmas);
* the master thread is one of the ``num_threads`` threads of the team: while
  it is creating tasks it does not execute them, and once the last task has
  been submitted it joins the workers (this matches Nanos++ with its default
  breadth-first creation on the benchmarks of the paper, which create all
  their tasks from one master);
* worker threads pick ready tasks, paying a scheduler pick-up cost, execute
  the task body for its traced duration, and pay a dependence-release cost
  per dependence when it finishes;
* a task is ready when the master has submitted it *and* all its
  predecessors (from exact dependence analysis) have finished and released
  their dependences.

The simulator follows the same resumable shape as the HIL platform
(:class:`repro.sim.hil.HILSimulator`): the one-time setup -- creation
pre-scheduling and worker-pool initialisation -- is gated behind a
``_prepared`` flag, ``step(stop_at_cycle)`` advances the event loop to a
horizon and may be called repeatedly, and all mutable state lives on the
instance, so sliced sessions (:class:`~repro.sim.session.EngineStepper`)
and the snapshot codec (:mod:`repro.sim.snapshot`) work over it unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.runtime.dependence_analysis import TaskGraph, build_task_graph
from repro.runtime.overhead import NanosOverheadModel
from repro.runtime.task import TaskProgram
from repro.sim.backend import BACKEND_NANOS, register_backend
from repro.sim.engine import EventQueue
from repro.sim.results import SimulationResult, TaskTimeline
from repro.sim.session import EngineStepper

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import ArmedFault, FaultPlan
    from repro.faults.scenario import FaultScenario

_EV_SUBMITTED = "submitted"
_EV_TASK_DONE = "task-done"
_EV_MASTER_JOINS = "master-joins"

# lifecycle-log entry orders, matching repro.sim.session._EVENT_ORDER (see
# repro.sim.hil for the contract shared by every sliced simulator).
_LOG_SUBMITTED = 0
_LOG_READY = 1
_LOG_RETIRED = 2


class NanosRuntimeSimulator:
    """Discrete-event model of the Nanos++ software-only runtime."""

    def __init__(
        self,
        program: TaskProgram,
        num_threads: int = 12,
        overhead: Optional[NanosOverheadModel] = None,
        batch_completions: bool = True,
        faults: Sequence["FaultScenario"] = (),
    ) -> None:
        if num_threads < 1:
            raise ValueError("at least one thread is required")
        self.program = program
        self.num_threads = num_threads
        self.overhead = overhead if overhead is not None else NanosOverheadModel()
        self.graph: TaskGraph = build_task_graph(program)
        #: Drain runs of same-cycle task completions in one handler
        #: activation; ``False`` selects the reference event-per-event loop
        #: the optimized path is parity-checked against.
        self.batch_completions = batch_completions

        self.queue = EventQueue()
        self._timelines: Dict[int, TaskTimeline] = {}
        #: Optional lifecycle log of ``(cycle, order, task_id)`` entries,
        #: appended at the submitted/ready/finished stamp sites (the same
        #: contract as the HIL simulator's log: once the clock passed a
        #: horizon ``H``, entries stamped at or before ``H`` are final --
        #: submissions are stamped during the one-time setup and the
        #: finished stamp is assigned at dispatch time, strictly after the
        #: dispatching event's cycle).
        self._lifecycle_log: Optional[List[Tuple[int, int, int]]] = None
        #: ``run``/``step`` gate the one-time setup (creation pre-scheduling
        #: and worker-pool initialisation) behind this flag so repeated
        #: calls *resume* dispatching instead of resetting state.
        self._prepared = False
        self._master_joins_at = 0
        self._idle_workers: List[int] = []
        self._remaining_preds: Dict[int, int] = {}
        self._submitted: Dict[int, bool] = {}
        self._ready_pool: Deque[int] = deque()  # FIFO by readiness
        self._finished = 0
        self._makespan = 0

        #: Armed fault-injection plan, or ``None`` (the common case).
        #: Armed runs force the reference completion loop: the batched
        #: drain bypasses per-event dispatch (and so the injection layer)
        #: via ``pop_same_kind``, and the loops are parity-pinned
        #: cycle-identical, so this changes no observable quantity.
        self._fault_plan: Optional["FaultPlan"] = None
        if faults:
            from repro.faults.plan import FaultPlan

            self.batch_completions = False
            self._fault_plan = FaultPlan(tuple(faults), _NANOS_FAULT_ADAPTER, self)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(self, stop_at_cycle: Optional[int] = None) -> SimulationResult:
        """Execute the program and return the software-only result.

        With ``stop_at_cycle`` the event loop pauses once the simulated
        clock would pass that cycle (the result then covers only the work
        performed up to the horizon); calling ``run`` again resumes from
        there.  Without a horizon the program must run to completion.
        """
        self.step(stop_at_cycle)
        return self._build_result(aborted_at=stop_at_cycle)

    def step(self, stop_at_cycle: Optional[int] = None) -> None:
        """Advance the simulation, without building a result.

        The one-time setup runs on the first call only; every later call
        continues dispatching queued events up to the (larger) horizon.
        ``queue.empty`` after a step means the run is complete.
        """
        if not self._prepared:
            self._prepared = True
            self._prepare()
            if self._fault_plan is not None:
                self._fault_plan.arm(0)
        # Precomputed handler table instead of a string-comparison ladder;
        # this loop delivers one event per task submission and completion.
        # The table is consumed by the engine's shared dispatch loop, the
        # same one driving the HIL simulator (see repro.sim.engine).
        handlers = {
            _EV_SUBMITTED: self._on_submitted,
            _EV_MASTER_JOINS: self._on_master_joins,
            _EV_TASK_DONE: (
                self._on_task_done_batched
                if self.batch_completions
                else self._on_task_done
            ),
        }
        if self._fault_plan is not None:
            handlers = self._fault_plan.wrap(handlers)
        self.queue.dispatch(handlers, horizon=stop_at_cycle)

    def enable_lifecycle_log(self) -> List[Tuple[int, int, int]]:
        """Record ``(cycle, order, task_id)`` at every lifecycle stamp site.

        Must be called before the first ``run``/``step``.  The returned
        list is live: entries accumulate as the simulation advances.
        """
        if self._prepared:
            raise RuntimeError("enable_lifecycle_log() must precede the first run")
        if self._lifecycle_log is None:
            self._lifecycle_log = []
        return self._lifecycle_log

    def _prepare(self) -> None:
        """One-time setup: pre-schedule the serial master, seed the pool."""
        program = self.program
        queue = self.queue
        timelines = self._timelines
        log = self._lifecycle_log
        for task in program:
            timelines[task.task_id] = TaskTimeline(task_id=task.task_id)

        # --- master thread: serial creation + submission -------------
        creation_clock = 0
        for task in program:
            overhead = self.overhead.creation_and_submission(
                task.num_dependences, self.num_threads
            )
            timelines[task.task_id].created = creation_clock
            creation_clock += overhead
            timelines[task.task_id].submitted = creation_clock
            if log is not None:
                log.append((creation_clock, _LOG_SUBMITTED, task.task_id))
            queue.schedule(creation_clock, _EV_SUBMITTED, task.task_id)
        self._master_joins_at = creation_clock
        queue.schedule(creation_clock, _EV_MASTER_JOINS)

        # --- worker pool ----------------------------------------------
        # While the master is creating tasks, only num_threads - 1 threads
        # execute; the master joins afterwards.  With a single thread the
        # master executes everything after it finished creating.
        initial_workers = max(self.num_threads - 1, 0)
        self._idle_workers = list(range(initial_workers))
        if self.num_threads == 1:
            self._idle_workers = []

        self._remaining_preds = {
            task_id: len(preds)
            for task_id, preds in self.graph.predecessors.items()
        }
        self._submitted = {task.task_id: False for task in program}

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _try_dispatch(self, now: int) -> None:
        idle_workers = self._idle_workers
        ready_pool = self._ready_pool
        timelines = self._timelines
        log = self._lifecycle_log
        makespan = self._makespan
        while idle_workers and ready_pool:
            worker = idle_workers.pop()
            task_id = ready_pool.popleft()
            task = self.program.task(task_id)
            pickup = self.overhead.worker_pickup_cycles(self.num_threads)
            release = self.overhead.release_cycles(
                task.num_dependences, self.num_threads
            )
            start = now + pickup
            finish = start + task.duration
            timelines[task_id].started = start
            timelines[task_id].finished = finish
            if log is not None:
                log.append((finish, _LOG_RETIRED, task_id))
            if finish > makespan:
                makespan = finish
            self.queue.schedule(finish + release, _EV_TASK_DONE, (worker, task_id))
        self._makespan = makespan

    def _mark_ready_if_possible(self, task_id: int, now: int) -> None:
        if self._submitted[task_id] and self._remaining_preds[task_id] == 0:
            self._timelines[task_id].ready = now
            if self._lifecycle_log is not None:
                self._lifecycle_log.append((now, _LOG_READY, task_id))
            self._ready_pool.append(task_id)

    def _on_submitted(self, task_id: int, now: int) -> None:
        self._submitted[task_id] = True
        self._mark_ready_if_possible(task_id, now)
        self._try_dispatch(now)

    def _on_master_joins(self, _payload: object, now: int) -> None:
        self._idle_workers.append(self.num_threads - 1)
        self._try_dispatch(now)

    def _on_task_done(self, payload: Tuple[int, int], now: int) -> None:
        """Reference handler: one task completion per engine event."""
        worker, task_id = payload
        self._finished += 1
        self._idle_workers.append(worker)
        for successor in self.graph.successors[task_id]:
            self._remaining_preds[successor] -= 1
            self._mark_ready_if_possible(successor, now)
        self._try_dispatch(now)

    def _on_task_done_batched(self, payload: Tuple[int, int], now: int) -> None:
        # Drain the run of completions scheduled for this cycle in one
        # activation: release order, readiness order and the ready-pool
        # FIFO are exactly those of the one-at-a-time loop, so the
        # schedule stays cycle-identical; only the single dispatch pass
        # at the end is shared.
        idle_workers = self._idle_workers
        remaining_preds = self._remaining_preds
        successors = self.graph.successors
        pop_same_kind = self.queue.pop_same_kind
        finished = self._finished
        while True:
            worker, task_id = payload
            finished += 1
            idle_workers.append(worker)
            for successor in successors[task_id]:
                remaining_preds[successor] -= 1
                self._mark_ready_if_possible(successor, now)
            nxt = pop_same_kind(_EV_TASK_DONE, now)
            if nxt is None:
                break
            payload = nxt.payload
        self._finished = finished
        self._try_dispatch(now)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _build_result(self, aborted_at: Optional[int] = None) -> SimulationResult:
        program = self.program
        aborted = self._finished != program.num_tasks
        if aborted and aborted_at is None:
            raise RuntimeError(
                f"Nanos++ simulation finished {self._finished} of "
                f"{program.num_tasks} tasks (deadlock?)"
            )
        if aborted and aborted_at is not None:
            # Tasks dispatched but not yet retired carry future finish
            # stamps; only bodies done by the horizon count.
            horizon = aborted_at
            makespan = max(
                (
                    t.finished
                    for t in self._timelines.values()
                    if t.finished and t.finished <= horizon
                ),
                default=0,
            )
        else:
            makespan = self._makespan
        counters: Dict[str, int] = {
            "master_creation_cycles": self._master_joins_at,
            "threads": self.num_threads,
            "events_processed": self.queue.processed,
        }
        if aborted and aborted_at is not None:
            counters["aborted_at_cycle"] = aborted_at
            counters["finished_tasks"] = self._finished
        plan = self._fault_plan
        if plan is not None:
            counters["faults_injected"] = plan.injected
            counters["faults_recovered"] = plan.recovered
            if not aborted:
                plan.verify()
        return SimulationResult(
            simulator="nanos-software",
            program_name=program.name,
            num_workers=self.num_threads,
            makespan=makespan,
            sequential_cycles=program.sequential_cycles,
            num_tasks=program.num_tasks,
            timelines=self._timelines,
            counters=counters,
            drain_time=self.queue.now,
        )


class _NanosFaultAdapter:
    """Backend specifics of fault injection for the software runtime.

    Duck-typed protocol documented in :mod:`repro.faults.plan`.  The
    Nanos kill semantics differ from the HIL platform's: the runtime
    forward-dates finish stamps at dispatch, so a dead thread cannot
    abandon its task mid-body.  Instead the thread *dies after finishing
    the work it already holds* (it is pulled from the idle pool, or
    watched until its in-flight completion lands) and a replacement
    thread joins the team after the scenario's recovery delay.
    """

    family = "nanos"
    # The class vocabulary is shared across backends so one scenario is
    # portable: "ready" is the task-arrival packet (the HIL platform's
    # task-visible message; here the master's submission event).
    packet_classes = {
        "ready": _EV_SUBMITTED,
        "complete": _EV_TASK_DONE,
        "master": _EV_MASTER_JOINS,
    }
    default_packet_class = "ready"
    completion_kind = _EV_TASK_DONE

    def task_id_of(self, kind: str, payload: object) -> int:
        if kind == _EV_SUBMITTED:
            return int(payload)  # type: ignore[call-overload]
        if kind == _EV_TASK_DONE:
            return payload[1]  # type: ignore[index]
        return -1

    def worker_count(self, sim: NanosRuntimeSimulator) -> int:
        # The master slot (num_threads - 1) is never killable: it is the
        # thread encountering the task pragmas, not a pool worker.
        return max(sim.num_threads - 1, 0)

    def stall_counters(self, sim: NanosRuntimeSimulator) -> Dict[str, int]:
        return {}  # the software runtime has no hardware stall counters

    def timelines_of(
        self, sim: NanosRuntimeSimulator
    ) -> Dict[int, TaskTimeline]:
        return sim._timelines

    def kill_worker(
        self,
        sim: NanosRuntimeSimulator,
        plan: "FaultPlan",
        armed: "ArmedFault",
        now: int,
    ) -> None:
        from repro.faults.payloads import TIMER_REJOIN

        worker = armed.scenario.target.worker_id
        assert worker is not None  # enforced by the scenario schema
        if worker in sim._idle_workers:
            # Idle thread: dies on the spot, replacement joins later.
            sim._idle_workers.remove(worker)
            plan.record_injected(now, -1, armed)
            plan.schedule_timer(
                armed, now + plan.recovery_delay(armed), TIMER_REJOIN, worker
            )
        else:
            # Executing: watch for its in-flight completion; the thread
            # dies once the work it already holds is finished.
            armed.watching = worker
            plan.record_injected(now, -1, armed)

    def rejoin_worker(
        self,
        sim: NanosRuntimeSimulator,
        plan: "FaultPlan",
        armed: "ArmedFault",
        worker: Optional[int],
        now: int,
    ) -> None:
        assert worker is not None  # the kill path always carries the slot
        sim._idle_workers.append(worker)
        plan.record_recovered(now, -1, armed)
        sim._try_dispatch(now)

    def intercept_completion(
        self,
        sim: NanosRuntimeSimulator,
        plan: "FaultPlan",
        armed: "ArmedFault",
        payload: Tuple[int, int],
        now: int,
    ) -> bool:
        """Retire the watched thread's final completion, minus the rejoin.

        The reference handler appends the worker back to the idle pool
        *before* its dispatch pass, and the pool is popped LIFO -- so a
        post-delivery removal would be too late: the dying thread would
        pick up the next ready task first.  Instead the watched thread's
        completion is handled here, mirroring
        :meth:`NanosRuntimeSimulator._on_task_done` except that the
        thread exits instead of rejoining (armed runs always use the
        reference completion loop, so this is the only handler to
        mirror).  The task itself still retires normally: Nanos never
        loses work, the team just shrinks until the replacement joins.
        """
        from repro.faults.payloads import TIMER_REJOIN

        worker, task_id = payload
        if armed.watching != worker:
            return False
        sim._finished += 1
        for successor in sim.graph.successors[task_id]:
            sim._remaining_preds[successor] -= 1
            sim._mark_ready_if_possible(successor, now)
        sim._try_dispatch(now)
        armed.watching = None
        plan.schedule_timer(
            armed, now + plan.recovery_delay(armed), TIMER_REJOIN, worker
        )
        return True

    def completion_delivered(
        self,
        sim: NanosRuntimeSimulator,
        plan: "FaultPlan",
        armed: "ArmedFault",
        payload: Tuple[int, int],
        now: int,
    ) -> None:
        return None  # the kill bookkeeping is fully pre-delivery here


_NANOS_FAULT_ADAPTER = _NanosFaultAdapter()


def nanos_speedup(
    program: TaskProgram,
    num_threads: int,
    overhead: Optional[NanosOverheadModel] = None,
) -> float:
    """Convenience helper: software-only speedup for one configuration."""
    return NanosRuntimeSimulator(program, num_threads, overhead).run().speedup


# ----------------------------------------------------------------------
# backend registration
# ----------------------------------------------------------------------
class NanosBackend:
    """Simulator backend wrapping :class:`NanosRuntimeSimulator`.

    ``num_workers`` maps to the runtime's thread-team size.  A Picos
    configuration or scheduling policy in a request is rejected by the
    typed API (the software runtime has neither); the legacy
    ``simulate_program`` shim warns and drops them instead.
    """

    name = BACKEND_NANOS
    description = "Nanos++ software-only runtime (the paper's baseline)"
    #: The software runtime has no Picos configuration or hardware policy;
    #: the overhead-model override and fault scenarios are the only
    #: meaningful request parameters.
    accepts = frozenset({"overhead", "faults"})

    def open_session(self, request):  # type: ignore[no-untyped-def]
        """Streaming session over the software runtime model."""
        from repro.sim.session import SimulationSession

        return SimulationSession(self, request)

    def make_stepper(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        overhead: Optional[NanosOverheadModel] = None,
        faults: Sequence["FaultScenario"] = (),
        **kwargs: object,
    ) -> EngineStepper:
        """A resumable sliced run with the same defaults as :meth:`simulate`."""
        return EngineStepper(
            NanosRuntimeSimulator(
                program,
                num_threads=num_workers,
                overhead=overhead,
                faults=faults,
            )
        )

    def simulate(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        overhead: Optional[NanosOverheadModel] = None,
        faults: Sequence["FaultScenario"] = (),
        **kwargs: object,
    ) -> SimulationResult:
        return NanosRuntimeSimulator(
            program, num_threads=num_workers, overhead=overhead, faults=faults
        ).run()


register_backend(NanosBackend(), replace=True)
