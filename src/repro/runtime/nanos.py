"""Nanos++ software-only runtime simulator (the paper's baseline).

The OmpSs software-only implementation performs task creation, dependence
analysis, scheduling and dependence release entirely in software.  Its
per-task overhead is essentially independent of the task duration, which is
why Figure 1 shows speedup collapsing once task granularity shrinks below
the point where the overhead rivals the task body.

The model implemented here is a discrete-event simulation with the
structure of the Nanos++ runtime:

* a *master* thread creates and submits tasks in program order, paying the
  creation + submission overhead of :class:`~repro.runtime.overhead.
  NanosOverheadModel` for each (this work is serial: it is the thread that
  encounters the task pragmas);
* the master thread is one of the ``num_threads`` threads of the team: while
  it is creating tasks it does not execute them, and once the last task has
  been submitted it joins the workers (this matches Nanos++ with its default
  breadth-first creation on the benchmarks of the paper, which create all
  their tasks from one master);
* worker threads pick ready tasks, paying a scheduler pick-up cost, execute
  the task body for its traced duration, and pay a dependence-release cost
  per dependence when it finishes;
* a task is ready when the master has submitted it *and* all its
  predecessors (from exact dependence analysis) have finished and released
  their dependences.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.runtime.dependence_analysis import TaskGraph, build_task_graph
from repro.runtime.overhead import NanosOverheadModel
from repro.runtime.task import TaskProgram
from repro.sim.backend import BACKEND_NANOS, register_backend
from repro.sim.engine import EventQueue
from repro.sim.results import SimulationResult, TaskTimeline

_EV_SUBMITTED = "submitted"
_EV_TASK_DONE = "task-done"
_EV_MASTER_JOINS = "master-joins"


class NanosRuntimeSimulator:
    """Discrete-event model of the Nanos++ software-only runtime."""

    def __init__(
        self,
        program: TaskProgram,
        num_threads: int = 12,
        overhead: Optional[NanosOverheadModel] = None,
        batch_completions: bool = True,
    ) -> None:
        if num_threads < 1:
            raise ValueError("at least one thread is required")
        self.program = program
        self.num_threads = num_threads
        self.overhead = overhead if overhead is not None else NanosOverheadModel()
        self.graph: TaskGraph = build_task_graph(program)
        #: Drain runs of same-cycle task completions in one handler
        #: activation; ``False`` selects the reference event-per-event loop
        #: the optimized path is parity-checked against.
        self.batch_completions = batch_completions

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the program and return the software-only result."""
        program = self.program
        graph = self.graph
        queue = EventQueue()
        timelines: Dict[int, TaskTimeline] = {
            task.task_id: TaskTimeline(task_id=task.task_id) for task in program
        }

        # --- master thread: serial creation + submission -------------
        creation_clock = 0
        for task in program:
            overhead = self.overhead.creation_and_submission(
                task.num_dependences, self.num_threads
            )
            timelines[task.task_id].created = creation_clock
            creation_clock += overhead
            timelines[task.task_id].submitted = creation_clock
            queue.schedule(creation_clock, _EV_SUBMITTED, task.task_id)
        master_joins_at = creation_clock
        queue.schedule(master_joins_at, _EV_MASTER_JOINS)

        # --- worker pool ----------------------------------------------
        # While the master is creating tasks, only num_threads - 1 threads
        # execute; the master joins afterwards.  With a single thread the
        # master executes everything after it finished creating.
        initial_workers = max(self.num_threads - 1, 0)
        idle_workers: List[int] = list(range(initial_workers))
        if self.num_threads == 1:
            idle_workers = []

        remaining_preds: Dict[int, int] = {
            task_id: len(preds) for task_id, preds in graph.predecessors.items()
        }
        submitted: Dict[int, bool] = {task.task_id: False for task in program}
        ready_pool: Deque[int] = deque()  # FIFO by readiness
        finished = 0
        makespan = 0

        def try_dispatch(now: int) -> None:
            nonlocal makespan
            while idle_workers and ready_pool:
                worker = idle_workers.pop()
                task_id = ready_pool.popleft()
                task = program.task(task_id)
                pickup = self.overhead.worker_pickup_cycles(self.num_threads)
                release = self.overhead.release_cycles(
                    task.num_dependences, self.num_threads
                )
                start = now + pickup
                finish = start + task.duration
                timelines[task_id].started = start
                timelines[task_id].finished = finish
                makespan = max(makespan, finish)
                queue.schedule(finish + release, _EV_TASK_DONE, (worker, task_id))

        def mark_ready_if_possible(task_id: int, now: int) -> None:
            if submitted[task_id] and remaining_preds[task_id] == 0:
                timelines[task_id].ready = now
                ready_pool.append(task_id)

        successors = graph.successors

        def on_submitted(task_id: int, now: int) -> None:
            submitted[task_id] = True
            mark_ready_if_possible(task_id, now)
            try_dispatch(now)

        def on_master_joins(_payload: object, now: int) -> None:
            idle_workers.append(self.num_threads - 1)
            try_dispatch(now)

        def on_task_done(payload, now: int) -> None:
            nonlocal finished
            worker, task_id = payload
            finished += 1
            idle_workers.append(worker)
            for successor in successors[task_id]:
                remaining_preds[successor] -= 1
                mark_ready_if_possible(successor, now)
            try_dispatch(now)

        def on_task_done_batched(payload, now: int) -> None:
            # Drain the run of completions scheduled for this cycle in one
            # activation: release order, readiness order and the ready-pool
            # FIFO are exactly those of the one-at-a-time loop, so the
            # schedule stays cycle-identical; only the single dispatch pass
            # at the end is shared.
            nonlocal finished
            while True:
                worker, task_id = payload
                finished += 1
                idle_workers.append(worker)
                for successor in successors[task_id]:
                    remaining_preds[successor] -= 1
                    mark_ready_if_possible(successor, now)
                nxt = queue.pop_same_kind(_EV_TASK_DONE, now)
                if nxt is None:
                    break
                payload = nxt.payload
            try_dispatch(now)

        # Precomputed handler table instead of a string-comparison ladder;
        # this loop delivers one event per task submission and completion.
        # The table is consumed by the engine's shared dispatch loop, the
        # same one driving the HIL simulator (see repro.sim.engine).
        handlers = {
            _EV_SUBMITTED: on_submitted,
            _EV_MASTER_JOINS: on_master_joins,
            _EV_TASK_DONE: (
                on_task_done_batched if self.batch_completions else on_task_done
            ),
        }
        queue.dispatch(handlers)

        if finished != program.num_tasks:
            raise RuntimeError(
                f"Nanos++ simulation finished {finished} of "
                f"{program.num_tasks} tasks (deadlock?)"
            )

        counters = {
            "master_creation_cycles": master_joins_at,
            "threads": self.num_threads,
            "events_processed": queue.processed,
        }
        return SimulationResult(
            simulator="nanos-software",
            program_name=program.name,
            num_workers=self.num_threads,
            makespan=makespan,
            sequential_cycles=program.sequential_cycles,
            num_tasks=program.num_tasks,
            timelines=timelines,
            counters=counters,
            drain_time=queue.now,
        )


def nanos_speedup(
    program: TaskProgram,
    num_threads: int,
    overhead: Optional[NanosOverheadModel] = None,
) -> float:
    """Convenience helper: software-only speedup for one configuration."""
    return NanosRuntimeSimulator(program, num_threads, overhead).run().speedup


# ----------------------------------------------------------------------
# backend registration
# ----------------------------------------------------------------------
class NanosBackend:
    """Simulator backend wrapping :class:`NanosRuntimeSimulator`.

    ``num_workers`` maps to the runtime's thread-team size.  A Picos
    configuration or scheduling policy in a request is rejected by the
    typed API (the software runtime has neither); the legacy
    ``simulate_program`` shim warns and drops them instead.
    """

    name = BACKEND_NANOS
    description = "Nanos++ software-only runtime (the paper's baseline)"
    #: The software runtime has no Picos configuration or hardware policy;
    #: only the overhead-model override is a meaningful request parameter.
    accepts = frozenset({"overhead"})

    def open_session(self, request):  # type: ignore[no-untyped-def]
        """Streaming session over the software runtime model."""
        from repro.sim.session import SimulationSession

        return SimulationSession(self, request)

    def simulate(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        overhead: Optional[NanosOverheadModel] = None,
        **kwargs: object,
    ) -> SimulationResult:
        return NanosRuntimeSimulator(
            program, num_threads=num_workers, overhead=overhead
        ).run()


register_backend(NanosBackend(), replace=True)
