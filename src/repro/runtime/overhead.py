"""Nanos++ per-task overhead model (Figure 10).

Figure 10 of the paper measures, on the 12-core Xeon machine, the cycles the
Nanos++ runtime spends per task in the software-only implementation:

* *Creation*: allocating and initialising the task work descriptor.  The
  paper notes it is "the same for varied number of dependences"; it grows
  mildly with the number of threads because of allocator and queue
  contention.
* *Submission with x DEPs*: registering the task's dependences in the
  runtime's dependence hash and inserting the task in the scheduler.  This
  grows with the number of dependences and, much faster, with the number of
  threads, because dependence analysis is performed inside a critical
  section that every thread contends for.

The absolute constants below are calibration values chosen so the
software-only behaviour of Figures 1 and 11 is reproduced: with 12 threads
the per-task overhead reaches a few tens of thousands of (Xeon) cycles,
which is what makes Nanos++ collapse when the average task size drops to
the 10^4-10^5 cycle range (Table I, block sizes 64 and 32), while remaining
negligible for the 10^6-10^7 cycle tasks of the large block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class NanosOverheadModel:
    """Analytical model of the Nanos++ task creation / submission overheads.

    All values are in cycles of the machine running the runtime (the paper's
    Xeon E5-2630L).  The model is deliberately simple -- an affine cost in
    the number of dependences, multiplied by a contention factor that grows
    with the number of threads -- because that is the observed shape of
    Figure 10.
    """

    #: Task-creation cost with a single thread.
    creation_base: int = 2500
    #: Relative growth of the creation cost per extra thread.
    creation_contention: float = 0.05
    #: Dependence-independent part of the submission cost (single thread).
    submission_base: int = 1500
    #: Additional submission cost per dependence (single thread).
    submission_per_dep: int = 1200
    #: Relative growth of the submission cost per extra thread (lock and
    #: cache-line contention on the dependence hash).
    submission_contention: float = 0.25
    #: Scheduler cost paid by the worker that picks the task up.
    scheduling_cycles: int = 900
    #: Cost of releasing the task's dependences when it finishes.
    release_per_dep: int = 600

    # ------------------------------------------------------------------
    # Figure 10 quantities
    # ------------------------------------------------------------------
    def creation_cycles(self, num_threads: int) -> int:
        """Per-task creation overhead with ``num_threads`` runtime threads."""
        self._check_threads(num_threads)
        factor = 1.0 + self.creation_contention * (num_threads - 1)
        return int(round(self.creation_base * factor))

    def submission_cycles(self, num_deps: int, num_threads: int) -> int:
        """Per-task submission overhead for a task with ``num_deps`` dependences."""
        self._check_threads(num_threads)
        if num_deps < 0:
            raise ValueError("num_deps must be non-negative")
        base = self.submission_base + self.submission_per_dep * num_deps
        factor = 1.0 + self.submission_contention * (num_threads - 1)
        return int(round(base * factor))

    def creation_and_submission(self, num_deps: int, num_threads: int) -> int:
        """Total master-side overhead per task (creation + submission)."""
        return self.creation_cycles(num_threads) + self.submission_cycles(
            num_deps, num_threads
        )

    # ------------------------------------------------------------------
    # worker-side overheads used by the Nanos++ simulator
    # ------------------------------------------------------------------
    def worker_pickup_cycles(self, num_threads: int) -> int:
        """Cycles a worker spends dequeuing a ready task."""
        self._check_threads(num_threads)
        factor = 1.0 + 0.08 * (num_threads - 1)
        return int(round(self.scheduling_cycles * factor))

    def release_cycles(self, num_deps: int, num_threads: int) -> int:
        """Cycles a worker spends releasing dependences after a task ends."""
        self._check_threads(num_threads)
        factor = 1.0 + 0.5 * self.submission_contention * (num_threads - 1)
        return int(round(self.release_per_dep * num_deps * factor))

    # ------------------------------------------------------------------
    # reporting helpers (used by the Figure 10 experiment driver)
    # ------------------------------------------------------------------
    def overhead_table(
        self, dep_counts: Sequence[int], thread_counts: Sequence[int]
    ) -> Dict[str, List[int]]:
        """Build the Figure 10 series: one row per curve, one column per thread count.

        Returns a mapping whose key ``"creation"`` is the creation curve and
        whose keys ``"<x> DEPs"`` are the submission curves for each entry of
        ``dep_counts``.
        """
        table: Dict[str, List[int]] = {
            "creation": [self.creation_cycles(t) for t in thread_counts]
        }
        for deps in dep_counts:
            table[f"{deps} DEPs"] = [
                self.submission_cycles(deps, t) for t in thread_counts
            ]
        return table

    @staticmethod
    def _check_threads(num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be at least 1")
