"""Task and dependence model shared by every simulator in the package.

The OmpSs programming model (Section II-A of the paper) lets the programmer
annotate a function with ``#pragma omp task input(...) output(...)
inout(...)``.  At task-creation time the runtime receives a *work
descriptor*: a task identifier plus, for each dependence, the memory address
of the data it refers to and its direction.  That descriptor is exactly what
the Picos hardware consumes (packets N1/N4 in Figure 3b), so the classes in
this module are the lingua franca between the application generators
(:mod:`repro.apps`), the traces (:mod:`repro.traces`), the software runtime
models (:mod:`repro.runtime`) and the hardware model (:mod:`repro.core`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class Direction(enum.Enum):
    """Direction of a task dependence, as written in the OmpSs pragma.

    ``IN`` corresponds to ``input(...)`` (the task reads the data), ``OUT``
    to ``output(...)`` (the task overwrites the data) and ``INOUT`` to
    ``inout(...)`` (the task reads and then writes the data).
    """

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        """``True`` if a dependence with this direction reads the data."""
        # Identity checks instead of tuple membership: this property runs
        # once or twice per dependence of every simulated task.
        return self is Direction.IN or self is Direction.INOUT

    @property
    def writes(self) -> bool:
        """``True`` if a dependence with this direction writes the data."""
        return self is Direction.OUT or self is Direction.INOUT

    @classmethod
    def parse(cls, text: str) -> "Direction":
        """Parse a direction from its textual form (``in``/``out``/``inout``).

        A few common synonyms used by OmpSs traces are accepted as well
        (``input``, ``output``, ``r``, ``w``, ``rw``).
        """
        normalized = text.strip().lower()
        aliases = {
            "in": cls.IN,
            "input": cls.IN,
            "r": cls.IN,
            "read": cls.IN,
            "out": cls.OUT,
            "output": cls.OUT,
            "w": cls.OUT,
            "write": cls.OUT,
            "inout": cls.INOUT,
            "rw": cls.INOUT,
            "readwrite": cls.INOUT,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown dependence direction: {text!r}")
        return aliases[normalized]

    def merged_with(self, other: "Direction") -> "Direction":
        """Combine two directions referring to the same address.

        OmpSs collapses repeated dependences on the same address inside one
        task into a single dependence whose direction is the union of the
        accesses; this helper implements that union.
        """
        if self is other:
            return self
        return Direction.INOUT


@dataclass(frozen=True)
class Dependence:
    """A single data dependence of a task.

    Attributes
    ----------
    address:
        Base memory address of the data the dependence refers to.  The Picos
        hardware matches dependences by address (the DM ``Tag``), so the
        address is the identity of the data.
    direction:
        Whether the task reads, writes or reads-and-writes the data.
    """

    address: int
    direction: Direction

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("dependence address must be non-negative")

    @property
    def is_consumer(self) -> bool:
        """``True`` when the dependence only reads the data (``input``)."""
        return self.direction is Direction.IN

    @property
    def is_producer(self) -> bool:
        """``True`` when the dependence writes the data (``output``/``inout``)."""
        return self.direction.writes


@dataclass
class Task:
    """A single task instance, as created by the master thread.

    Attributes
    ----------
    task_id:
        Unique identifier of the task within a :class:`TaskProgram`.
    dependences:
        The task's dependences, in pragma order.  Repeated addresses are
        merged (their directions are combined) exactly as Nanos++ does, so
        one task never carries two dependences on the same address.
    duration:
        Execution time of the task body in cycles, as obtained from the
        instrumented sequential execution (Table I ``AveTSize`` is the mean
        of these values for a benchmark).
    creation_cycles:
        Cycles the master thread spends creating the task work descriptor
        before it can be submitted (used by the full-system mode).
    label:
        Optional human-readable task-type label (``"potrf"``, ``"gemm"``,
        ...) used by reports and tests.
    """

    task_id: int
    dependences: List[Dependence] = field(default_factory=list)
    duration: int = 1
    creation_cycles: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")
        if self.duration < 0:
            raise ValueError("task duration must be non-negative")
        if self.creation_cycles < 0:
            raise ValueError("creation_cycles must be non-negative")
        self.dependences = _merge_dependences(self.dependences)

    @property
    def num_dependences(self) -> int:
        """Number of (merged) dependences the task carries."""
        return len(self.dependences)

    @property
    def addresses(self) -> Tuple[int, ...]:
        """Addresses referenced by the task, in dependence order."""
        return tuple(dep.address for dep in self.dependences)

    def reads(self) -> Tuple[int, ...]:
        """Addresses the task reads (``input`` and ``inout`` dependences)."""
        return tuple(d.address for d in self.dependences if d.direction.reads)

    def writes(self) -> Tuple[int, ...]:
        """Addresses the task writes (``output`` and ``inout`` dependences)."""
        return tuple(d.address for d in self.dependences if d.direction.writes)


def _merge_dependences(dependences: Sequence[Dependence]) -> List[Dependence]:
    """Merge dependences on the same address, combining their directions."""
    merged: Dict[int, Direction] = {}
    order: List[int] = []
    for dep in dependences:
        if dep.address in merged:
            merged[dep.address] = merged[dep.address].merged_with(dep.direction)
        else:
            merged[dep.address] = dep.direction
            order.append(dep.address)
    return [Dependence(address, merged[address]) for address in order]


class TaskProgram:
    """An ordered stream of task creations.

    A :class:`TaskProgram` is what the master thread of an OmpSs application
    produces: tasks in *creation order*, each with its dependences and its
    measured execution time.  It is the single input format consumed by the
    Picos simulator, the Nanos++ model and the Perfect scheduler, which makes
    head-to-head comparisons meaningful (exactly the trace-driven methodology
    of Section IV-A of the paper).
    """

    def __init__(self, tasks: Optional[Iterable[Task]] = None, name: str = "") -> None:
        self.name = name
        self._tasks: List[Task] = []
        self._by_id: Dict[int, Task] = {}
        if tasks is not None:
            for task in tasks:
                self.add_task(task)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Append ``task`` to the creation stream.

        Raises ``ValueError`` if a task with the same identifier is already
        part of the program.
        """
        if task.task_id in self._by_id:
            raise ValueError(f"duplicate task id {task.task_id}")
        self._tasks.append(task)
        self._by_id[task.task_id] = task
        return task

    def create_task(
        self,
        dependences: Sequence[Dependence] = (),
        duration: int = 1,
        creation_cycles: int = 0,
        label: str = "",
    ) -> Task:
        """Create and append a task, assigning the next free identifier."""
        task = Task(
            task_id=len(self._tasks),
            dependences=list(dependences),
            duration=duration,
            creation_cycles=creation_cycles,
            label=label,
        )
        return self.add_task(task)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def task(self, task_id: int) -> Task:
        """Return the task with identifier ``task_id``."""
        return self._by_id[task_id]

    @property
    def tasks(self) -> Tuple[Task, ...]:
        """The tasks of the program, in creation order."""
        return tuple(self._tasks)

    # ------------------------------------------------------------------
    # aggregate properties (the columns of Table I)
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Total number of tasks (Table I ``#Tasks``)."""
        return len(self._tasks)

    @property
    def sequential_cycles(self) -> int:
        """Sum of all task durations (Table I ``SeqExec``)."""
        return sum(task.duration for task in self._tasks)

    @property
    def average_task_size(self) -> float:
        """Mean task duration in cycles (Table I ``AveTSize``)."""
        if not self._tasks:
            return 0.0
        return self.sequential_cycles / len(self._tasks)

    @property
    def dependence_count_range(self) -> Tuple[int, int]:
        """Minimum and maximum number of dependences per task (Table I ``#Dep``)."""
        if not self._tasks:
            return (0, 0)
        counts = [task.num_dependences for task in self._tasks]
        return (min(counts), max(counts))

    @property
    def average_dependences(self) -> float:
        """Mean number of dependences per task."""
        if not self._tasks:
            return 0.0
        return sum(t.num_dependences for t in self._tasks) / len(self._tasks)

    @property
    def max_dependences(self) -> int:
        """Largest number of dependences carried by any single task."""
        if not self._tasks:
            return 0
        return max(t.num_dependences for t in self._tasks)

    def unique_addresses(self) -> Tuple[int, ...]:
        """All distinct dependence addresses, in first-appearance order."""
        seen: Dict[int, None] = {}
        for task in self._tasks:
            for dep in task.dependences:
                seen.setdefault(dep.address, None)
        return tuple(seen.keys())

    def summary(self) -> Dict[str, object]:
        """A small dictionary of the Table I columns for this program."""
        lo, hi = self.dependence_count_range
        return {
            "name": self.name,
            "num_tasks": self.num_tasks,
            "dep_range": (lo, hi),
            "avg_task_size": self.average_task_size,
            "sequential_cycles": self.sequential_cycles,
        }

    def with_creation_order(self, order: Sequence[int]) -> "TaskProgram":
        """Return a copy of the program with tasks re-created in ``order``.

        ``order`` is a permutation of task identifiers.  This is the
        mechanism behind the *Modified Lu* experiment of Figure 9, where the
        creation order of the row-panel tasks is reversed to avoid the
        last-consumer wake-up corner case.
        """
        if sorted(order) != sorted(self._by_id):
            raise ValueError("order must be a permutation of the task ids")
        reordered = TaskProgram(name=self.name)
        for task_id in order:
            reordered.add_task(self._by_id[task_id])
        return reordered
