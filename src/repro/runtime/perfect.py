"""Perfect (roofline) simulator.

Section IV-A: "Traces are also used to feed a Perfect Simulator which
measures critical-path task execution to show the roofline speedup of each
OmpSs application."  The Perfect Simulator schedules the exact dependence
graph of the program on ``num_workers`` workers with *zero* management
overhead: tasks become ready the instant their predecessors finish and start
the instant a worker is free.  Its speedup is therefore an upper bound for
both the Picos prototype and the Nanos++ runtime, and the gap between the
prototype and this roofline is what Figure 11 discusses.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.runtime.dependence_analysis import TaskGraph, build_task_graph
from repro.runtime.task import TaskProgram
from repro.sim.backend import BACKEND_PERFECT, register_backend
from repro.sim.results import SimulationResult, TaskTimeline


class PerfectScheduler:
    """Zero-overhead list scheduler over the exact task dependence graph."""

    def __init__(self, program: TaskProgram, num_workers: int = 12) -> None:
        if num_workers < 1:
            raise ValueError("at least one worker is required")
        self.program = program
        self.num_workers = num_workers
        self.graph: TaskGraph = build_task_graph(program)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Schedule the program and return the roofline result."""
        graph = self.graph
        program = self.program
        remaining_preds: Dict[int, int] = {
            task_id: len(preds) for task_id, preds in graph.predecessors.items()
        }
        timelines: Dict[int, TaskTimeline] = {}

        # Ready tasks ordered by the time they became ready (then creation
        # order, which keeps the schedule deterministic).
        ready: List[Tuple[int, int]] = []
        for task_id in range(program.num_tasks):
            if remaining_preds[task_id] == 0:
                heapq.heappush(ready, (0, task_id))

        # Workers ordered by the time they become free.
        workers: List[Tuple[int, int]] = [(0, w) for w in range(self.num_workers)]
        heapq.heapify(workers)

        makespan = 0
        scheduled = 0
        # Running tasks ordered by completion time, so successors are
        # released in the right order even when the ready pool is empty.
        running: List[Tuple[int, int]] = []

        while scheduled < program.num_tasks:
            if ready:
                ready_time, task_id = heapq.heappop(ready)
                free_time, worker_id = heapq.heappop(workers)
                start = max(ready_time, free_time)
                duration = program.task(task_id).duration
                finish = start + duration
                heapq.heappush(workers, (finish, worker_id))
                heapq.heappush(running, (finish, task_id))
                timelines[task_id] = TaskTimeline(
                    task_id=task_id,
                    created=0,
                    submitted=0,
                    ready=ready_time,
                    started=start,
                    finished=finish,
                )
                makespan = max(makespan, finish)
                scheduled += 1
            else:
                # No task is ready: advance to the next completion and
                # release its successors.
                if not running:
                    raise RuntimeError(
                        "perfect scheduler stalled with no running task "
                        "(cyclic dependence graph?)"
                    )
                finish, finished_task = heapq.heappop(running)
                for successor in graph.successors[finished_task]:
                    remaining_preds[successor] -= 1
                    if remaining_preds[successor] == 0:
                        heapq.heappush(ready, (finish, successor))

            # Release successors of any task that completed no later than the
            # earliest moment a new task could start; this keeps ready times
            # exact without a full event queue.
            while running and ready and running[0][0] <= ready[0][0]:
                finish, finished_task = heapq.heappop(running)
                for successor in graph.successors[finished_task]:
                    remaining_preds[successor] -= 1
                    if remaining_preds[successor] == 0:
                        heapq.heappush(ready, (finish, successor))

        # Drain any remaining running tasks to release successors (they are
        # all scheduled already, so this is bookkeeping only).
        return SimulationResult(
            simulator="perfect",
            program_name=program.name,
            num_workers=self.num_workers,
            makespan=makespan,
            sequential_cycles=program.sequential_cycles,
            num_tasks=program.num_tasks,
            timelines=timelines,
            counters={"critical_path": graph.critical_path_length()},
            drain_time=makespan,
        )

    # ------------------------------------------------------------------
    # analytic bounds
    # ------------------------------------------------------------------
    def critical_path(self) -> int:
        """Length of the critical path in cycles (infinite-worker makespan)."""
        return self.graph.critical_path_length()

    def roofline_speedup(self) -> float:
        """Upper bound of the speedup with infinitely many workers."""
        return self.graph.max_parallelism()


def perfect_speedup(program: TaskProgram, num_workers: int) -> float:
    """Convenience helper: the Perfect-Simulator speedup for one point."""
    return PerfectScheduler(program, num_workers).run().speedup


# ----------------------------------------------------------------------
# backend registration
# ----------------------------------------------------------------------
class PerfectBackend:
    """Simulator backend wrapping :class:`PerfectScheduler`.

    Configuration, policy and overhead parameters are rejected by the typed
    request API (the roofline scheduler has zero management overhead by
    definition); the legacy ``simulate_program`` shim warns and drops them.
    """

    name = BACKEND_PERFECT
    description = "Perfect scheduler (zero-overhead roofline upper bound)"
    #: The roofline scheduler has zero management overhead by definition;
    #: it accepts no request parameters beyond the worker count.
    accepts = frozenset()

    def open_session(self, request):  # type: ignore[no-untyped-def]
        """Streaming session over the roofline scheduler."""
        from repro.sim.session import SimulationSession

        return SimulationSession(self, request)

    def simulate(
        self,
        program: TaskProgram,
        *,
        num_workers: int = 12,
        **kwargs: object,
    ) -> SimulationResult:
        return PerfectScheduler(program, num_workers=num_workers).run()


register_backend(PerfectBackend(), replace=True)
