"""Admission control and per-tenant quotas for the simulation service.

Two independent mechanisms, both enforced per tenant (the request's
``tenant`` field) with a server-wide backstop:

* **Concurrent-session quotas** are checked at open time.  An over-quota
  request is *rejected with a typed code* (``session-quota-exceeded`` or
  ``server-capacity-exceeded``) instead of queueing -- the service
  degrades by refusing work it cannot take, never by collapsing under a
  backlog it silently accepted.
* **Cycles-per-second throttles** shape running sessions.  A classic token
  bucket per tenant: each cooperative slice asks for its cycle budget and
  the controller answers with the delay (possibly zero) the session must
  sleep before computing the slice.  Sessions of throttled tenants slow
  down; nothing else on the event loop does.

The controller is synchronous and clock-injected, so the quota logic is
unit-testable without a running server or real time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.service.protocol import (
    REJECT_FAULTS_FORBIDDEN,
    REJECT_SERVER_CAPACITY,
    REJECT_SESSION_QUOTA,
)


@dataclass(frozen=True)
class TenantQuota:
    """Resource limits of one tenant (``None`` = unlimited)."""

    #: Maximum concurrently open sessions.
    max_sessions: Optional[int] = None
    #: Sustained simulated-cycle throughput (cycles per wall second).
    cycles_per_second: Optional[float] = None
    #: Bucket capacity of the throttle; defaults to one second's worth.
    burst_cycles: Optional[float] = None
    #: Whether requests carrying armed fault scenarios are admitted.
    #: Fault injection deliberately perturbs shared capacity (frozen banks,
    #: killed workers keep sessions alive longer), so operators can reserve
    #: it for trusted tenants.
    allow_faults: bool = True

    def __post_init__(self) -> None:
        if self.max_sessions is not None and self.max_sessions < 0:
            raise ValueError("max_sessions must be >= 0")
        if self.cycles_per_second is not None and self.cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be > 0")


#: The quota applied when a tenant has no explicit entry.
UNLIMITED = TenantQuota()


@dataclass(frozen=True)
class Rejection:
    """A typed admission refusal (maps 1:1 onto a ``rejected`` frame)."""

    code: str
    message: str
    tenant: str
    limit: Optional[int] = None


class AdmissionTicket:
    """One admitted session's hold on its tenant's quota.

    Release exactly once when the session ends (finished, cancelled,
    evicted or its connection died); releasing is idempotent.
    """

    def __init__(self, controller: "AdmissionController", tenant: str) -> None:
        self._controller = controller
        self.tenant = tenant
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self.tenant)


class _TokenBucket:
    """Token bucket in simulated-cycle units against a wall-clock rate."""

    __slots__ = ("rate", "capacity", "tokens", "stamp")

    def __init__(self, rate: float, capacity: float, now: float) -> None:
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.stamp = now

    def delay_for(self, cycles: float, now: float) -> float:
        """Consume ``cycles`` tokens; the wait (seconds) before proceeding.

        The bucket may go negative (the slice is admitted but charged),
        which is what turns a sequence of large slices into the configured
        sustained rate instead of requiring slices smaller than the burst.
        """
        elapsed = now - self.stamp
        if elapsed > 0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
            self.stamp = now
        self.tokens -= cycles
        if self.tokens >= 0:
            return 0.0
        return -self.tokens / self.rate


class AdmissionController:
    """Session admission and cycle throttling, per tenant."""

    def __init__(
        self,
        *,
        default_quota: TenantQuota = UNLIMITED,
        tenant_quotas: Optional[Mapping[str, TenantQuota]] = None,
        max_total_sessions: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_total_sessions is not None and max_total_sessions < 0:
            raise ValueError("max_total_sessions must be >= 0")
        self._default_quota = default_quota
        self._tenant_quotas = dict(tenant_quotas or {})
        self._max_total = max_total_sessions
        self._clock = clock
        self._active: Dict[str, int] = {}
        self._total_active = 0
        self._buckets: Dict[str, _TokenBucket] = {}

    # ------------------------------------------------------------------
    # session admission
    # ------------------------------------------------------------------
    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota applied to ``tenant`` (explicit entry or the default)."""
        return self._tenant_quotas.get(tenant, self._default_quota)

    def active_sessions(self, tenant: Optional[str] = None) -> int:
        """Currently admitted sessions, overall or for one tenant."""
        if tenant is None:
            return self._total_active
        return self._active.get(tenant, 0)

    def admit(self, tenant: str, *, faulted: bool = False):
        """Admit one session; an :class:`AdmissionTicket` or a :class:`Rejection`.

        ``faulted`` marks a request that arms fault scenarios; tenants whose
        quota sets ``allow_faults=False`` get a typed
        ``faults-forbidden`` rejection before any quota slot is consumed.
        """
        if faulted and not self.quota_for(tenant).allow_faults:
            return Rejection(
                code=REJECT_FAULTS_FORBIDDEN,
                message=(
                    f"tenant {tenant!r} is not allowed to arm fault scenarios"
                ),
                tenant=tenant,
            )
        if self._max_total is not None and self._total_active >= self._max_total:
            return Rejection(
                code=REJECT_SERVER_CAPACITY,
                message=(
                    f"server is at capacity ({self._max_total} concurrent "
                    "sessions); retry later"
                ),
                tenant=tenant,
                limit=self._max_total,
            )
        quota = self.quota_for(tenant)
        held = self._active.get(tenant, 0)
        if quota.max_sessions is not None and held >= quota.max_sessions:
            return Rejection(
                code=REJECT_SESSION_QUOTA,
                message=(
                    f"tenant {tenant!r} is at its concurrent-session quota "
                    f"({quota.max_sessions}); retry later"
                ),
                tenant=tenant,
                limit=quota.max_sessions,
            )
        self._active[tenant] = held + 1
        self._total_active += 1
        return AdmissionTicket(self, tenant)

    def _release(self, tenant: str) -> None:
        held = self._active.get(tenant, 0)
        if held <= 1:
            self._active.pop(tenant, None)
        else:
            self._active[tenant] = held - 1
        if held:
            self._total_active -= 1

    # ------------------------------------------------------------------
    # cycle throttling
    # ------------------------------------------------------------------
    def slice_delay(self, tenant: str, cycles: int) -> float:
        """Seconds a session must wait before simulating ``cycles`` more.

        Zero for unthrottled tenants; the session runner sleeps the
        returned delay (pausing only itself) before computing the slice.
        """
        quota = self.quota_for(tenant)
        rate = quota.cycles_per_second
        if rate is None or cycles <= 0:
            return 0.0
        bucket = self._buckets.get(tenant)
        now = self._clock()
        if bucket is None or bucket.rate != rate:
            capacity = quota.burst_cycles if quota.burst_cycles is not None else rate
            bucket = _TokenBucket(rate, capacity, now)
            self._buckets[tenant] = bucket
        return bucket.delay_for(cycles, now)
