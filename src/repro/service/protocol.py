"""Wire protocol of the simulation service: frames and document codecs.

The native transport is newline-delimited JSON (NDJSON) over TCP: every
frame is one JSON object on one line, client and server each write complete
lines only.  The same frame dictionaries travel over the HTTP adapter as
Server-Sent Events (``event: <type>`` / ``data: <frame>``), so this module
is transport-agnostic: it only defines how Python values become JSON-safe
documents and back.

Client frames
-------------
``{"type": "open", "id": <str>, "request": <request document>}``
    Open a session.  Answered by ``accepted`` or ``rejected``.
``{"type": "submit", "id": ..., "tasks": [<task document>, ...]}``
    Stream more tasks into an open session (online arrival).
``{"type": "run", "id": ...}``
    Seal the session and start the sliced run; event/result frames follow.
``{"type": "cancel", "id": ...}``
    Cancel the session (idempotent); answered by ``cancelled``.
``{"type": "stats", "id": ...}`` / ``{"type": "metrics"}`` / ``{"type": "ping"}``
    Introspection; answered by ``stats`` / ``metrics`` / ``pong``.

Server frames
-------------
``{"type": "accepted", "id": ..., "cache_key": <str or null>}``
``{"type": "rejected", "id": ..., "code": <rejection code>, "error": ...}``
``{"type": "events", "id": ..., "events": [[cycle, kind, task_id], ...]}``
    ``kind`` is the compact order code (0 = submitted, 1 = ready,
    2 = retired), matching the in-cycle delivery order of the session API.
``{"type": "result", "id": ..., "cached": <bool>, "result": <result doc>}``
``{"type": "cancelled"|"evicted", "id": ...}``
``{"type": "error", "id": ..., "error": ...}``

Every rejection carries a typed ``code`` from the ``REJECT_*`` constants,
so clients can distinguish quota pressure (retry later) from malformed
requests (do not retry).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.config import DMDesign, PicosConfig
from repro.core.scheduler import SchedulingPolicy
from repro.faults.scenario import (
    FaultConfigurationError,
    faults_from_documents,
)
from repro.runtime.overhead import NanosOverheadModel
from repro.runtime.task import Dependence, Direction, Task, TaskProgram
from repro.sim.request import DEFAULT_TENANT, SimulationRequest, StreamOptions
from repro.sim.results import SimulationResult, TaskTimeline
from repro.sim.session import SessionEvent, _EVENT_ORDER

#: Version tag spoken in ``hello``/``pong`` frames and stored in cached
#: service documents.
PROTOCOL_VERSION = 1

# Typed rejection codes (the ``code`` field of a ``rejected`` frame).
REJECT_BAD_REQUEST = "bad-request"
REJECT_SESSION_QUOTA = "session-quota-exceeded"
REJECT_SERVER_CAPACITY = "server-capacity-exceeded"
REJECT_DUPLICATE_SESSION = "duplicate-session-id"
REJECT_UNKNOWN_SESSION = "unknown-session-id"
REJECT_SESSION_STATE = "session-state"
REJECT_FAULTS_FORBIDDEN = "faults-forbidden"


class ProtocolError(ValueError):
    """A frame or document could not be decoded; carries a rejection code."""

    def __init__(self, message: str, code: str = REJECT_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """One NDJSON wire frame (compact JSON + newline)."""
    return json.dumps(frame, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a frame dictionary."""
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON frame: {error}") from error
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("a frame must be a JSON object with a string 'type'")
    return frame


# ----------------------------------------------------------------------
# request documents
# ----------------------------------------------------------------------
def request_to_document(request: SimulationRequest) -> Dict[str, Any]:
    """Render a request as a JSON-safe document (client side).

    Inline programs are serialised task by task; workload references stay
    declarative.  ``request_from_document`` inverts this exactly.
    """
    document: Dict[str, Any] = {
        "backend": request.backend,
        "workers": request.num_workers,
    }
    program = request.program
    if hasattr(program, "workload"):
        document["workload"] = program.workload
        if program.block_size is not None:
            document["block_size"] = program.block_size
        if program.problem_size is not None:
            document["problem_size"] = program.problem_size
    else:
        built = program.build()
        document["name"] = built.name
        document["tasks"] = [task_to_document(task) for task in built]
    if request.policy is not SchedulingPolicy.FIFO:
        document["policy"] = request.policy.value
    if request.dm_design is not None:
        document["dm_design"] = request.dm_design.value
    if request.config is not None:
        document["config"] = _config_to_document(request.config)
    if request.overhead is not None:
        document["overhead"] = dataclasses.asdict(request.overhead)
    if request.seed is not None:
        document["seed"] = request.seed
    if request.faults:
        document["faults"] = [scenario.to_document() for scenario in request.faults]
    if request.tenant != DEFAULT_TENANT:
        document["tenant"] = request.tenant
    if request.stream is not None:
        document["stream"] = {
            key: value
            for key, value in dataclasses.asdict(request.stream).items()
            if value is not None
        }
    return document


def request_from_document(document: Mapping[str, Any]) -> SimulationRequest:
    """Decode a request document into a typed :class:`SimulationRequest`.

    Raises :class:`ProtocolError` (code ``bad-request``) on anything
    malformed; backend-side validation (unknown backend, unaccepted
    parameters) is left to ``request.normalize()`` so the server can map
    those failures to the same rejection code.
    """
    if not isinstance(document, Mapping):
        raise ProtocolError("request must be a JSON object")
    known = {
        "workload", "block_size", "problem_size", "name", "tasks",
        "backend", "workers", "policy", "dm_design", "config", "overhead",
        "seed", "faults", "tenant", "stream",
    }
    unknown = sorted(set(document) - known)
    if unknown:
        raise ProtocolError(f"unknown request field(s): {', '.join(unknown)}")

    fields: Dict[str, Any] = {}
    if "backend" in document:
        fields["backend"] = document["backend"]
    if "workers" in document:
        fields["num_workers"] = _require_int(document, "workers")
    if "policy" in document:
        fields["policy"] = _parse_enum(SchedulingPolicy, document["policy"], "policy")
    if "dm_design" in document:
        fields["dm_design"] = _parse_enum(DMDesign, document["dm_design"], "dm_design")
    if "config" in document:
        fields["config"] = _config_from_document(document["config"])
    if "overhead" in document:
        fields["overhead"] = _overhead_from_document(document["overhead"])
    if "seed" in document:
        fields["seed"] = _require_int(document, "seed")
    if "faults" in document:
        fields["faults"] = _faults_from_document(document["faults"])
    if "tenant" in document:
        fields["tenant"] = document["tenant"]
    if "stream" in document:
        fields["stream"] = _stream_from_document(document["stream"])

    try:
        if "workload" in document:
            if "tasks" in document:
                raise ProtocolError("give either 'workload' or 'tasks', not both")
            return SimulationRequest.for_workload(
                document["workload"],
                block_size=document.get("block_size"),
                problem_size=document.get("problem_size"),
                **fields,
            )
        if "tasks" in document:
            program = TaskProgram(name=str(document.get("name", "inline")))
            tasks = document["tasks"]
            if not isinstance(tasks, list):
                raise ProtocolError("'tasks' must be a list")
            for entry in tasks:
                program.add_task(task_from_document(entry))
            return SimulationRequest.for_program(program, **fields)
        # No program: a streaming session fed through 'submit' frames.
        return SimulationRequest.streaming(str(document.get("name", "")), **fields)
    except ProtocolError:
        raise
    except (TypeError, ValueError) as error:
        raise ProtocolError(str(error)) from error


def _require_int(document: Mapping[str, Any], field: str) -> int:
    value = document[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"'{field}' must be an integer")
    return value


def _parse_enum(enum_type: Any, value: Any, field: str) -> Any:
    try:
        return enum_type(value)
    except ValueError as error:
        raise ProtocolError(f"invalid {field}: {value!r}") from error


def _config_to_document(config: PicosConfig) -> Dict[str, Any]:
    from repro.sim.request import config_fields

    return config_fields(config)


def _config_from_document(document: Any) -> PicosConfig:
    if not isinstance(document, Mapping):
        raise ProtocolError("'config' must be a JSON object")
    valid = {f.name for f in dataclasses.fields(PicosConfig)}
    unknown = sorted(set(document) - valid)
    if unknown:
        raise ProtocolError(f"unknown config field(s): {', '.join(unknown)}")
    kwargs = dict(document)
    if "dm_design" in kwargs:
        kwargs["dm_design"] = _parse_enum(DMDesign, kwargs["dm_design"], "config.dm_design")
    try:
        return PicosConfig(**kwargs)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid config: {error}") from error


def _overhead_from_document(document: Any) -> NanosOverheadModel:
    if not isinstance(document, Mapping):
        raise ProtocolError("'overhead' must be a JSON object")
    valid = {f.name for f in dataclasses.fields(NanosOverheadModel)}
    unknown = sorted(set(document) - valid)
    if unknown:
        raise ProtocolError(f"unknown overhead field(s): {', '.join(unknown)}")
    try:
        return NanosOverheadModel(**document)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid overhead model: {error}") from error


def _faults_from_document(document: Any) -> Tuple[Any, ...]:
    if not isinstance(document, list):
        raise ProtocolError("'faults' must be a list of scenario objects")
    try:
        return faults_from_documents(document)
    except (FaultConfigurationError, TypeError, ValueError) as error:
        raise ProtocolError(f"invalid fault scenario: {error}") from error


def _stream_from_document(document: Any) -> StreamOptions:
    if not isinstance(document, Mapping):
        raise ProtocolError("'stream' must be a JSON object")
    valid = {f.name for f in dataclasses.fields(StreamOptions)}
    unknown = sorted(set(document) - valid)
    if unknown:
        raise ProtocolError(f"unknown stream field(s): {', '.join(unknown)}")
    try:
        return StreamOptions(**document)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid stream options: {error}") from error


# ----------------------------------------------------------------------
# task documents
# ----------------------------------------------------------------------
def task_to_document(task: Task) -> List[Any]:
    """Compact task encoding: ``[id, duration, [[address, dir], ...]]``."""
    return [
        task.task_id,
        task.duration,
        [[dep.address, dep.direction.value] for dep in task.dependences],
    ]


def task_from_document(entry: Any) -> Task:
    """Decode one task document (see :func:`task_to_document`)."""
    if not isinstance(entry, (list, tuple)) or len(entry) != 3:
        raise ProtocolError("a task document is [id, duration, [[address, dir], ...]]")
    task_id, duration, deps = entry
    if not isinstance(deps, list):
        raise ProtocolError("task dependences must be a list")
    try:
        dependences = [
            Dependence(address, Direction.parse(direction))
            for address, direction in deps
        ]
        return Task(task_id=task_id, dependences=dependences, duration=duration)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid task document: {error}") from error


# ----------------------------------------------------------------------
# event documents
# ----------------------------------------------------------------------
def events_to_document(events: Sequence[SessionEvent]) -> List[List[int]]:
    """Compact event batch: ``[[cycle, kind_code, task_id], ...]``."""
    order = _EVENT_ORDER
    return [[event.cycle, order[event.kind], event.task_id] for event in events]


# ----------------------------------------------------------------------
# result documents
# ----------------------------------------------------------------------
#: Timeline stamps travel as a fixed-order array in this field order.
_TIMELINE_FIELDS: Tuple[str, ...] = ("created", "submitted", "ready", "started", "finished")


def result_to_document(result: SimulationResult) -> Dict[str, Any]:
    """Full-fidelity JSON encoding of a :class:`SimulationResult`.

    Everything round-trips: :func:`result_from_document` rebuilds an object
    that compares field-for-field equal to the original (the cache-parity
    tests pin this), so a cache-served result is indistinguishable from a
    freshly simulated one.
    """
    return {
        "simulator": result.simulator,
        "program_name": result.program_name,
        "num_workers": result.num_workers,
        "makespan": result.makespan,
        "sequential_cycles": result.sequential_cycles,
        "num_tasks": result.num_tasks,
        "timelines": {
            str(task_id): [getattr(timeline, name) for name in _TIMELINE_FIELDS]
            for task_id, timeline in result.timelines.items()
        },
        "counters": dict(result.counters),
        "drain_time": result.drain_time,
    }


def result_from_document(document: Mapping[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from its document form."""
    if not isinstance(document, Mapping):
        raise ProtocolError("result document must be a JSON object")
    try:
        timelines = {
            int(task_id): TaskTimeline(int(task_id), *stamps)
            for task_id, stamps in document["timelines"].items()
        }
        return SimulationResult(
            simulator=document["simulator"],
            program_name=document["program_name"],
            num_workers=document["num_workers"],
            makespan=document["makespan"],
            sequential_cycles=document["sequential_cycles"],
            num_tasks=document["num_tasks"],
            timelines=timelines,
            counters=dict(document["counters"]),
            drain_time=document["drain_time"],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"invalid result document: {error}") from error
