"""Shared cross-process result cache of the simulation service.

A thin, typed layer over the experiment runner's on-disk
:class:`~repro.experiments.runner.ResultCache` (same directory layout, same
atomic-write and torn-file-quarantine discipline), so server processes and
batch experiment runs can point at one cache directory.  Entries are keyed
by :meth:`SimulationRequest.cache_key` -- content-addressed over the trace
digest and every outcome-determining parameter, and salted with the package
version exactly like the experiment runner's keys -- and store a
*full-fidelity* result document: the reconstructed
:class:`~repro.sim.results.SimulationResult` compares field-for-field equal
to a fresh simulation, so a cache-served session can still stream the
complete lifecycle-event sequence.

The service uses it read-through (lookup at run start) / write-behind (the
server persists in a background thread after the client already has its
result); both sides are plain synchronous calls here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.experiments.runner import CACHE_SCHEMA_VERSION, ResultCache
from repro.sim.request import SimulationRequest
from repro.sim.results import SimulationResult
from repro.service.protocol import (
    ProtocolError,
    result_from_document,
    result_to_document,
)

#: Key salt distinguishing service entries from experiment sweep entries
#: (same directory, disjoint key spaces: a sweep point's document lacks the
#: full timeline fidelity sessions need).
_SERVICE_KEY_PREFIX = ("service-result", 1)


def service_cache_key(request: SimulationRequest) -> str:
    """The shared-cache key of one request (tenant/stream-neutral)."""
    from repro import __version__

    return request.cache_key(prefix=[CACHE_SCHEMA_VERSION, __version__, *_SERVICE_KEY_PREFIX])


class SharedResultCache:
    """Read-through/write-behind store of full simulation results."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._store = ResultCache(self.directory)

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result under ``key``, or ``None`` on any miss.

        Torn files are quarantined by the underlying store; a document
        that decodes as JSON but not as a result (e.g. written by a future
        schema) is also just a miss.
        """
        document = self._store.get(key)
        if document is None:
            return None
        try:
            return result_from_document(document)
        except ProtocolError:
            return None

    def put(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` (atomic; last writer wins)."""
        return self._store.put(key, None, result_to_document(result))

    def __len__(self) -> int:
        return len(self._store)
