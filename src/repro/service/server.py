"""The asyncio simulation server.

One event loop, many simulations: every admitted request becomes a
:class:`~repro.sim.session.SimulationSession` advanced in bounded
cooperative slices (:meth:`SimulationSession.advance`), so a single server
process interleaves hundreds of long runs without threads and without
starving any of them.  Around that core:

* **Admission** (:mod:`repro.service.admission`): per-tenant concurrent-
  session quotas and server capacity are checked at open time with typed
  rejections; cycles-per-second quotas throttle running sessions between
  slices.
* **Backpressure**: each connection owns a bounded outbound frame queue
  drained by a writer task.  When a client stops reading, TCP flow control
  backs the writer up, the queue fills, and the session's runner blocks in
  ``queue.put`` -- pausing exactly that session while the loop keeps
  serving everyone else.
* **Lifecycle**: accepted-but-never-run sessions are evicted after an idle
  timeout (checkpointed to ``checkpoint_dir`` first, when configured, so
  the work survives the eviction), ``cancel`` frames (and disconnects)
  cancel mid-run sessions, and shutdown drains running sessions before
  closing.
* **Checkpoint/restore** (:mod:`repro.sim.snapshot`): the ``checkpoint``
  frame captures an accepted session into a portable snapshot document;
  the ``restore`` frame admits a *new* session from such a document --
  including snapshots taken mid-run by a CLI or library client -- and
  ``run`` then continues it bit-exactly from the captured cycle.
* **Shared cache** (:mod:`repro.service.cache`): read-through at run
  start, write-behind after completion, keyed by the request's
  content-addressed cache key -- multiple server processes pointing at one
  directory serve each other's results.
* **Metrics** (:mod:`repro.service.metrics`): counters and a slice-latency
  histogram, served over the TCP ``metrics`` frame and ``GET /metrics``.

Transports: the native NDJSON TCP protocol (see
:mod:`repro.service.protocol`) and a minimal HTTP adapter (``GET
/metrics``, ``GET /healthz``, ``POST /simulate`` answered as a
Server-Sent-Events stream) -- both stdlib-only.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Set, Tuple, Union

from repro.sim.request import SimulationRequest
from repro.sim.session import (
    DEFAULT_SLICE_CYCLES,
    SessionError,
    lifecycle_events,
    open_session,
)
from repro.sim.snapshot import (
    SimulationSnapshot,
    SnapshotError,
    capture,
    restore as restore_snapshot,
    save_snapshot,
)
from repro.service.admission import AdmissionController, Rejection, TenantQuota
from repro.service.cache import SharedResultCache, service_cache_key
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    REJECT_BAD_REQUEST,
    REJECT_DUPLICATE_SESSION,
    REJECT_SESSION_STATE,
    REJECT_UNKNOWN_SESSION,
    decode_frame,
    encode_frame,
    events_to_document,
    request_from_document,
    result_to_document,
    task_from_document,
)
from repro.service.sessions import (
    ACCEPTED,
    CANCELLED,
    COMPLETED,
    EVICTED,
    FAILED,
    LIVE_STATES,
    RUNNING,
    ServiceSession,
    SessionRegistry,
)

#: Per-line read limit: generous enough for inline programs of tens of
#: thousands of tasks in one frame.
_READ_LIMIT = 16 * 1024 * 1024

#: Sentinel closing a connection's writer task.
_CLOSE_WRITER = None


def _save_checkpoint(snapshot: SimulationSnapshot, target: Path) -> None:
    """Synchronous checkpoint write (runs in ``asyncio.to_thread``)."""
    target.parent.mkdir(parents=True, exist_ok=True)
    save_snapshot(snapshot, target)


@dataclass
class ServerConfig:
    """Everything a :class:`SimulationServer` needs to start."""

    host: str = "127.0.0.1"
    #: TCP (NDJSON) port; 0 picks an ephemeral port.
    port: int = 0
    #: HTTP adapter port; 0 picks an ephemeral port, ``None`` disables HTTP.
    http_port: Optional[int] = 0
    #: Shared result-cache directory (``None`` disables caching).
    cache_dir: Optional[Union[str, Path]] = None
    #: Server-wide concurrent-session cap (``None`` = unlimited).
    max_sessions: Optional[int] = None
    #: Default per-tenant quota (overridden per tenant via ``tenant_quotas``).
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: Cycle budget per cooperative slice (requests may override via their
    #: stream options).
    slice_cycles: int = DEFAULT_SLICE_CYCLES
    #: Maximum lifecycle events per streamed frame.
    event_batch: int = 512
    #: Outbound frame-queue depth per connection (the backpressure bound).
    buffer_frames: int = 16
    #: Seconds an accepted-but-never-run session may sit before eviction.
    idle_timeout: float = 300.0
    #: Directory idle-evicted sessions are checkpointed into before being
    #: dropped (``<session id>.json`` snapshot documents, restorable via
    #: the ``restore`` frame or the CLI's ``--restore``).  ``None``
    #: disables eviction-to-disk.
    checkpoint_dir: Optional[Union[str, Path]] = None
    #: Seconds shutdown waits for running sessions to finish before
    #: cancelling them.
    drain_timeout: float = 10.0


class SimulationServer:
    """One serving process: listeners, sessions, admission, cache, metrics."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(
            default_quota=self.config.default_quota,
            tenant_quotas=self.config.tenant_quotas,
            max_total_sessions=self.config.max_sessions,
        )
        self.registry = SessionRegistry()
        self.cache: Optional[SharedResultCache] = (
            SharedResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._cache_writes: Set[asyncio.Task] = set()
        self._shutting_down = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the listeners and start the idle-eviction sweeper."""
        config = self.config
        self._tcp_server = await asyncio.start_server(
            self._handle_tcp, config.host, config.port, limit=_READ_LIMIT
        )
        if config.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, config.host, config.http_port, limit=_READ_LIMIT
            )
        self._sweeper = asyncio.get_running_loop().create_task(self._sweep_idle())

    @property
    def tcp_port(self) -> int:
        assert self._tcp_server is not None and self._tcp_server.sockets
        return self._tcp_server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> Optional[int]:
        if self._http_server is None or not self._http_server.sockets:
            return None
        return self._http_server.sockets[0].getsockname()[1]

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain running sessions, close up."""
        self._shutting_down = True
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
        if drain:
            runners = [
                record.runner
                for record in self.registry.live_sessions()
                if record.runner is not None and not record.runner.done()
            ]
            if runners:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        asyncio.gather(*runners, return_exceptions=True),
                        timeout=self.config.drain_timeout,
                    )
        # Whatever is still live now (not drained, or drain disabled) gets
        # cancelled; then the connection handlers themselves.
        for record in self.registry.live_sessions():
            await self._cancel_session(record, outcome=CANCELLED, notify=False)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._cache_writes:
            await asyncio.gather(*self._cache_writes, return_exceptions=True)
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                with contextlib.suppress(Exception):
                    await server.wait_closed()

    async def _sweep_idle(self) -> None:
        interval = max(0.05, min(self.config.idle_timeout / 4.0, 1.0))
        while True:
            await asyncio.sleep(interval)
            for record in self.registry.idle_candidates(self.config.idle_timeout):
                # Checkpoint before finish(): finishing closes the engine
                # session, after which nothing is left to capture.
                checkpoint_path = await self._evict_to_disk(record)
                record.finish(EVICTED)
                self.metrics.record_closed("evicted")
                if record.out is not None:
                    notice: Dict[str, Any] = {
                        "type": "evicted",
                        "id": record.session_id,
                    }
                    if checkpoint_path is not None:
                        notice["checkpoint"] = str(checkpoint_path)
                    with contextlib.suppress(asyncio.QueueFull):
                        record.out.put_nowait(notice)

    async def _evict_to_disk(self, record: ServiceSession) -> Optional[Path]:
        """Best-effort snapshot of an idle session about to be evicted."""
        directory = self.config.checkpoint_dir
        if directory is None:
            return None
        try:
            snapshot = capture(record.session)
            target = Path(directory) / f"{record.session_id}.json"
            await asyncio.to_thread(_save_checkpoint, snapshot, target)
            self.metrics.record_checkpoint()
            return target
        except Exception:
            # The eviction itself must proceed; a failed best-effort
            # checkpoint only costs the client the resumability.
            return None

    # ------------------------------------------------------------------
    # the NDJSON TCP transport
    # ------------------------------------------------------------------
    async def _handle_tcp(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        out: asyncio.Queue = asyncio.Queue(maxsize=self.config.buffer_frames)
        writer_task = asyncio.get_running_loop().create_task(
            self._drain_frames(out, writer, self._write_ndjson)
        )
        conn_sessions: Dict[str, ServiceSession] = {}
        try:
            await out.put({"type": "hello", "protocol": PROTOCOL_VERSION})
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await out.put(
                        {
                            "type": "error",
                            "code": REJECT_BAD_REQUEST,
                            "error": "frame exceeds the line limit",
                        }
                    )
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                try:
                    frame = decode_frame(line)
                except ProtocolError as error:
                    await out.put(
                        {"type": "error", "code": error.code, "error": str(error)}
                    )
                    continue
                if frame["type"] == "bye":
                    break
                await self._handle_frame(frame, conn_sessions, out)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            for record in list(conn_sessions.values()):
                if record.state in LIVE_STATES:
                    await self._cancel_session(record, outcome=CANCELLED, notify=False)
                self.registry.remove(record.session_id)
            await out.put(_CLOSE_WRITER)
            with contextlib.suppress(Exception):
                await writer_task
            with contextlib.suppress(Exception):
                writer.close()
            if task is not None:
                self._conn_tasks.discard(task)

    async def _drain_frames(self, out: asyncio.Queue, writer, write_one) -> None:
        """Writer task: pop frames and put them on the wire.

        On a broken pipe the loop keeps *consuming* (and discarding)
        frames: a blocked session runner must never deadlock on the queue
        of a connection that already died -- it finishes its run into the
        void and releases its resources normally.
        """
        broken = False
        while True:
            frame = await out.get()
            if frame is _CLOSE_WRITER:
                return
            if broken:
                continue
            try:
                write_one(writer, frame)
                await writer.drain()
                self.metrics.record_frame()
            except (ConnectionResetError, BrokenPipeError, OSError):
                broken = True

    @staticmethod
    def _write_ndjson(writer: asyncio.StreamWriter, frame: Mapping[str, Any]) -> None:
        writer.write(encode_frame(frame))

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    async def _handle_frame(
        self,
        frame: Dict[str, Any],
        conn_sessions: Dict[str, ServiceSession],
        out: asyncio.Queue,
    ) -> None:
        kind = frame["type"]
        if kind == "ping":
            await out.put({"type": "pong", "protocol": PROTOCOL_VERSION})
            return
        if kind == "metrics":
            await out.put({"type": "metrics", "metrics": self.metrics.snapshot()})
            return
        if kind == "open":
            await self._handle_open(frame, conn_sessions, out)
            return
        if kind == "restore":
            await self._handle_restore(frame, conn_sessions, out)
            return
        # Everything below addresses an existing session of this connection.
        session_id = frame.get("id")
        record = (
            conn_sessions.get(session_id) if isinstance(session_id, str) else None
        )
        if record is None:
            await out.put(
                {
                    "type": "error",
                    "id": session_id,
                    "code": REJECT_UNKNOWN_SESSION,
                    "error": f"unknown session id {session_id!r}",
                }
            )
            return
        record.touch()
        if kind == "submit":
            await self._handle_submit(frame, record, out)
        elif kind == "run":
            await self._handle_run(record, out)
        elif kind == "stats":
            await self._handle_stats(record, out)
        elif kind == "checkpoint":
            await self._handle_checkpoint(record, out)
        elif kind == "cancel":
            await self._cancel_session(record, outcome=CANCELLED, notify=False)
            await out.put({"type": "cancelled", "id": record.session_id})
        else:
            await out.put(
                {
                    "type": "error",
                    "id": session_id,
                    "code": REJECT_BAD_REQUEST,
                    "error": f"unknown frame type {kind!r}",
                }
            )

    async def _handle_open(
        self,
        frame: Dict[str, Any],
        conn_sessions: Dict[str, ServiceSession],
        out: asyncio.Queue,
    ) -> None:
        session_id = frame.get("id")
        if not isinstance(session_id, str) or not session_id:
            session_id = self.registry.allocate_id()
        if session_id in self.registry:
            await out.put(
                {
                    "type": "rejected",
                    "id": session_id,
                    "code": REJECT_DUPLICATE_SESSION,
                    "error": f"session id {session_id!r} is already in use",
                }
            )
            self.metrics.record_rejected(REJECT_DUPLICATE_SESSION)
            return
        outcome = self._admit_and_open(frame.get("request", {}), session_id)
        if isinstance(outcome, Rejection):
            await out.put(
                {
                    "type": "rejected",
                    "id": session_id,
                    "code": outcome.code,
                    "error": outcome.message,
                    "tenant": outcome.tenant,
                    "limit": outcome.limit,
                }
            )
            return
        record = outcome
        record.out = out
        conn_sessions[session_id] = record
        await out.put(
            {"type": "accepted", "id": session_id, "tenant": record.tenant}
        )

    def _admit_and_open(
        self, request_document: Any, session_id: str
    ) -> Union[ServiceSession, Rejection]:
        """Decode + validate + admit + open; shared by TCP and HTTP."""
        try:
            request = request_from_document(request_document).normalize()
        except ProtocolError as error:
            self.metrics.record_rejected(error.code)
            return Rejection(code=error.code, message=str(error), tenant="?")
        except Exception as error:  # InvalidRequestError, UnknownBackendError...
            self.metrics.record_rejected(REJECT_BAD_REQUEST)
            return Rejection(
                code=REJECT_BAD_REQUEST, message=str(error), tenant="?"
            )
        admitted = self.admission.admit(request.tenant, faulted=bool(request.faults))
        if isinstance(admitted, Rejection):
            self.metrics.record_rejected(admitted.code)
            return admitted
        try:
            session = open_session(request)
        except Exception as error:
            admitted.release()
            self.metrics.record_rejected(REJECT_BAD_REQUEST)
            return Rejection(
                code=REJECT_BAD_REQUEST, message=str(error), tenant=request.tenant
            )
        record = self.registry.add(session_id, request.tenant, session, admitted)
        self.metrics.record_admitted()
        if request.faults:
            self.metrics.record_faulted_session()
        return record

    async def _handle_restore(
        self,
        frame: Dict[str, Any],
        conn_sessions: Dict[str, ServiceSession],
        out: asyncio.Queue,
    ) -> None:
        session_id = frame.get("id")
        if not isinstance(session_id, str) or not session_id:
            session_id = self.registry.allocate_id()
        if session_id in self.registry:
            await out.put(
                {
                    "type": "rejected",
                    "id": session_id,
                    "code": REJECT_DUPLICATE_SESSION,
                    "error": f"session id {session_id!r} is already in use",
                }
            )
            self.metrics.record_rejected(REJECT_DUPLICATE_SESSION)
            return
        outcome = self._admit_and_restore(frame.get("snapshot", {}), session_id)
        if isinstance(outcome, Rejection):
            await out.put(
                {
                    "type": "rejected",
                    "id": session_id,
                    "code": outcome.code,
                    "error": outcome.message,
                    "tenant": outcome.tenant,
                    "limit": outcome.limit,
                }
            )
            return
        record, snapshot = outcome
        record.out = out
        conn_sessions[session_id] = record
        self.metrics.record_restored()
        await out.put(
            {
                "type": "restored",
                "id": session_id,
                "tenant": record.tenant,
                "kind": snapshot.kind,
                "cycle": snapshot.cycle,
            }
        )

    def _admit_and_restore(
        self, snapshot_document: Any, session_id: str
    ) -> Union[Tuple[ServiceSession, SimulationSnapshot], Rejection]:
        """Decode a snapshot document, admit its tenant, rebuild the session.

        The restored session is a *new* admission -- it consumes a quota
        slot like any ``open`` would -- but its engine session resumes at
        the captured cycle, so ``run`` continues the original run
        bit-exactly instead of starting over.
        """
        try:
            snapshot = SimulationSnapshot.from_document(snapshot_document)
            request = request_from_document(snapshot.request).normalize()
        except (SnapshotError, ProtocolError) as error:
            code = getattr(error, "code", None) or REJECT_BAD_REQUEST
            self.metrics.record_rejected(code)
            return Rejection(code=code, message=str(error), tenant="?")
        except Exception as error:
            self.metrics.record_rejected(REJECT_BAD_REQUEST)
            return Rejection(code=REJECT_BAD_REQUEST, message=str(error), tenant="?")
        admitted = self.admission.admit(request.tenant, faulted=bool(request.faults))
        if isinstance(admitted, Rejection):
            self.metrics.record_rejected(admitted.code)
            return admitted
        try:
            session = restore_snapshot(snapshot)
        except Exception as error:
            admitted.release()
            self.metrics.record_rejected(REJECT_BAD_REQUEST)
            return Rejection(
                code=REJECT_BAD_REQUEST, message=str(error), tenant=request.tenant
            )
        record = self.registry.add(session_id, request.tenant, session, admitted)
        record.restored = True
        self.metrics.record_admitted()
        if request.faults:
            self.metrics.record_faulted_session()
        return record, snapshot

    async def _handle_checkpoint(
        self, record: ServiceSession, out: asyncio.Queue
    ) -> None:
        """Capture an accepted session into a portable snapshot document.

        Only ``accepted`` sessions can be checkpointed here: a running
        session's engine state is owned by its runner task mid-slice, and
        terminal states have already released (closed) the engine session.
        """
        if record.state != ACCEPTED:
            await out.put(
                {
                    "type": "error",
                    "id": record.session_id,
                    "code": REJECT_SESSION_STATE,
                    "error": f"cannot checkpoint a session in state {record.state!r}",
                }
            )
            return
        try:
            snapshot = capture(record.session)
        except SnapshotError as error:
            await out.put(
                {
                    "type": "error",
                    "id": record.session_id,
                    "code": REJECT_SESSION_STATE,
                    "error": str(error),
                }
            )
            return
        self.metrics.record_checkpoint()
        await out.put(
            {
                "type": "checkpoint",
                "id": record.session_id,
                "kind": snapshot.kind,
                "cycle": snapshot.cycle,
                "digest": snapshot.digest,
                "snapshot": snapshot.document(),
            }
        )

    async def _handle_submit(
        self, frame: Dict[str, Any], record: ServiceSession, out: asyncio.Queue
    ) -> None:
        tasks = frame.get("tasks")
        if not isinstance(tasks, list):
            await out.put(
                {
                    "type": "error",
                    "id": record.session_id,
                    "code": REJECT_BAD_REQUEST,
                    "error": "'tasks' must be a list of task documents",
                }
            )
            return
        try:
            for entry in tasks:
                record.session.submit(task_from_document(entry))
        except (ProtocolError, SessionError) as error:
            code = error.code if isinstance(error, ProtocolError) else REJECT_SESSION_STATE
            await out.put(
                {
                    "type": "error",
                    "id": record.session_id,
                    "code": code,
                    "error": str(error),
                }
            )
            return
        await out.put(
            {"type": "submitted", "id": record.session_id, "count": len(tasks)}
        )

    async def _handle_run(self, record: ServiceSession, out: asyncio.Queue) -> None:
        if record.state != ACCEPTED:
            await out.put(
                {
                    "type": "error",
                    "id": record.session_id,
                    "code": REJECT_SESSION_STATE,
                    "error": f"cannot run a session in state {record.state!r}",
                }
            )
            return
        record.state = RUNNING
        record.runner = asyncio.get_running_loop().create_task(
            self._run_session(record, out)
        )

    async def _handle_stats(self, record: ServiceSession, out: asyncio.Queue) -> None:
        stats = record.session.stats()
        await out.put(
            {
                "type": "stats",
                "id": record.session_id,
                "state": record.state,
                "session": {
                    "state": stats.state,
                    "tasks_submitted": stats.tasks_submitted,
                    "events_delivered": stats.events_delivered,
                    "tasks_ready": stats.tasks_ready,
                    "tasks_retired": stats.tasks_retired,
                    "current_cycle": stats.current_cycle,
                    "makespan": stats.makespan,
                },
            }
        )

    # ------------------------------------------------------------------
    # the session runner
    # ------------------------------------------------------------------
    def _stream_parameters(self, request: SimulationRequest) -> Tuple[int, int, bool]:
        stream = request.stream
        slice_cycles = self.config.slice_cycles
        event_batch = self.config.event_batch
        emit_events = True
        if stream is not None:
            if stream.slice_cycles is not None:
                slice_cycles = stream.slice_cycles
            if stream.event_batch is not None:
                event_batch = stream.event_batch
            emit_events = stream.events
        return slice_cycles, event_batch, emit_events

    async def _run_session(self, record: ServiceSession, out: asyncio.Queue) -> None:
        """Drive one session to completion in cooperative slices."""
        session = record.session
        slice_cycles, event_batch, emit_events = self._stream_parameters(
            session.request
        )
        session_id = record.session_id
        faulted = bool(session.request.faults)
        try:
            result = None
            cached = False
            if self.cache is not None and not record.restored and not faulted:
                # Restored sessions bypass the read-through: a cache hit
                # would replay the whole event stream, but a mid-run
                # restore owes the client only the cycles after the
                # captured boundary.  Write-behind below still applies --
                # the finished run's result is cache-identical either way.
                # Faulted sessions skip the cache entirely (read and
                # write): FaultInjected/FaultRecovered events exist only
                # in the live lifecycle stream, so a cached replay would
                # silently drop them.
                record.cache_key = service_cache_key(session.request)
                result = await asyncio.to_thread(self.cache.get, record.cache_key)
                cached = result is not None
                self.metrics.record_cache(cached)
            if result is not None:
                events = lifecycle_events(result) if emit_events else []
            else:
                events = None  # streamed slice by slice below
                while True:
                    delay = self.admission.slice_delay(record.tenant, slice_cycles)
                    if delay > 0.0:
                        self.metrics.throttle_seconds += delay
                        await asyncio.sleep(delay)
                    started = time.perf_counter()
                    sim_slice = session.advance(slice_cycles)
                    self.metrics.record_slice(time.perf_counter() - started)
                    record.touch()
                    if emit_events and sim_slice.events:
                        await self._stream_events(
                            session_id, sim_slice.events, event_batch, out
                        )
                    if sim_slice.finished:
                        break
                    # Yield between slices even when nothing was streamed,
                    # so same-loop peers always get a turn.
                    await asyncio.sleep(0)
                result = session.result()
                if self.cache is not None and not faulted:
                    if record.cache_key is None:
                        record.cache_key = service_cache_key(session.request)
                    self._write_behind(record.cache_key, result)
            if faulted:
                self.metrics.record_fault_events(
                    int(result.counters.get("faults_injected", 0)),
                    int(result.counters.get("faults_recovered", 0)),
                )
            if events:
                await self._stream_events(session_id, events, event_batch, out)
            await out.put(
                {
                    "type": "result",
                    "id": session_id,
                    "cached": cached,
                    "result": result_to_document(result),
                }
            )
            record.finish(COMPLETED)
            self.metrics.record_closed("completed")
        except asyncio.CancelledError:
            # The canceller (cancel frame, disconnect, shutdown) does the
            # state accounting; just stop computing.
            raise
        except Exception as error:
            record.finish(FAILED)
            self.metrics.record_closed("failed")
            with contextlib.suppress(asyncio.QueueFull):
                out.put_nowait(
                    {
                        "type": "error",
                        "id": session_id,
                        "code": "simulation-failed",
                        "error": f"{type(error).__name__}: {error}",
                    }
                )

    async def _stream_events(
        self, session_id: str, events, event_batch: int, out: asyncio.Queue
    ) -> None:
        for start in range(0, len(events), event_batch):
            chunk = events[start : start + event_batch]
            await out.put(
                {
                    "type": "events",
                    "id": session_id,
                    "events": events_to_document(chunk),
                }
            )
            self.metrics.record_events(len(chunk))

    def _write_behind(self, key: str, result) -> None:
        """Persist a result without making the client wait for the disk."""
        cache = self.cache
        assert cache is not None

        async def _write() -> None:
            try:
                await asyncio.to_thread(cache.put, key, result)
                self.metrics.cache_writes += 1
            except Exception:
                # A failed cache write must never surface to the client;
                # the next identical request simply misses.
                pass

        task = asyncio.get_running_loop().create_task(_write())
        self._cache_writes.add(task)
        task.add_done_callback(self._cache_writes.discard)

    async def _cancel_session(
        self, record: ServiceSession, *, outcome: str, notify: bool
    ) -> None:
        """Stop a session's runner (if any) and settle its accounting."""
        runner = record.runner
        if runner is not None and not runner.done():
            runner.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await runner
        if record.state in LIVE_STATES:
            record.finish(outcome)
            self.metrics.record_closed(
                "cancelled" if outcome == CANCELLED else "evicted"
            )
        if notify and record.out is not None:
            with contextlib.suppress(asyncio.QueueFull):
                record.out.put_nowait(
                    {"type": outcome, "id": record.session_id}
                )

    # ------------------------------------------------------------------
    # the HTTP adapter
    # ------------------------------------------------------------------
    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            request_line = await reader.readline()
            parts = request_line.split()
            if len(parts) < 2:
                return
            method, path = parts[0].decode(), parts[1].decode()
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            if method == "GET" and path == "/metrics":
                self._http_json(writer, 200, self.metrics.snapshot())
            elif method == "GET" and path == "/healthz":
                self._http_json(
                    writer,
                    200,
                    {
                        "status": "ok",
                        "protocol": PROTOCOL_VERSION,
                        "active_sessions": self.admission.active_sessions(),
                    },
                )
            elif method == "POST" and path == "/simulate":
                body = b""
                length = int(headers.get("content-length", "0") or "0")
                if length:
                    body = await reader.readexactly(length)
                await self._http_simulate(body, writer)
            else:
                self._http_json(writer, 404, {"error": f"no route {method} {path}"})
            await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
            if task is not None:
                self._conn_tasks.discard(task)

    @staticmethod
    def _http_json(
        writer: asyncio.StreamWriter, status: int, payload: Mapping[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 429: "Too Many Requests"}
        writer.write(
            (
                f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )

    async def _http_simulate(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """``POST /simulate``: run one request, answer as an SSE stream."""
        try:
            document = json.loads(body or b"{}")
        except json.JSONDecodeError as error:
            self._http_json(writer, 400, {"code": REJECT_BAD_REQUEST, "error": str(error)})
            return
        session_id = self.registry.allocate_id()
        outcome = self._admit_and_open(document, session_id)
        if isinstance(outcome, Rejection):
            status = 400 if outcome.code == REJECT_BAD_REQUEST else 429
            self._http_json(
                writer,
                status,
                {"code": outcome.code, "error": outcome.message, "tenant": outcome.tenant},
            )
            return
        record = outcome
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        out: asyncio.Queue = asyncio.Queue(maxsize=self.config.buffer_frames)
        record.out = out
        writer_task = asyncio.get_running_loop().create_task(
            self._drain_frames(out, writer, self._write_sse)
        )
        await out.put({"type": "accepted", "id": session_id, "tenant": record.tenant})
        record.state = RUNNING
        record.runner = asyncio.get_running_loop().create_task(
            self._run_session(record, out)
        )
        try:
            await asyncio.shield(record.runner)
        except (asyncio.CancelledError, Exception):
            pass
        finally:
            if record.state in LIVE_STATES:
                await self._cancel_session(record, outcome=CANCELLED, notify=False)
            self.registry.remove(session_id)
            await out.put(_CLOSE_WRITER)
            with contextlib.suppress(Exception):
                await writer_task

    @staticmethod
    def _write_sse(writer: asyncio.StreamWriter, frame: Mapping[str, Any]) -> None:
        payload = json.dumps(frame, separators=(",", ":"), sort_keys=True)
        writer.write(f"event: {frame.get('type', 'message')}\ndata: {payload}\n\n".encode())


# ----------------------------------------------------------------------
# foreground entry point (the CLI's `picos-experiment serve`)
# ----------------------------------------------------------------------
async def serve_until_interrupted(config: ServerConfig, *, announce=print) -> None:
    """Start a server, announce its endpoints, and run until SIGINT/SIGTERM.

    The announce lines are stable and parseable (the smoke tooling reads
    the chosen ephemeral ports from them)::

        serving ndjson on 127.0.0.1:40001
        serving http on 127.0.0.1:40002
    """
    server = SimulationServer(config)
    await server.start()
    announce(f"serving ndjson on {config.host}:{server.tcp_port}", flush=True)
    if server.http_port is not None:
        announce(f"serving http on {config.host}:{server.http_port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        await server.shutdown(drain=True)
    announce("server stopped", flush=True)
