"""Operational metrics of the simulation service.

One :class:`ServiceMetrics` instance per server process, updated inline by
the serving code (single-threaded under asyncio, so plain counters are
race-free) and rendered as a JSON document by :meth:`ServiceMetrics.
snapshot` -- the payload of both the TCP ``metrics`` frame and the HTTP
``GET /metrics`` endpoint.  See ``docs/service.md`` for the glossary.
"""

from __future__ import annotations

import bisect
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple


class LatencyHistogram:
    """Fixed-bucket latency histogram (milliseconds, upper-bound buckets)."""

    #: Upper bounds in milliseconds; the final bucket is unbounded.
    DEFAULT_BOUNDS_MS: Tuple[float, ...] = (
        0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    )

    def __init__(self, bounds_ms: Sequence[float] = DEFAULT_BOUNDS_MS) -> None:
        self._bounds = tuple(sorted(bounds_ms))
        self._counts: List[int] = [0] * (len(self._bounds) + 1)
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation (given in seconds)."""
        ms = seconds * 1000.0
        self._counts[bisect.bisect_left(self._bounds, ms)] += 1
        self.count += 1
        self.total_seconds += seconds

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile in milliseconds (bucket upper bound).

        ``None`` when empty.  The unbounded tail reports the largest
        finite bound, so the estimate is conservative but always finite.
        """
        if not self.count:
            return None
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                bounded = min(index, len(self._bounds) - 1)
                return self._bounds[bounded]
        return self._bounds[-1]  # pragma: no cover - rank <= count always hits

    def as_dict(self) -> Dict[str, Any]:
        buckets = {f"le_{bound:g}ms": count for bound, count in zip(self._bounds, self._counts)}
        buckets["inf"] = self._counts[-1]
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "median_ms": self.quantile(0.5),
            "p99_ms": self.quantile(0.99),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Counter set of one server process."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self.started_at = clock()
        # sessions
        self.sessions_admitted = 0
        self.sessions_rejected: Dict[str, int] = {}
        self.sessions_completed = 0
        self.sessions_cancelled = 0
        self.sessions_evicted = 0
        self.sessions_failed = 0
        self.sessions_active = 0
        # cache
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_writes = 0
        # checkpoint/restore
        self.checkpoints_taken = 0
        self.sessions_restored = 0
        # fault injection
        self.faulted_sessions = 0
        self.faults_injected = 0
        self.faults_recovered = 0
        # streaming
        self.events_streamed = 0
        self.frames_sent = 0
        # slicing
        self.slice_latency = LatencyHistogram()
        self.throttle_seconds = 0.0

    # ------------------------------------------------------------------
    # recorders
    # ------------------------------------------------------------------
    def record_admitted(self) -> None:
        self.sessions_admitted += 1
        self.sessions_active += 1

    def record_rejected(self, code: str) -> None:
        self.sessions_rejected[code] = self.sessions_rejected.get(code, 0) + 1

    def record_closed(self, outcome: str) -> None:
        """Account one admitted session's end (``outcome`` names the counter)."""
        self.sessions_active -= 1
        if outcome == "completed":
            self.sessions_completed += 1
        elif outcome == "cancelled":
            self.sessions_cancelled += 1
        elif outcome == "evicted":
            self.sessions_evicted += 1
        else:
            self.sessions_failed += 1

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_checkpoint(self) -> None:
        self.checkpoints_taken += 1

    def record_restored(self) -> None:
        self.sessions_restored += 1

    def record_faulted_session(self) -> None:
        """Account one admitted session that arms fault scenarios."""
        self.faulted_sessions += 1

    def record_fault_events(self, injected: int, recovered: int) -> None:
        """Account the fault activity of one finished faulted run."""
        self.faults_injected += injected
        self.faults_recovered += recovered

    def record_events(self, count: int) -> None:
        self.events_streamed += count

    def record_frame(self) -> None:
        self.frames_sent += 1

    def record_slice(self, seconds: float) -> None:
        self.slice_latency.observe(seconds)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot served by ``/metrics`` and the TCP frame."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "uptime_seconds": self._clock() - self.started_at,
            "sessions": {
                "admitted": self.sessions_admitted,
                "active": self.sessions_active,
                "rejected": dict(sorted(self.sessions_rejected.items())),
                "rejected_total": sum(self.sessions_rejected.values()),
                "completed": self.sessions_completed,
                "cancelled": self.sessions_cancelled,
                "evicted": self.sessions_evicted,
                "failed": self.sessions_failed,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "writes": self.cache_writes,
                "hit_rate": (self.cache_hits / lookups) if lookups else None,
            },
            "snapshots": {
                "checkpoints_taken": self.checkpoints_taken,
                "sessions_restored": self.sessions_restored,
            },
            "faults": {
                "faulted_sessions": self.faulted_sessions,
                "injected": self.faults_injected,
                "recovered": self.faults_recovered,
            },
            "streaming": {
                "events_streamed": self.events_streamed,
                "frames_sent": self.frames_sent,
            },
            "slices": self.slice_latency.as_dict(),
            "throttle_seconds": self.throttle_seconds,
        }
