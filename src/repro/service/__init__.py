"""Simulation-as-a-service: the asyncio session server.

Serve the repository's simulators over a socket: typed
:class:`~repro.sim.request.SimulationRequest` documents arrive over a
newline-delimited-JSON TCP protocol (or ``POST /simulate`` on the HTTP
adapter), each admitted request runs as a cooperatively-sliced
:class:`~repro.sim.session.SimulationSession`, and lifecycle events stream
back live.  Admission control, per-tenant quotas, backpressure isolation,
idle eviction, a shared cross-process result cache and a metrics surface
make it operable; see ``docs/service.md`` for the full tour and
``tools/service_client.py`` for a stdlib client.

Start one from the command line::

    picos-experiment serve --port 0 --cache-dir /tmp/picos-cache

or embed one in an asyncio program via :class:`SimulationServer`.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionTicket,
    Rejection,
    TenantQuota,
    UNLIMITED,
)
from repro.service.cache import SharedResultCache, service_cache_key
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    REJECT_BAD_REQUEST,
    REJECT_DUPLICATE_SESSION,
    REJECT_SERVER_CAPACITY,
    REJECT_SESSION_QUOTA,
    REJECT_SESSION_STATE,
    REJECT_UNKNOWN_SESSION,
    decode_frame,
    encode_frame,
    request_from_document,
    request_to_document,
    result_from_document,
    result_to_document,
)
from repro.service.server import (
    ServerConfig,
    SimulationServer,
    serve_until_interrupted,
)
from repro.service.sessions import (
    ACCEPTED,
    CANCELLED,
    COMPLETED,
    EVICTED,
    FAILED,
    LIVE_STATES,
    RUNNING,
    ServiceSession,
    SessionRegistry,
)

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "Rejection",
    "TenantQuota",
    "UNLIMITED",
    "SharedResultCache",
    "service_cache_key",
    "LatencyHistogram",
    "ServiceMetrics",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REJECT_BAD_REQUEST",
    "REJECT_DUPLICATE_SESSION",
    "REJECT_SERVER_CAPACITY",
    "REJECT_SESSION_QUOTA",
    "REJECT_SESSION_STATE",
    "REJECT_UNKNOWN_SESSION",
    "decode_frame",
    "encode_frame",
    "request_from_document",
    "request_to_document",
    "result_from_document",
    "result_to_document",
    "ServerConfig",
    "SimulationServer",
    "serve_until_interrupted",
    "ACCEPTED",
    "CANCELLED",
    "COMPLETED",
    "EVICTED",
    "FAILED",
    "LIVE_STATES",
    "RUNNING",
    "ServiceSession",
    "SessionRegistry",
]
